"""Tests for the executor's retry / backoff / quarantine machinery."""

import pytest

from repro.errors import (
    ConfigurationError,
    InfeasibleOperatingPoint,
    ReproError,
)
from repro.harness.executor import (
    ResultCache,
    RetryPolicy,
    SweepExecutor,
)
from repro.harness.faults import ALWAYS, FaultPlan, FaultSpec
from repro.harness.journal import SweepJournal, load_journal


# ---------------------------------------------------------------------------
# Module-level evaluators (picklable for the process lanes).
# ---------------------------------------------------------------------------


def double_point(point):
    return point * 2


def infeasible_odd_point(point):
    if point % 2:
        raise InfeasibleOperatingPoint(f"point {point} infeasible")
    return point * 2


def buggy_point(point):
    raise ValueError("a genuine bug")


def key_for(point, salt=0):
    return {"kind": "retry-test", "point": point, "salt": salt}


def fast_policy(**kwargs):
    """A retry policy whose backoff does not slow the test suite down."""
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("backoff_max_s", 0.0)
    return RetryPolicy(**kwargs)


def plan_with(*faults):
    return FaultPlan(seed=0, rate=0.0, faults=tuple(faults))


class TestRetryPolicy:
    def test_validates_fields(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(point_timeout_s=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_retries=5,
            backoff_base_s=0.1,
            backoff_factor=2.0,
            backoff_max_s=0.3,
        )
        assert policy.backoff_s(0) == pytest.approx(0.1)
        assert policy.backoff_s(1) == pytest.approx(0.2)
        assert policy.backoff_s(2) == pytest.approx(0.3)  # capped
        assert policy.backoff_s(9) == pytest.approx(0.3)

    def test_default_policy_is_not_resilient(self):
        assert not SweepExecutor().resilient
        assert SweepExecutor(retry=fast_policy(max_retries=1)).resilient
        assert SweepExecutor(retry=RetryPolicy(point_timeout_s=5)).resilient
        assert SweepExecutor(fault_plan=FaultPlan(seed=1)).resilient


class TestInlineRetries:
    def test_transient_fault_recovers_within_budget(self):
        plan = plan_with((1, FaultSpec(kind="raise", failing_attempts=2)))
        executor = SweepExecutor(
            retry=fast_policy(max_retries=2), fault_plan=plan
        )
        outcomes = executor.map(double_point, [0, 1, 2])
        assert [o.value for o in outcomes] == [0, 2, 4]
        assert [o.attempts for o in outcomes] == [1, 3, 1]
        assert executor.stats.retries == 2
        assert executor.stats.quarantined == 0

    def test_permanent_fault_is_quarantined(self):
        plan = plan_with((1, FaultSpec(kind="raise", failing_attempts=ALWAYS)))
        executor = SweepExecutor(
            retry=fast_policy(max_retries=2), fault_plan=plan
        )
        outcomes = executor.map(double_point, [0, 1, 2])
        assert [o.ok for o in outcomes] == [True, False, True]
        failure = outcomes[1].failure
        assert failure.error_type == "InjectedFault"
        assert failure.retryable
        assert outcomes[1].attempts == 3
        assert executor.stats.quarantined == 1
        assert executor.failed == [outcomes[1]]

    def test_deterministic_library_error_is_never_retried(self):
        executor = SweepExecutor(retry=fast_policy(max_retries=5))
        outcomes = executor.map(infeasible_odd_point, [0, 1])
        assert outcomes[1].attempts == 1
        assert not outcomes[1].failure.retryable
        assert executor.stats.retries == 0
        assert executor.stats.quarantined == 0

    def test_escaped_bug_is_captured_and_retried(self):
        # Under a retry policy a non-library exception becomes a
        # retryable failure instead of killing the campaign...
        executor = SweepExecutor(retry=fast_policy(max_retries=1))
        outcomes = executor.map(buggy_point, [0])
        assert not outcomes[0].ok
        assert outcomes[0].failure.error_type == "ValueError"
        assert outcomes[0].failure.retryable
        assert outcomes[0].attempts == 2

    def test_without_retry_policy_bugs_still_propagate(self):
        # ...while the default executor keeps the historical semantics.
        with pytest.raises(ValueError):
            SweepExecutor().map(buggy_point, [0])

    def test_map_values_reraises_quarantined_failures(self):
        plan = plan_with((0, FaultSpec(kind="raise", failing_attempts=ALWAYS)))
        executor = SweepExecutor(
            retry=fast_policy(max_retries=1), fault_plan=plan
        )
        with pytest.raises(ReproError):
            executor.map_values(double_point, [0])


class TestCacheInteraction:
    def test_retryable_failures_are_not_cached(self, tmp_path):
        plan = plan_with((1, FaultSpec(kind="raise", failing_attempts=ALWAYS)))
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(
            cache=cache, retry=fast_policy(max_retries=1), fault_plan=plan
        )
        points = [0, 1, 2]
        keys = [key_for(p) for p in points]
        executor.map(double_point, points, key_configs=keys)
        assert len(cache) == 2  # the two successes only

        # A later executor without the fault plan re-attempts point 1
        # from scratch and completes the sweep.
        retry_executor = SweepExecutor(cache=cache)
        outcomes = retry_executor.map(double_point, points, key_configs=keys)
        assert [o.value for o in outcomes] == [0, 2, 4]
        assert [o.cached for o in outcomes] == [True, False, True]

    def test_deterministic_failures_are_still_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(cache=cache, retry=fast_policy(max_retries=2))
        points = [0, 1]
        keys = [key_for(p) for p in points]
        executor.map(infeasible_odd_point, points, key_configs=keys)
        assert len(cache) == 2  # success and infeasible point both

        warm = SweepExecutor(cache=cache)
        outcomes = warm.map(infeasible_odd_point, points, key_configs=keys)
        assert all(o.cached for o in outcomes)
        assert not outcomes[1].ok


class TestJournalIntegration:
    def test_journal_records_every_keyed_outcome(self, tmp_path):
        plan = plan_with((1, FaultSpec(kind="raise", failing_attempts=ALWAYS)))
        cache = ResultCache(tmp_path / "cache")
        journal = SweepJournal(cache.root, "run-a", command="test")
        executor = SweepExecutor(
            cache=cache,
            retry=fast_policy(max_retries=1),
            fault_plan=plan,
            journal=journal,
        )
        points = [0, 1, 2]
        keys = [key_for(p) for p in points]
        outcomes = executor.map(double_point, points, key_configs=keys)
        journal.close()

        _, entries = load_journal(journal.path)
        assert len(entries) == 3
        by_key = {o.key: o for o in outcomes}
        for key, entry in entries.items():
            assert entry.status == ("ok" if by_key[key].ok else "failed")
        failed = [e for e in entries.values() if e.status == "failed"]
        assert len(failed) == 1
        assert failed[0].retryable
        assert failed[0].attempts == 2

    def test_unkeyed_points_are_not_journalled(self, tmp_path):
        journal = SweepJournal(tmp_path, "run-a", command="test")
        executor = SweepExecutor(journal=journal)
        executor.map(double_point, [0, 1])
        journal.close()
        _, entries = load_journal(journal.path)
        assert entries == {}


class TestProcessFarm:
    def test_kill_fault_recovers_via_worker_replacement(self):
        plan = plan_with((1, FaultSpec(kind="kill", failing_attempts=1)))
        executor = SweepExecutor(
            jobs=2, retry=fast_policy(max_retries=2), fault_plan=plan
        )
        outcomes = executor.map(double_point, [0, 1, 2, 3])
        assert [o.value for o in outcomes] == [0, 2, 4, 6]
        assert outcomes[1].attempts == 2
        assert executor.stats.retries == 1

    def test_permanent_kill_is_quarantined_with_crash_failure(self):
        plan = plan_with((0, FaultSpec(kind="kill", failing_attempts=ALWAYS)))
        executor = SweepExecutor(
            jobs=2, retry=fast_policy(max_retries=1), fault_plan=plan
        )
        outcomes = executor.map(double_point, [0, 1])
        assert not outcomes[0].ok
        assert outcomes[0].failure.error_type == "WorkerCrash"
        assert outcomes[0].failure.retryable
        assert "exit code 77" in outcomes[0].failure.message
        assert outcomes[1].ok

    def test_hang_fault_trips_the_deadline_then_recovers(self):
        plan = plan_with(
            (1, FaultSpec(kind="hang", failing_attempts=1, hang_s=30.0))
        )
        executor = SweepExecutor(
            retry=fast_policy(max_retries=1, point_timeout_s=0.3),
            fault_plan=plan,
        )
        outcomes = executor.map(double_point, [0, 1, 2])
        assert [o.value for o in outcomes] == [0, 2, 4]
        assert outcomes[1].attempts == 2

    def test_timeout_without_faults_quarantines_as_point_timeout(self):
        plan = plan_with(
            (0, FaultSpec(kind="hang", failing_attempts=ALWAYS, hang_s=30.0))
        )
        executor = SweepExecutor(
            retry=fast_policy(point_timeout_s=0.2), fault_plan=plan
        )
        outcomes = executor.map(double_point, [0, 1])
        assert outcomes[0].failure.error_type == "PointTimeout"
        assert outcomes[0].failure.retryable
        assert outcomes[1].ok

    def test_farm_results_are_in_input_order(self):
        plan = plan_with((0, FaultSpec(kind="raise", failing_attempts=1)))
        executor = SweepExecutor(
            jobs=3, retry=fast_policy(max_retries=1), fault_plan=plan
        )
        outcomes = executor.map(double_point, list(range(9)))
        assert [o.index for o in outcomes] == list(range(9))
        assert [o.value for o in outcomes] == [2 * p for p in range(9)]

    def test_faulted_parallel_matches_clean_serial(self):
        # The headline equivalence: a recovering chaos run converges to
        # the fault-free serial sweep's values exactly.
        clean = SweepExecutor().map(infeasible_odd_point, list(range(12)))
        plan = FaultPlan(seed=5, rate=0.4, kinds=("raise", "kill"))
        chaotic = SweepExecutor(
            jobs=4, retry=fast_policy(max_retries=3), fault_plan=plan
        ).map(infeasible_odd_point, list(range(12)))
        assert [o.value for o in chaotic] == [o.value for o in clean]
        assert [o.ok for o in chaotic] == [o.ok for o in clean]
