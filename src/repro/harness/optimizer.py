"""Adaptive design-space optimization: coarse-to-fine search over (N, f).

The paper's deliverable is an *optimization* — pick the (N, V/f)
configuration that minimizes power at iso-performance (Scenario I) or
maximizes speedup under a power budget (Scenario II) — yet the
experimental pipelines answer it by exhaustively simulating the full
200 MHz profiling ladder.  The power/performance surfaces those sweeps
trace are smooth and monotone (power rises with frequency, time falls),
so a successive-refinement search finds the same optimum with a
fraction of the simulations.

The engine in this module searches each (application, N) pair's
frequency ladder coarse-to-fine:

1. **round 0** probes a coarse sub-ladder that always includes both
   endpoints, so a monotone feasibility predicate is bracketed (or
   proven uniform) immediately;
2. each later round evaluates the *frontier* — the midpoints every
   active search needs next — as one flat fan-out through the
   :class:`~repro.harness.executor.SweepExecutor`, so refinement rounds
   parallelize across workers and across searches;
3. brackets halve until they reach single-step resolution, at which
   point the chosen grid frequency is exact — the same point an
   exhaustive sweep of the ladder would pick.

Evaluations go through :func:`~repro.harness.profiling.simulate_point`
under the standard ``simpoint`` cache key, so optimizer probes share
the result cache with the scenario sweeps: a warm cache makes
refinement incremental across campaigns and ``--resume`` runs, and the
chosen row is bitwise-identical to the corresponding exhaustive or
scenario-pipeline measurement.

For budget-style objectives the final bracket also yields the paper's
"linearly scaling between the two" profiled points: the budget boundary
is located by linear interpolation between the bracketing measurements
and reported as :attr:`OptimizerRow.f_interpolated_hz`.  The
interpolated frequency is metadata — the chosen operating point stays
on the grid so adaptive results match the default pipelines exactly.

Objectives are pluggable (:data:`OBJECTIVES`): ``power-iso`` (Scenario
I as a measured search), ``speedup-budget`` (Scenario II), and the
``edp``/``ed2p`` energy-delay products the report's Scenario III
extension plots.  The monotone objectives refine a boundary bracket by
bisection; the energy-delay objectives are unimodal in frequency and
refine a three-point bracket around the incumbent minimum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.harness.executor import SweepExecutor
from repro.harness.profiling import (
    SimPointRow,
    SimPointTask,
    precompile_hook,
    sim_point_key,
    simulate_point,
)
from repro.telemetry.timeseries import get_sampler
from repro.telemetry.trace import get_tracer
from repro.units import PICO
from repro.workloads.base import WorkloadModel

#: Default refinement ladder step (the paper's profiling grid).
DEFAULT_STEP_HZ = 200e6


def frequency_ladder(
    context: ExperimentContext, step_hz: float = DEFAULT_STEP_HZ
) -> List[float]:
    """The profiling ladder: ``step_hz`` steps from the floor to nominal.

    Identical to the Scenario II grid, so optimizer probes land on the
    exact frequencies the exhaustive pipelines simulate.
    """
    points: List[float] = []
    f = context.f_min
    while f < context.f_nominal - 1e6:
        points.append(f)
        f += step_hz
    points.append(context.f_nominal)
    return points


def _energy_j(row: SimPointRow) -> float:
    """Energy of one measured point (power times execution time)."""
    return row.total_power_w * (row.execution_time_ps * PICO)


class MinPowerAtIsoPerformance:
    """Scenario I as a measured search: least power still meeting T1.

    Execution time falls monotonically with frequency, so the feasible
    region (``T_N(f) <= T1``) is a suffix of the ladder; the optimum is
    its lowest frequency — the least power that holds 1-core
    performance.
    """

    name = "power-iso"
    kind = "boundary"
    #: The low-frequency side of the ladder is the *infeasible* side.
    feasible_low = False

    def feasible(self, row: SimPointRow, t1_ps: int, budget_w: float) -> bool:
        return row.execution_time_ps <= t1_ps

    def constraint(
        self, row: SimPointRow, t1_ps: int, budget_w: float
    ) -> Tuple[float, float]:
        """(observed value, limit) of the binding constraint."""
        return float(row.execution_time_ps), float(t1_ps)

    def metric(self, row: SimPointRow, t1_ps: int) -> float:
        return row.total_power_w

    def fallback_index(self, num_points: int) -> int:
        """No frequency meets T1: nominal is the best-effort point."""
        return num_points - 1


class MaxSpeedupUnderBudget:
    """Scenario II: the highest frequency whose power fits the budget.

    Power rises monotonically with frequency, so the feasible region is
    a prefix of the ladder; the optimum is its highest frequency.
    """

    name = "speedup-budget"
    kind = "boundary"
    feasible_low = True

    def feasible(self, row: SimPointRow, t1_ps: int, budget_w: float) -> bool:
        return row.total_power_w <= budget_w

    def constraint(
        self, row: SimPointRow, t1_ps: int, budget_w: float
    ) -> Tuple[float, float]:
        return row.total_power_w, budget_w

    def metric(self, row: SimPointRow, t1_ps: int) -> float:
        return t1_ps / row.execution_time_ps

    def fallback_index(self, num_points: int) -> int:
        """Even the floor exceeds the budget: the floor is the best the
        chip can do (the paper's range stops at 200 MHz)."""
        return 0


class MinEnergyDelay:
    """Scenario III: minimize E * T^k (EDP for k=1, ED^2P for k=2).

    Energy-delay products are unimodal in frequency — leakage dominates
    at the slow end, dynamic power at the fast end — so the search
    refines a three-point bracket around the incumbent minimum.
    """

    kind = "unimodal"

    def __init__(self, delay_exponent: int = 1) -> None:
        if delay_exponent < 1:
            raise ConfigurationError("delay_exponent must be >= 1")
        self.delay_exponent = delay_exponent
        self.name = "edp" if delay_exponent == 1 else f"ed{delay_exponent}p"

    def feasible(self, row: SimPointRow, t1_ps: int, budget_w: float) -> bool:
        return True

    def metric(self, row: SimPointRow, t1_ps: int) -> float:
        time_s = row.execution_time_ps * PICO
        return _energy_j(row) * time_s ** self.delay_exponent


#: The pluggable objective registry (also the CLI's ``--objective`` set).
OBJECTIVES = {
    "power-iso": MinPowerAtIsoPerformance,
    "speedup-budget": MaxSpeedupUnderBudget,
    "edp": partial(MinEnergyDelay, delay_exponent=1),
    "ed2p": partial(MinEnergyDelay, delay_exponent=2),
}


def objective_by_name(name: str):
    """Instantiate a registered objective, or raise with the known set."""
    try:
        factory = OBJECTIVES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {name!r}; expected one of "
            f"{', '.join(sorted(OBJECTIVES))}"
        ) from None
    return factory()


def _coarse_indices(num_points: int, stride: int) -> List[int]:
    """Round-0 probe set: every ``stride``-th index plus both endpoints."""
    points = set(range(0, num_points, stride))
    points.add(num_points - 1)
    return sorted(points)


def _default_stride(num_points: int) -> int:
    """Largest power of two below the ladder length (halves cleanly)."""
    if num_points <= 2:
        return 1
    return 2 ** max(0, (num_points - 1).bit_length() - 1)


def pick_boundary(
    flags: Sequence[bool], feasible_low: bool
) -> Tuple[Optional[int], Optional[Tuple[int, int]]]:
    """Select the boundary optimum from a fully evaluated ladder.

    Returns ``(index, bracket)`` where ``index`` is the optimal ladder
    position (``None`` when nothing is feasible) and ``bracket`` the
    adjacent (feasible, infeasible) flip pair, ``None`` when feasibility
    is uniform.  This is the single pick rule both the exhaustive sweep
    and the refined search reduce to, so their tie semantics agree by
    construction.
    """
    feasible = [i for i, flag in enumerate(flags) if flag]
    if not feasible:
        return None, None
    index = max(feasible) if feasible_low else min(feasible)
    if feasible_low:
        bracket = (index, index + 1) if index + 1 < len(flags) else None
    else:
        bracket = (index - 1, index) if index > 0 else None
    return index, bracket


class _BoundarySearch:
    """Bisect a monotone feasibility boundary on a ladder of indices."""

    def __init__(self, num_points: int, feasible_low: bool, stride: int):
        self.num_points = num_points
        self.feasible_low = feasible_low
        self.stride = max(1, min(stride, num_points - 1)) if num_points > 1 else 1
        self.known: Dict[int, bool] = {}
        self.bracket: Optional[Tuple[int, int]] = None
        self.done = num_points == 0
        self.result: Optional[int] = None
        self.boundary: Optional[Tuple[int, int]] = None

    def frontier(self) -> List[int]:
        """Ladder indices this search needs evaluated next."""
        if self.done:
            return []
        if self.bracket is None:
            return [
                i
                for i in _coarse_indices(self.num_points, self.stride)
                if i not in self.known
            ]
        lo, hi = self.bracket
        return [(lo + hi) // 2] if hi - lo > 1 else []

    def advance(self) -> None:
        """Fold the frontier's results in and shrink the bracket."""
        if self.done:
            return
        if self.bracket is None:
            probes = _coarse_indices(self.num_points, self.stride)
            flags = [self.known[i] for i in probes]
            flip = next(
                (
                    (probes[k], probes[k + 1])
                    for k in range(len(probes) - 1)
                    if flags[k] != flags[k + 1]
                ),
                None,
            )
            if flip is None:
                # Feasibility is uniform across the coarse ladder; with
                # a monotone predicate (endpoints included) that means
                # uniform across the whole ladder.
                self.done = True
                if flags[0]:
                    self.result = (
                        self.num_points - 1 if self.feasible_low else 0
                    )
                return
            self.bracket = flip
        else:
            lo, hi = self.bracket
            mid = (lo + hi) // 2
            if self.known[mid] == self.known[lo]:
                self.bracket = (mid, hi)
            else:
                self.bracket = (lo, mid)
        lo, hi = self.bracket
        if hi - lo <= 1:
            self.done = True
            self.boundary = (lo, hi)
            self.result = lo if self.known[lo] else hi


class _UnimodalSearch:
    """Refine a three-point bracket around a unimodal metric's minimum."""

    def __init__(self, num_points: int, stride: int):
        self.num_points = num_points
        self.stride = max(1, min(stride, num_points - 1)) if num_points > 1 else 1
        self.known: Dict[int, float] = {}
        self.done = num_points == 0
        self.result: Optional[int] = None
        self.boundary: Optional[Tuple[int, int]] = None

    def _best(self) -> int:
        return min(sorted(self.known), key=lambda i: (self.known[i], i))

    def _gaps(self) -> Tuple[int, int, int]:
        """(previous probe, incumbent minimum, next probe)."""
        probes = sorted(self.known)
        best = self._best()
        at = probes.index(best)
        prev = probes[at - 1] if at > 0 else best
        nxt = probes[at + 1] if at + 1 < len(probes) else best
        return prev, best, nxt

    def frontier(self) -> List[int]:
        if self.done:
            return []
        if not self.known:
            return _coarse_indices(self.num_points, self.stride)
        prev, best, nxt = self._gaps()
        points = []
        if best - prev > 1:
            points.append((prev + best) // 2)
        if nxt - best > 1:
            points.append((best + nxt) // 2)
        return points

    def advance(self) -> None:
        if self.done:
            return
        prev, best, nxt = self._gaps()
        if best - prev <= 1 and nxt - best <= 1:
            self.done = True
            self.result = best


@dataclass(frozen=True)
class OptimizerRow:
    """One (application, N) optimum chosen by an optimizer campaign.

    ``metric`` is the objective's headline scalar at the chosen point
    (power in watts for ``power-iso``, speedup for ``speedup-budget``,
    the energy-delay product in J*s^k for ``edp``/``ed2p``).
    ``f_interpolated_hz`` is the linearly interpolated constraint
    boundary between the bracketing profiled points; it equals
    ``frequency_hz`` when the constraint never flips on the ladder (or
    the objective has no constraint).
    """

    objective: str
    app: str
    n: int
    frequency_hz: float
    voltage: float
    execution_time_ps: int
    total_power_w: float
    speedup: float
    metric: float
    feasible: bool
    f_interpolated_hz: float
    f_nominal_hz: float
    budget_w: float
    evaluations: int
    grid_points: int

    @property
    def energy_j(self) -> float:
        """Energy at the chosen point (power times execution time)."""
        return self.total_power_w * (self.execution_time_ps * PICO)


@dataclass
class OptimizerCampaign:
    """Everything one :func:`run_optimizer` invocation produced.

    ``evaluations`` counts the distinct grid points the search
    requested — exactly the simulations a cold cache would run.
    ``cold_evaluations`` is how many of them actually simulated in
    *this* invocation (the rest were result-cache hits), so a warm
    re-run reports the same ``evaluations`` with ``cold_evaluations``
    of zero.
    """

    objective: str
    rows: List[OptimizerRow] = field(default_factory=list)
    evaluations: int = 0
    cold_evaluations: int = 0
    cache_hits: int = 0
    baseline_evaluations: int = 0
    exhaustive_evaluations: int = 0
    rounds: int = 0
    #: (app, n) searches abandoned because a probe failed/quarantined.
    skipped: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def simulations_saved(self) -> int:
        """Grid evaluations the adaptive search avoided."""
        return self.exhaustive_evaluations - self.evaluations

    @property
    def evaluation_ratio(self) -> float:
        """Adaptive evaluations as a fraction of the exhaustive grid."""
        if not self.exhaustive_evaluations:
            return 0.0
        return self.evaluations / self.exhaustive_evaluations

    def summary(self) -> str:
        """One human-readable accounting line for the CLI."""
        saved = self.simulations_saved
        percent = 100.0 * (1.0 - self.evaluation_ratio)
        return (
            f"[optimizer] {self.objective}: {self.evaluations} grid "
            f"evaluations ({self.cold_evaluations} simulated, "
            f"{self.cache_hits} cached) vs {self.exhaustive_evaluations} "
            f"exhaustive — saved {saved} ({percent:.0f}%) in "
            f"{self.rounds} round(s)"
        )


class _SearchState:
    """One (application, N) search plus everything its rows need."""

    def __init__(self, model: WorkloadModel, n: int, search) -> None:
        self.model = model
        self.n = n
        self.search = search
        self.rows: Dict[int, SimPointRow] = {}
        self.evaluations = 0
        self.failed = False


def _interpolated_frequency(
    objective,
    ladder: Sequence[float],
    state: _SearchState,
    boundary: Optional[Tuple[int, int]],
    chosen_hz: float,
    t1_ps: int,
    budget_w: float,
) -> float:
    """Locate the constraint boundary between two profiled points.

    The paper interpolates "by linearly scaling between the two"
    profiled measurements; the crossing is clamped into the bracket so
    measurement noise can never put it outside the profiled pair.
    """
    if boundary is None or not hasattr(objective, "constraint"):
        return chosen_hz
    lo, hi = boundary
    row_lo, row_hi = state.rows.get(lo), state.rows.get(hi)
    if row_lo is None or row_hi is None:
        return chosen_hz
    value_lo, limit = objective.constraint(row_lo, t1_ps, budget_w)
    value_hi, _ = objective.constraint(row_hi, t1_ps, budget_w)
    f_lo, f_hi = ladder[lo], ladder[hi]
    if value_hi == value_lo:
        return chosen_hz
    crossing = f_lo + (limit - value_lo) * (f_hi - f_lo) / (value_hi - value_lo)
    return min(max(crossing, f_lo), f_hi)


def run_optimizer(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    objective,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    budget_w: Optional[float] = None,
    executor: Optional[SweepExecutor] = None,
    step_hz: float = DEFAULT_STEP_HZ,
    coarse_stride: Optional[int] = None,
    exhaustive: bool = False,
) -> OptimizerCampaign:
    """Search every (application, N) pair's ladder for the optimum.

    With ``exhaustive=True`` the full ladder is evaluated in one round
    and the same pick rule applied — the reference the differential
    tests and ``bench_optimizer.py`` hold the adaptive search to.

    A probe that fails (or quarantines, under a retrying executor)
    abandons that (application, N) search — recorded in
    :attr:`OptimizerCampaign.skipped` and in the executor's ``failed``
    accumulator for ``failedpoint`` persistence — without aborting the
    campaign.
    """
    if isinstance(objective, str):
        objective = objective_by_name(objective)
    executor = executor if executor is not None else SweepExecutor()
    budget = budget_w if budget_w is not None else (
        context.calibration.max_operational_power_w
    )
    ladder = frequency_ladder(context, step_hz)
    stride = coarse_stride if coarse_stride is not None else _default_stride(
        len(ladder)
    )
    tracer = get_tracer()
    sampler = get_sampler()

    campaign = OptimizerCampaign(objective=objective.name)
    with tracer.span(
        "optimizer.campaign",
        objective=objective.name,
        apps=len(models),
        exhaustive=exhaustive,
    ):
        # Baselines: every application's 1-core nominal time (T1), the
        # reference both feasibility and the speedup column are built
        # on.  Shared with the scenario pipelines through the cache.
        baseline_tasks = [SimPointTask(spec=m.spec, n=1) for m in models]
        baseline_outcomes = executor.map(
            partial(simulate_point, context),
            baseline_tasks,
            key_configs=[sim_point_key(context, t) for t in baseline_tasks],
            precompile=precompile_hook(context),
        )
        campaign.baseline_evaluations = len(baseline_tasks)
        t1_by_app: Dict[str, int] = {}
        for task, outcome in zip(baseline_tasks, baseline_outcomes):
            if outcome.ok:
                t1_by_app[task.spec.name] = outcome.value.execution_time_ps

        states: List[_SearchState] = []
        for model in models:
            if model.name not in t1_by_app:
                campaign.skipped.append((model.name, 1))
                continue
            for n in model.supported_thread_counts(core_counts):
                if objective.kind == "boundary":
                    search = _BoundarySearch(
                        len(ladder), objective.feasible_low, stride
                    )
                else:
                    search = _UnimodalSearch(len(ladder), stride)
                states.append(_SearchState(model, n, search))
        campaign.exhaustive_evaluations = len(ladder) * len(states)

        if exhaustive:
            for state in states:
                state.search.stride = 1

        while True:
            frontier: List[Tuple[_SearchState, int]] = []
            for state in states:
                if state.failed:
                    continue
                if exhaustive:
                    wanted = (
                        []
                        if state.search.done or state.search.known
                        else list(range(len(ladder)))
                    )
                else:
                    wanted = state.search.frontier()
                frontier.extend((state, index) for index in wanted)
            if not frontier:
                break
            campaign.rounds += 1
            tasks = [
                SimPointTask(
                    spec=state.model.spec, n=state.n, frequency_hz=ladder[index]
                )
                for state, index in frontier
            ]
            if sampler.enabled:
                sampler.sample("optimizer.frontier_points", float(len(tasks)))
                widths = [
                    state.search.bracket[1] - state.search.bracket[0]
                    for state, _ in frontier
                    if getattr(state.search, "bracket", None) is not None
                ]
                if widths:
                    sampler.sample("optimizer.bracket_steps", float(max(widths)))
            with tracer.span(
                "optimizer.round",
                index=campaign.rounds,
                points=len(tasks),
            ):
                outcomes = executor.map(
                    partial(simulate_point, context),
                    tasks,
                    key_configs=[
                        sim_point_key(context, task) for task in tasks
                    ],
                    precompile=precompile_hook(context),
                )
            advanced = set()
            for (state, index), outcome in zip(frontier, outcomes):
                state.evaluations += 1
                campaign.evaluations += 1
                if not outcome.ok:
                    state.failed = True
                    campaign.skipped.append((state.model.name, state.n))
                    continue
                if outcome.cached:
                    campaign.cache_hits += 1
                else:
                    campaign.cold_evaluations += 1
                row = outcome.value
                state.rows[index] = row
                t1_ps = t1_by_app[state.model.name]
                if objective.kind == "boundary":
                    state.search.known[index] = objective.feasible(
                        row, t1_ps, budget
                    )
                else:
                    state.search.known[index] = objective.metric(row, t1_ps)
                advanced.add(id(state))
            for state in states:
                if id(state) in advanced and not state.failed:
                    if exhaustive:
                        _resolve_exhaustive(state, objective)
                    else:
                        state.search.advance()

        for state in states:
            if state.failed:
                continue
            row = _row_from_state(
                state, objective, ladder, context, t1_by_app, budget
            )
            if row is not None:
                campaign.rows.append(row)
        campaign.rows.sort(key=lambda r: (r.app, r.n))
        if sampler.enabled:
            sampler.sample("optimizer.evaluations", float(campaign.evaluations))
            sampler.sample(
                "optimizer.simulations_saved", float(campaign.simulations_saved)
            )
    return campaign


def _resolve_exhaustive(state: _SearchState, objective) -> None:
    """Apply the shared pick rule to a fully evaluated ladder."""
    search = state.search
    if len(search.known) < search.num_points:
        return
    if objective.kind == "boundary":
        flags = [search.known[i] for i in range(search.num_points)]
        index, bracket = pick_boundary(flags, objective.feasible_low)
        search.result = index
        search.boundary = bracket
    else:
        search.result = min(
            range(search.num_points), key=lambda i: (search.known[i], i)
        )
    search.done = True


def _row_from_state(
    state: _SearchState,
    objective,
    ladder: Sequence[float],
    context: ExperimentContext,
    t1_by_app: Dict[str, int],
    budget: float,
) -> Optional[OptimizerRow]:
    """Assemble the final row for one resolved (application, N) search."""
    search = state.search
    index = search.result
    feasible = index is not None
    if index is None:
        index = objective.fallback_index(search.num_points)
    row = state.rows.get(index)
    if row is None:
        return None
    t1_ps = t1_by_app[state.model.name]
    chosen_hz = ladder[index]
    boundary = getattr(search, "boundary", None)
    return OptimizerRow(
        objective=objective.name,
        app=state.model.name,
        n=state.n,
        frequency_hz=chosen_hz,
        voltage=row.voltage,
        execution_time_ps=row.execution_time_ps,
        total_power_w=row.total_power_w,
        speedup=t1_ps / row.execution_time_ps,
        metric=objective.metric(row, t1_ps),
        feasible=feasible,
        f_interpolated_hz=_interpolated_frequency(
            objective, ladder, state, boundary, chosen_hz, t1_ps, budget
        ),
        f_nominal_hz=context.f_nominal,
        budget_w=budget,
        evaluations=state.evaluations,
        grid_points=search.num_points,
    )


def run_scenario1_adaptive(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    executor: Optional[SweepExecutor] = None,
) -> OptimizerCampaign:
    """Scenario I through the optimizer: min power at iso-performance."""
    return run_optimizer(
        context,
        models,
        MinPowerAtIsoPerformance(),
        core_counts=core_counts,
        executor=executor,
    )


def run_scenario2_adaptive(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    core_counts: Sequence[int] = tuple(range(1, 17)),
    budget_w: Optional[float] = None,
    executor: Optional[SweepExecutor] = None,
) -> OptimizerCampaign:
    """Scenario II through the optimizer: max speedup under the budget.

    The chosen (N, frequency) points match :func:`run_scenario2`'s grid
    picks bitwise — the search changes how many points are simulated,
    never which point wins.
    """
    return run_optimizer(
        context,
        models,
        MaxSpeedupUnderBudget(),
        core_counts=core_counts,
        budget_w=budget_w,
        executor=executor,
    )
