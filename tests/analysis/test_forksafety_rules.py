"""Fork-safety: worker-reachable functions vs module-level state."""

from repro.analysis import forksafety
from repro.analysis.forksafety import worker_roots

from tests.analysis.conftest import findings_for

FORKY = "harness/forky.py"


def test_worker_roots_are_discovered_from_map_calls(
    fixture_index, fixture_graph
):
    roots = worker_roots(fixture_index, fixture_graph)
    names = {fixture_graph.qualname(nid) for nid in roots}
    assert "pool_worker" in names
    # run_pool itself is the coordinator, not a worker entry.
    assert "run_pool" not in names


def test_store_in_worker_is_a_global_write(fixture_report):
    writes = findings_for(fixture_report, "FORK-GLOBAL-WRITE", FORKY)
    assert [f.line for f in writes] == [16]
    message = writes[0].message
    assert "`pool_worker`" in message
    assert "`_RESULT_CACHE`" in message
    assert writes[0].severity == "error"


def test_guarded_init_is_reported_as_lazy_init(fixture_report):
    lazy = findings_for(fixture_report, "FORK-LAZY-INIT", FORKY)
    assert [f.line for f in lazy] == [28]
    assert "`_ensure_table`" in lazy[0].message
    assert "`_LAZY_TABLE`" in lazy[0].message
    assert lazy[0].severity == "warning"


def test_coordinator_only_written_state_is_unpickled(fixture_report):
    reads = findings_for(fixture_report, "FORK-UNPICKLED-STATE", FORKY)
    assert [f.line for f in reads] == [22]
    message = reads[0].message
    assert "`_SETTINGS`" in message
    # The message names the coordinator-side writer so the fix is
    # obvious: run it in an initializer or pass the value through.
    assert "set_scale" in message


def test_unreachable_and_immutable_state_stay_silent(fixture_report):
    fork_rules = {
        "FORK-GLOBAL-WRITE",
        "FORK-LAZY-INIT",
        "FORK-UNPICKLED-STATE",
    }
    in_forky = [
        f
        for f in fixture_report.findings
        if f.path == FORKY and f.rule in fork_rules
    ]
    # coordinator_only's write (line 44) is not worker-reachable, and
    # the `_CODES` tuple is immutable: neither may appear.
    assert {f.line for f in in_forky} == {16, 22, 28}
    assert not any("coordinator_only" in f.message for f in in_forky)
    assert not any("_CODES" in f.message for f in in_forky)


def test_default_worker_entries_cover_the_executor_lanes():
    assert set(forksafety.DEFAULT_WORKER_ENTRIES) == {
        "_PointCall.__call__",
        "_farm_worker",
        "_seed_stream_cache",
    }


def test_live_tree_fork_findings_are_all_audited(live_report):
    fork_rules = {
        "FORK-GLOBAL-WRITE",
        "FORK-LAZY-INIT",
        "FORK-UNPICKLED-STATE",
    }
    assert not any(f.rule in fork_rules for f in live_report.findings)
    # The by-design per-process caches carry inline audits instead.
    audited = [
        f for f in live_report.suppressed if f.rule in fork_rules
    ]
    assert len(audited) >= 7
    assert {f.path for f in audited} >= {
        "telemetry/record.py",
        "harness/executor.py",
        "workloads/trace.py",
    }
