"""Per-core DVFS: the extension the paper marks "beyond the scope".

Section 3.1 notes that letting each core run at its own frequency is
conceivable but out of scope; the related work (Kadayif et al. [21])
proposes exactly that — slow down lightly-loaded threads so everyone
reaches the barrier together, saving energy at (ideally) no performance
cost.  With the simulator's per-core clock domains this policy is a
few lines:

1. run the application once at uniform nominal V/f and record each
   thread's *work time* (busy + memory stalls, excluding barrier waits);
2. set each core's frequency so its work stretches to just fill the
   slowest thread's time — ``f_i = f_nom * work_i / max_work`` — snapped
   *up* to the V/f table's grid (conservative: never slower than the
   policy asks), with the voltage from the table;
3. re-run with per-core operating points and compare time and energy.

The imbalance-heavy applications (Volrend, Cholesky, Raytrace) are where
the policy pays; perfectly balanced codes have nothing to harvest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.sim.cmp import SimulationResult
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class PerCoreDVFSResult:
    """Uniform-nominal versus per-core-DVFS comparison for one (app, N)."""

    app: str
    n: int
    uniform_time_s: float
    uniform_energy_j: float
    percore_time_s: float
    percore_energy_j: float
    core_frequencies_hz: Tuple[float, ...]
    core_voltages: Tuple[float, ...]

    @property
    def energy_saving(self) -> float:
        """Fractional energy saved by the per-core policy."""
        return 1.0 - self.percore_energy_j / self.uniform_energy_j

    @property
    def slowdown(self) -> float:
        """Execution-time ratio (per-core / uniform); ~1 is the goal."""
        return self.percore_time_s / self.uniform_time_s


def _snap_up(context: ExperimentContext, f_hz: float) -> float:
    """Snap a frequency up to the V/f table's 200 MHz grid."""
    step = 200e6
    snapped = math.ceil(f_hz / step) * step
    return context.clamp_frequency(snapped)


def plan_core_frequencies(
    context: ExperimentContext,
    uniform: SimulationResult,
    guard: float = 1.0,
) -> List[float]:
    """The Kadayif-style frequency assignment from a uniform profile.

    ``guard`` > 1 leaves headroom (runs each core slightly faster than
    the exact fill-the-barrier frequency) to absorb second-order effects
    such as shifted contention.
    """
    if guard < 1.0:
        raise ConfigurationError("guard must be >= 1")
    works = [stats.total_active_ps for stats in uniform.core_stats]
    slowest = max(works)
    if slowest <= 0:
        raise ConfigurationError("uniform profile recorded no work")
    f_nominal = context.f_nominal
    return [
        _snap_up(context, f_nominal * (work / slowest) * guard) for work in works
    ]


def run_percore_dvfs(
    context: ExperimentContext,
    model: WorkloadModel,
    n_threads: int,
    guard: float = 1.0,
) -> PerCoreDVFSResult:
    """Evaluate the per-core DVFS policy on one (application, N) point."""
    if n_threads < 2:
        raise ConfigurationError("per-core DVFS needs at least two threads")

    uniform_result, uniform_power = context.run(model, n_threads)
    frequencies = plan_core_frequencies(context, uniform_result, guard)
    voltages = [context.vf_table.voltage_for_frequency(f) for f in frequencies]

    scaled = model
    if context.workload_scale != 1.0:
        scaled = WorkloadModel(model.spec.scaled(context.workload_scale))
    from repro.sim.cmp import ChipMultiprocessor  # local import: avoids cycle
    from repro.sim.ops import compile_workload

    compiled = compile_workload(scaled, n_threads)
    chip = ChipMultiprocessor(
        context.cmp_config, fast_path=context.fast_path, profile=context.profile
    )
    percore_result = chip.run(
        compiled.program,
        scaled.core_timing(),
        warmup_barriers=scaled.warmup_barriers,
        core_operating_points=list(zip(frequencies, voltages)),
    )
    if percore_result.kernel is not None:
        percore_result.kernel.compile_s = compiled.seconds
        percore_result.kernel.compile_cache_hit = compiled.from_cache
        context.kernel_log.add(percore_result.kernel)
    percore_power = context.chip_power.evaluate(percore_result)

    return PerCoreDVFSResult(
        app=model.name,
        n=n_threads,
        uniform_time_s=uniform_result.execution_time_s,
        uniform_energy_j=uniform_power.energy_j,
        percore_time_s=percore_result.execution_time_s,
        percore_energy_j=percore_power.energy_j,
        core_frequencies_hz=tuple(frequencies),
        core_voltages=tuple(voltages),
    )


def run_percore_dvfs_suite(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    n_threads: int = 16,
    guard: float = 1.0,
) -> List[PerCoreDVFSResult]:
    """The policy across a set of applications."""
    results = []
    for model in models:
        if not model.supports(n_threads):
            continue
        results.append(run_percore_dvfs(context, model, n_threads, guard))
    return results
