"""Property-based tests of the MESI protocol invariants.

Hypothesis drives random multi-core read/write interleavings through the
coherence controller and checks the protocol's safety invariants after
every operation:

* **single-writer**: a MODIFIED line exists in at most one L1, and no
  other L1 holds that line in any state;
* **exclusive means alone**: an EXCLUSIVE line has no other holders;
* **sharer-map accuracy**: the snoop filter lists exactly the caches
  that hold each line.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.bus import BusConfig, SharedBus
from repro.sim.cache import Cache, CacheConfig, EXCLUSIVE, MODIFIED
from repro.sim.clock import ClockDomain
from repro.sim.coherence import MESIController
from repro.sim.memory import MainMemory

N_CORES = 4

#: A small pool of addresses with deliberate set conflicts (the cache
#: below has 8 sets x 2 ways, lines of 64 B).
ADDRESS_POOL = [i * 64 for i in range(6)] + [i * 64 * 8 for i in range(6)]

operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_CORES - 1),
        st.sampled_from(ADDRESS_POOL),
        st.booleans(),
    ),
    min_size=1,
    max_size=120,
)


def make_controller():
    clock = ClockDomain(3.2e9)
    l1s = [Cache(CacheConfig(1024, 64, 2)) for _ in range(N_CORES)]
    l2 = Cache(CacheConfig(16 * 1024, 128, 8))
    return MESIController(l1s, l2, SharedBus(BusConfig(), clock), MainMemory(), clock)


def check_invariants(ctrl):
    # Collect resident lines per core.
    holders = {}
    for core_id, cache in enumerate(ctrl.l1s):
        for line, state in cache.entries():
            holders.setdefault(line, []).append((core_id, state))

    for line, entries in holders.items():
        states = [state for _, state in entries]
        if MODIFIED in states:
            assert len(entries) == 1, f"M line {line:#x} has co-holders: {entries}"
        if EXCLUSIVE in states:
            assert len(entries) == 1, f"E line {line:#x} has co-holders: {entries}"

    # Sharer map exactly mirrors residency.
    for line in ctrl._sharers:
        resident = {
            core_id
            for core_id, cache in enumerate(ctrl.l1s)
            if cache.probe(line) is not None
        }
        assert set(ctrl.sharer_ids(line)) == resident, (
            f"sharer map drift on line {line:#x}"
        )
    # ...and no resident line is missing from the map.
    for line, entries in holders.items():
        assert line in ctrl._sharers
        assert {core_id for core_id, _ in entries} == set(ctrl.sharer_ids(line))


@given(ops=operations)
@settings(max_examples=120, deadline=None)
def test_mesi_invariants_hold_under_random_traffic(ops):
    ctrl = make_controller()
    t = 0
    for core_id, address, is_write in ops:
        if is_write:
            t = ctrl.write(core_id, address, t) + 1
        else:
            t = ctrl.read(core_id, address, t) + 1
        check_invariants(ctrl)


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_time_never_goes_backwards(ops):
    ctrl = make_controller()
    t = 0
    for core_id, address, is_write in ops:
        done = (
            ctrl.write(core_id, address, t)
            if is_write
            else ctrl.read(core_id, address, t)
        )
        assert done >= t
        t = done


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_stats_are_consistent(ops):
    ctrl = make_controller()
    t = 0
    for core_id, address, is_write in ops:
        if is_write:
            t = ctrl.write(core_id, address, t) + 1
        else:
            t = ctrl.read(core_id, address, t) + 1
    stats = ctrl.stats
    assert stats.l1_hits + stats.l1_misses == len(ops)
    # Every L1 miss consults exactly one data source.
    assert stats.l2_hits + stats.l2_misses + stats.cache_to_cache == stats.l1_misses
    assert stats.memory_reads == stats.l2_misses
