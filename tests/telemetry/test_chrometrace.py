"""Tests for the Chrome trace exporter and the plain-text metrics table."""

import json

from repro.harness.executor import PointOutcome
from repro.telemetry.chrometrace import (
    chrome_trace_document,
    export_chrome_trace,
    metrics_table,
)
from repro.telemetry.manifest import TelemetryRun
from repro.telemetry.record import KernelRecord, PointTelemetry
from repro.telemetry.trace import SpanRecord


def traced_run(tmp_path):
    """A finalized run with spans from two pids and one point event."""
    run = TelemetryRun(tmp_path, command="fig3")
    run.record_spans(
        [
            SpanRecord(
                name="kernel.window",
                start_us=1_000.0,
                duration_us=500.0,
                args=(("mode", "fast"),),
                children=(
                    SpanRecord(
                        name="kernel.slow_path.memory",
                        start_us=1_100.0,
                        duration_us=200.0,
                        args=(("aggregated", True), ("count", 40)),
                    ),
                ),
            )
        ],
        pid=111,
    )
    run.record_spans(
        [SpanRecord(name="power.solve", start_us=1_600.0, duration_us=100.0)],
        pid=222,
    )
    telemetry = PointTelemetry(
        pid=111,
        start_us=990.0,
        wall_s=0.0008,
        kernels=(
            KernelRecord(
                mode="fast",
                total_ops=120,
                fast_path_ops=100,
                slow_path_ops=15,
                barrier_ops=5,
                sim_wall_s=0.0005,
                compile_s=0.0,
                compile_cache_hit=False,
            ),
        ),
    )
    run.record_point(
        PointOutcome(index=0, key="k0", value=1, telemetry=telemetry)
    )
    run.finalize()
    return run


class TestChromeTraceDocument:
    def test_schema_of_every_event(self, tmp_path):
        run = traced_run(tmp_path)
        document = chrome_trace_document(run.directory)
        events = document["traceEvents"]
        assert events, "expected trace events"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["ts"] >= 0 and event["dur"] >= 0
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["run_id"] == run.run_id
        assert document["otherData"]["command"] == "fig3"

    def test_spans_points_and_metadata_rows(self, tmp_path):
        run = traced_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "span"]
        points = [e for e in events if e["ph"] == "X" and e["cat"] == "point"]
        names = {e["name"] for e in spans}
        assert names == {
            "kernel.window",
            "kernel.slow_path.memory",
            "power.solve",
        }
        assert {e["pid"] for e in spans} == {111, 222}
        (point,) = points
        assert point["name"] == "point[0]"
        assert point["tid"] != spans[0]["tid"]  # separate track
        assert point["args"]["ops"] == 120
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {111, 222}
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}

    def test_timestamps_are_rebased_to_near_zero(self, tmp_path):
        run = traced_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        nested = next(e for e in xs if e["name"] == "kernel.slow_path.memory")
        window = next(e for e in xs if e["name"] == "kernel.window")
        assert window["ts"] <= nested["ts"]
        assert nested["ts"] + nested["dur"] <= window["ts"] + window["dur"]

    def test_export_writes_parseable_json(self, tmp_path):
        run = traced_run(tmp_path)
        output = tmp_path / "trace.json"
        document = export_chrome_trace(run.directory, output)
        parsed = json.loads(output.read_text())
        assert parsed == json.loads(json.dumps(document))
        assert parsed["traceEvents"]


class TestMetricsTable:
    def test_table_aggregates_phases_with_counts(self, tmp_path):
        run = traced_run(tmp_path)
        text = metrics_table(run.directory)
        assert "1 points" in text and "120 simulated ops" in text
        lines = {
            line.split()[0]: line.split()
            for line in text.splitlines()
            if line.strip().startswith(("kernel.", "power."))
        }
        # Aggregated spans contribute their event count, not 1.
        assert lines["kernel.slow_path.memory"][1] == "40"
        assert lines["kernel.window"][1] == "1"
        assert lines["power.solve"][1] == "1"

    def test_table_mentions_missing_spans(self, tmp_path):
        run = TelemetryRun(tmp_path)
        run.finalize()
        assert "no spans recorded" in metrics_table(run.directory)
