"""Tests for the lumped compact thermal model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.thermal import CompactThermalModel
from repro.units import celsius_to_kelvin


# Module-scoped: the model is immutable after calibration, so sharing it
# across hypothesis examples is safe.
@pytest.fixture(scope="module")
def model():
    m = CompactThermalModel(ambient_celsius=45.0)
    m.calibrate(60.0, t1_celsius=100.0)
    return m


class TestCalibration:
    def test_design_point_reproduced(self, model):
        # One core at 60 W must sit exactly at 100 C.
        assert model.temperature_celsius(60.0, 1) == pytest.approx(100.0)

    def test_uncalibrated_use_rejected(self):
        with pytest.raises(ConfigurationError):
            CompactThermalModel().temperature_k(10.0, 1)

    def test_bad_calibration_rejected(self):
        m = CompactThermalModel(ambient_celsius=45.0)
        with pytest.raises(ConfigurationError):
            m.calibrate(0.0)
        with pytest.raises(ConfigurationError):
            m.calibrate(60.0, t1_celsius=45.0)

    def test_spreading_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            CompactThermalModel(spreading_fraction=1.5)


class TestTemperature:
    def test_zero_power_is_ambient(self, model):
        assert model.temperature_celsius(0.0, 4) == pytest.approx(45.0)

    def test_monotone_in_power(self, model):
        t_low = model.temperature_k(10.0, 4)
        t_high = model.temperature_k(20.0, 4)
        assert t_high > t_low

    def test_spreading_over_more_cores_is_cooler(self, model):
        # Same total power over more active cores lowers local density.
        t_concentrated = model.temperature_k(60.0, 1)
        t_spread = model.temperature_k(60.0, 16)
        assert t_spread < t_concentrated

    def test_full_chip_at_per_core_design_power_stays_moderate(self, model):
        # 16 cores each at the single-core design power: temperature rises
        # mostly through the package term, far less than 16x.
        t16 = model.temperature_celsius(16 * 60.0, 16)
        assert 100.0 < t16  # hotter than one core...
        rise_16 = t16 - 45.0
        rise_1 = 55.0
        assert rise_16 < 16 * rise_1  # ...but sublinear in total power

    def test_invalid_queries(self, model):
        with pytest.raises(ConfigurationError):
            model.temperature_k(-1.0, 2)
        with pytest.raises(ConfigurationError):
            model.temperature_k(1.0, 0)

    @given(
        watts=st.floats(min_value=0.0, max_value=500.0),
        n=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50)
    def test_never_below_ambient(self, model, watts, n):
        assert model.temperature_k(watts, n) >= celsius_to_kelvin(45.0) - 1e-9

    @given(n=st.integers(min_value=1, max_value=32))
    @settings(max_examples=32)
    def test_monotone_in_active_cores(self, model, n):
        # At fixed total power, more active cores never raises temperature.
        if n > 1:
            assert model.temperature_k(60.0, n) <= model.temperature_k(60.0, n - 1)
