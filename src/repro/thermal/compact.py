"""A two-parameter lumped thermal model for the analytical scenarios.

Section 2.2 runs HotSpot inside the analytical iteration just to get an
operating temperature for the leakage term.  For that purpose the full RC
network is overkill: what matters is that (a) temperature rises with total
chip power through the package, (b) it also rises with *local* power
density (per-active-core power), and (c) it can never fall below ambient.

This model captures exactly that::

    T = T_amb + r_package * P_total + r_local * (P_total / N_active)

The two resistances are set by a single calibration point — the 1-core
full-throttle run pinned at the 100 C design temperature — split by a
``spreading_fraction`` that says how much of the 1-core temperature rise
is local density versus package bottleneck.  The split controls how fast
temperature falls as work spreads over more cores; the default 0.85
(density-dominated, as expected of a package sized for the whole 32-core
chip rather than one hot core) reproduces both the steep-then-flattening
temperature curves of Figure 3 and the paper's Figure 1 behaviour where
even a 2-core full-throttle run stays near the design temperature.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.units import celsius_to_kelvin


@dataclass
class CompactThermalModel:
    """Lumped average-die-temperature model with a 1-core calibration point.

    Use :meth:`calibrate` once with the single-core full-throttle power,
    then query :meth:`temperature_k` inside the power/thermal fixed-point
    loop.
    """

    ambient_celsius: float = 45.0
    spreading_fraction: float = 0.85
    _r_package: float = field(default=0.0, init=False, repr=False)
    _r_local: float = field(default=0.0, init=False, repr=False)
    _calibrated: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.spreading_fraction <= 1.0:
            raise ConfigurationError("spreading_fraction must be in [0, 1]")

    @property
    def ambient_k(self) -> float:
        """Ambient temperature in kelvin."""
        return celsius_to_kelvin(self.ambient_celsius)

    def calibrate(self, p1_watts: float, t1_celsius: float = 100.0) -> None:
        """Pin the 1-core full-throttle point at ``t1_celsius``.

        ``p1_watts`` is the total chip power of the single-core
        configuration at nominal V/f (the paper's design point).
        """
        if p1_watts <= 0:
            raise ConfigurationError("calibration power must be positive")
        rise = t1_celsius - self.ambient_celsius
        if rise <= 0:
            raise ConfigurationError(
                "design-point temperature must exceed ambient "
                f"({t1_celsius} C vs {self.ambient_celsius} C)"
            )
        total_resistance = rise / p1_watts
        self._r_local = self.spreading_fraction * total_resistance
        self._r_package = (1.0 - self.spreading_fraction) * total_resistance
        self._calibrated = True

    def temperature_k(self, total_power_w: float, n_active: int) -> float:
        """Average die temperature (kelvin) for a chip power and core count."""
        if not self._calibrated:
            raise ConfigurationError("CompactThermalModel.calibrate was never called")
        if total_power_w < 0:
            raise ConfigurationError("power must be non-negative")
        if n_active < 1:
            raise ConfigurationError("need at least one active core")
        rise = (
            self._r_package * total_power_w
            + self._r_local * total_power_w / n_active
        )
        return self.ambient_k + rise

    def temperature_celsius(self, total_power_w: float, n_active: int) -> float:
        """Average die temperature in degrees Celsius."""
        return self.temperature_k(total_power_w, n_active) - 273.15
