"""Inline-suppression fixture: violations with allow comments."""

import time


def profiled() -> float:
    # repro: allow[DET-WALLCLOCK] host-side timer for the fixture tests
    started = time.perf_counter()
    elapsed = time.perf_counter() - started  # repro: allow[DET-WALLCLOCK] same
    return elapsed


def multi_rule(cores: set) -> float:
    # repro: allow[DET-SET-ORDER, DET-FLOAT-SUM] order-free by construction
    return sum(1.0 for _ in cores)


def not_a_marker() -> str:
    return "# repro: allow[DET-WALLCLOCK] inside a string, not a comment"
