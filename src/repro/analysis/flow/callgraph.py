"""Name-resolved call graph over one :class:`TreeIndex`.

Each function or method definition becomes one node; call sites become
edges resolved *by name* against the index, matching the resolution
contract the rest of the analyzer uses (this is a convention checker
for one repository, where bare callable names are near-unique).

Two deliberate conservatisms:

* **Dynamic dispatch fallback** — a name with several definitions links
  to *all* of them (``ambiguous=True`` on the edge).  Reachability
  analyses (fork safety) union over candidates, over-approximating what
  can run; finding emitters that anchor a diagnostic to one callee
  require agreement across candidates, under-approximating what they
  claim.  The may/must split keeps the graph sound for reachability
  without turning name collisions into noise.
* **Reference edges** — a function name passed as a value
  (``Process(target=_farm_worker)``, ``executor.map(point_fn, grid)``)
  produces a ``kind="ref"`` edge: the function is not called *here*,
  but escaping as a value means it may be called by machinery the
  graph cannot see.  Reachability includes ref edges; call-path
  reconstruction does not.

Calls that resolve to nothing in the tree (builtins, stdlib, attribute
chains on unknown objects) are counted per node in
:attr:`CallGraph.unresolved` rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.index import FunctionInfo, TreeIndex
from repro.analysis.source import FunctionNode

#: AST nodes that open a new analysis scope: their bodies belong to
#: their own graph nodes, not to the enclosing function.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def node_id(info: FunctionInfo) -> str:
    """Stable unique id of one definition: ``rel::qualname:line``."""
    return f"{info.file.rel}::{info.qualname}:{info.node.lineno}"


def owned_nodes(root: FunctionNode) -> Iterator[ast.AST]:
    """Every AST node executing *in* ``root``'s own frame.

    Descends into expressions, lambdas, and compound statements, but
    not into nested ``def``/``class`` bodies (those are separate graph
    nodes).  Decorators and default-argument expressions of nested
    definitions *do* evaluate in the enclosing frame, so they are
    yielded.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPE_NODES):
            # The body runs in its own frame; decorators and argument
            # defaults evaluate here.
            stack.extend(getattr(node, "decorator_list", []))
            args = getattr(node, "args", None)
            if args is not None:
                stack.extend(args.defaults)
                stack.extend(d for d in args.kw_defaults if d is not None)
        else:
            stack.extend(ast.iter_child_nodes(node))


@dataclass(frozen=True)
class CallEdge:
    """One resolved call or reference site."""

    line: int
    #: Bare callee name as written at the site.
    name: str
    #: Target node id.
    target: str
    #: ``"call"`` (the name is invoked here) or ``"ref"`` (the function
    #: escapes as a value and may be invoked elsewhere).
    kind: str
    #: Whether the name resolved to more than one definition.
    ambiguous: bool


@dataclass
class CallGraph:
    """Nodes, forward edges, and reverse edges of one analyzed tree."""

    nodes: Dict[str, FunctionInfo] = field(default_factory=dict)
    edges: Dict[str, Tuple[CallEdge, ...]] = field(default_factory=dict)
    callers: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Count of call sites per node whose callee could not be resolved.
    unresolved: Dict[str, int] = field(default_factory=dict)

    def qualname(self, nid: str) -> str:
        """Human-readable qualified name of a node id."""
        info = self.nodes.get(nid)
        return info.qualname if info is not None else nid

    def ids_for_name(self, name: str) -> Tuple[str, ...]:
        """Node ids whose bare name or qualname equals ``name``, sorted."""
        matches = [
            nid
            for nid, info in self.nodes.items()
            if info.name == name or info.qualname == name
        ]
        return tuple(sorted(matches))

    def callees(self, nid: str, include_refs: bool = False) -> Tuple[str, ...]:
        """Deduplicated, sorted callee node ids of ``nid``."""
        out: Set[str] = set()
        for edge in self.edges.get(nid, ()):
            if edge.kind == "call" or include_refs:
                out.add(edge.target)
        return tuple(sorted(out))

    def reachable(
        self, roots: Iterable[str], include_refs: bool = True
    ) -> Set[str]:
        """Every node reachable from ``roots`` (which are included).

        Unions over ambiguous candidates — the conservative
        over-approximation reachability analyses need.
        """
        seen: Set[str] = set()
        stack: List[str] = sorted(r for r in roots if r in self.nodes)
        while stack:
            nid = stack.pop()
            if nid in seen:
                continue
            seen.add(nid)
            for target in self.callees(nid, include_refs=include_refs):
                if target not in seen:
                    stack.append(target)
        return seen

    def shortest_path(
        self,
        start: str,
        is_target: Callable[[str], bool],
        include_refs: bool = False,
    ) -> Optional[List[str]]:
        """Deterministic BFS path from ``start`` to a target node.

        Neighbors expand in sorted order, so equal-length paths resolve
        the same way on every run — taint-path messages must be stable
        for the line-insensitive baseline to work.
        """
        if start not in self.nodes:
            return None
        if is_target(start):
            return [start]
        parents: Dict[str, str] = {}
        frontier: List[str] = [start]
        seen: Set[str] = {start}
        while frontier:
            next_frontier: List[str] = []
            for nid in frontier:
                for target in self.callees(nid, include_refs=include_refs):
                    if target in seen:
                        continue
                    seen.add(target)
                    parents[target] = nid
                    if is_target(target):
                        path = [target]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    next_frontier.append(target)
            frontier = next_frontier
        return None


def _constructor_candidates(
    index: TreeIndex, class_name: str
) -> List[FunctionInfo]:
    """``__init__`` definitions of classes named ``class_name``."""
    inits: List[FunctionInfo] = []
    for cls in index.classes.get(class_name, []):
        wanted = f"{cls.qualname}.__init__"
        for info in index.functions.get("__init__", []):
            if info.qualname == wanted and info.file is cls.file:
                inits.append(info)
    return inits


def call_candidates(
    index: TreeIndex, func: ast.expr
) -> Tuple[str, List[FunctionInfo]]:
    """``(bare name, candidate definitions)`` for a call's func expr."""
    if isinstance(func, ast.Name):
        name = func.id
        candidates = list(index.functions.get(name, []))
        if not candidates:
            candidates = _constructor_candidates(index, name)
        return name, candidates
    if isinstance(func, ast.Attribute):
        return func.attr, list(index.functions.get(func.attr, []))
    return "", []


def build_call_graph(index: TreeIndex) -> CallGraph:
    """Construct the call graph for every definition in ``index``."""
    graph = CallGraph()
    infos: List[FunctionInfo] = sorted(
        (info for defs in index.functions.values() for info in defs),
        key=lambda i: (i.file.rel, i.node.lineno, i.qualname),
    )
    for info in infos:
        graph.nodes[node_id(info)] = info

    reverse: Dict[str, Set[str]] = {}
    for info in infos:
        nid = node_id(info)
        edges: List[CallEdge] = []
        unresolved = 0
        call_func_exprs: Set[int] = set()
        calls: List[ast.Call] = []
        names: List[ast.expr] = []
        for node in owned_nodes(info.node):
            if isinstance(node, ast.Call):
                calls.append(node)
                call_func_exprs.add(id(node.func))
            elif isinstance(node, (ast.Name, ast.Attribute)):
                names.append(node)
        for call in calls:
            name, candidates = call_candidates(index, call.func)
            if not candidates:
                unresolved += 1
                continue
            ambiguous = len(candidates) > 1
            for candidate in candidates:
                edges.append(
                    CallEdge(
                        line=call.lineno,
                        name=name,
                        target=node_id(candidate),
                        kind="call",
                        ambiguous=ambiguous,
                    )
                )
        for expr in names:
            if id(expr) in call_func_exprs:
                continue
            if isinstance(expr, ast.Name):
                if not isinstance(expr.ctx, ast.Load):
                    continue
                name = expr.id
            else:
                if not isinstance(expr.ctx, ast.Load):
                    continue
                name = expr.attr
            candidates = list(index.functions.get(name, []))
            if not candidates:
                continue
            ambiguous = len(candidates) > 1
            for candidate in candidates:
                target = node_id(candidate)
                if target == nid:
                    # Recursive self-reference by name (decorator idiom,
                    # functools.wraps): not an escape.
                    continue
                edges.append(
                    CallEdge(
                        line=expr.lineno,
                        name=name,
                        target=target,
                        kind="ref",
                        ambiguous=ambiguous,
                    )
                )
        ordered = tuple(
            sorted(edges, key=lambda e: (e.line, e.name, e.target, e.kind))
        )
        graph.edges[nid] = ordered
        if unresolved:
            graph.unresolved[nid] = unresolved
        for edge in ordered:
            reverse.setdefault(edge.target, set()).add(nid)

    graph.callers = {
        target: tuple(sorted(sources)) for target, sources in reverse.items()
    }
    return graph
