"""Fixpoint solver properties: termination, order independence."""

from typing import FrozenSet, Mapping

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flow import (
    FixpointDiverged,
    join_sets,
    solve_summaries,
)


def _reaches_transfer(nid, info, summaries: Mapping[str, FrozenSet[str]]):
    """Set-domain transfer: the node's own name + everything callees reach.

    The same shape as the determinism taint: a monotone union over call
    edges, so the least fixpoint is the call-graph reachability closure.
    """
    graph = _reaches_transfer.graph
    values = [frozenset({info.qualname})]
    values.extend(summaries[target] for target in graph.callees(nid))
    return join_sets(values)


def _solve_reaches(graph, order=None):
    _reaches_transfer.graph = graph
    return solve_summaries(
        graph, _reaches_transfer, frozenset(), order=order
    )


def _by_qualname(graph, summaries):
    return {
        graph.qualname(nid): value for nid, value in summaries.items()
    }


def test_fixpoint_closes_over_cycles(fixture_graph):
    named = _by_qualname(fixture_graph, _solve_reaches(fixture_graph))
    # Mutual recursion: each member reaches the whole cycle.
    assert {"ping", "pong"} <= named["ping"]
    assert {"ping", "pong"} <= named["pong"]
    # Direct recursion terminates and includes itself exactly once.
    assert "countdown" in named["countdown"]
    # The match dispatcher reaches all three branches.
    assert {"ping", "pong", "countdown"} <= named["dispatch_shape"]


def test_ref_edges_do_not_propagate_call_summaries(fixture_graph):
    named = _by_qualname(fixture_graph, _solve_reaches(fixture_graph))
    # escape_reference only *mentions* countdown; with include_refs left
    # off the summary must not absorb the callee's facts.
    assert named["escape_reference"] == {"escape_reference"}


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_fixpoint_is_worklist_order_independent(fixture_graph, data):
    node_ids = sorted(fixture_graph.nodes)
    order = data.draw(st.permutations(node_ids))
    assert _solve_reaches(fixture_graph, order=list(order)) == (
        _solve_reaches(fixture_graph)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_fixpoint_terminates_for_monotone_transfer(fixture_graph, seed):
    import random

    node_ids = sorted(fixture_graph.nodes)
    order = list(node_ids)
    random.Random(seed).shuffle(order)
    summaries = _solve_reaches(fixture_graph, order=order)
    # Every node got a summary containing at least itself.
    for nid, value in summaries.items():
        assert fixture_graph.qualname(nid) in value


def test_non_monotone_transfer_raises_instead_of_hanging(fixture_graph):
    counter = {"n": 0}

    def oscillating(nid, info, summaries):
        # Never stabilizes: each evaluation returns a fresh value, and
        # the self-recursive nodes keep requeuing themselves.
        counter["n"] += 1
        return counter["n"]

    with pytest.raises(FixpointDiverged):
        solve_summaries(fixture_graph, oscillating, 0)


def test_join_sets_is_a_plain_union():
    assert join_sets([]) == frozenset()
    assert join_sets(
        [frozenset({"a"}), frozenset({"b"}), frozenset({"a", "c"})]
    ) == {"a", "b", "c"}
