"""Persistence for experiment results (JSON on disk).

Experimental pipelines take minutes at full scale; a release-grade
harness lets users save a campaign's rows and reload them later for
reporting or comparison without re-simulating.  The store serialises the
flat row dataclasses (:class:`Scenario1Row`, :class:`Scenario2Row`,
:class:`PerCoreDVFSResult`, :class:`DesignPoint`) with a type tag, a
schema version, and a provenance block (the commit SHA of the producing
checkout — deterministic, so identical campaigns stay byte-identical),
and refuses files it does not understand.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.core.sweeps import Figure1Row, Figure2Row
from repro.errors import ConfigurationError
from repro.harness.designspace import DesignPoint, DesignRunRow
from repro.harness.journal import FailedPointRow
from repro.harness.optimizer import OptimizerRow
from repro.harness.percore import PerCoreDVFSResult
from repro.harness.profiling import SimPointRow
from repro.harness.scenario1 import Scenario1Row
from repro.harness.scenario2 import OverclockRow, Scenario2Row

# Bump (in repro.harness.schema) when the row schemas change
# incompatibly; re-exported here for backward compatibility.
from repro.harness.schema import SCHEMA_VERSION
from repro.telemetry.manifest import git_sha

_ROW_TYPES = {
    "scenario1": Scenario1Row,
    "scenario2": Scenario2Row,
    "overclock": OverclockRow,
    "percore": PerCoreDVFSResult,
    "designpoint": DesignPoint,
    "designrun": DesignRunRow,
    "simpoint": SimPointRow,
    "figure1": Figure1Row,
    "figure2": Figure2Row,
    "optimizer": OptimizerRow,
    # Degraded campaigns persist their quarantined/failed points so a
    # partial store is explicit about what is missing and why.
    "failedpoint": FailedPointRow,
}
_TYPE_NAMES = {cls: name for name, cls in _ROW_TYPES.items()}

PathLike = Union[str, Path]
Row = Union[
    Scenario1Row,
    Scenario2Row,
    OverclockRow,
    PerCoreDVFSResult,
    DesignPoint,
    DesignRunRow,
    SimPointRow,
    Figure1Row,
    Figure2Row,
    OptimizerRow,
    FailedPointRow,
]


def failed_point_rows(outcomes) -> List[FailedPointRow]:
    """Convert failed ``PointOutcome``s into storable rows.

    Accepts any iterable of outcome-shaped objects (the executor's
    ``failed`` accumulator, or a full ``map`` result — successes are
    skipped), so degraded campaigns can persist exactly which points
    are missing and why, next to their ordinary rows.
    """
    rows = []
    for outcome in outcomes:
        failure = getattr(outcome, "failure", None)
        if failure is None:
            continue
        rows.append(
            FailedPointRow(
                key=outcome.key or "",
                index=outcome.index,
                error_type=failure.error_type,
                message=failure.message,
                attempts=getattr(outcome, "attempts", 1),
                retryable=getattr(failure, "retryable", False),
            )
        )
    return rows


def _encode_row(row: Row) -> Dict:
    cls = type(row)
    name = _TYPE_NAMES.get(cls)
    if name is None:
        raise ConfigurationError(f"cannot store rows of type {cls.__name__}")
    payload = dataclasses.asdict(row)
    # Tuples become lists in JSON; decode restores them via the dataclass.
    return {"type": name, "data": payload}


def _decode_row(obj: Dict) -> Row:
    try:
        cls = _ROW_TYPES[obj["type"]]
        data = obj["data"]
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed result entry: {obj!r}") from exc
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigurationError(
            f"{obj['type']} entry has unknown fields {sorted(unknown)}"
        )
    # Restore tuple-typed fields (JSON round-trips them as lists).
    coerced = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
    return cls(**coerced)


def save_results(results: Dict[str, Sequence[Row]], path: PathLike) -> None:
    """Write a campaign — named groups of rows — to ``path`` as JSON.

    Groups are written sorted by name so the document (and therefore
    its diff, digest, and load order) is deterministic regardless of
    the insertion order of ``results``; rows keep their order within a
    group.
    """
    document = {
        "schema": SCHEMA_VERSION,
        "provenance": {"git_sha": git_sha()},
        "groups": {
            name: [_encode_row(row) for row in results[name]]
            for name in sorted(results)
        },
    }
    Path(path).write_text(json.dumps(document, indent=1), encoding="utf-8")


def load_results(path: PathLike) -> Dict[str, List[Row]]:
    """Load a campaign previously written by :func:`save_results`.

    Groups come back sorted by name (deterministic load order even for
    hand-edited files); a schema version this library does not support
    is rejected with a :class:`ConfigurationError` naming the file.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(document, dict) or "schema" not in document:
        raise ConfigurationError(f"{path}: not a repro results file")
    if document["schema"] != SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path}: unknown results schema {document['schema']!r}; this "
            f"version of repro supports schema {SCHEMA_VERSION} — regenerate "
            "the campaign or upgrade the library"
        )
    groups = document.get("groups", {})
    if not isinstance(groups, dict):
        raise ConfigurationError(f"{path}: malformed groups section")
    return {
        name: [_decode_row(entry) for entry in groups[name]]
        for name in sorted(groups)
    }
