"""Set-associative caches with LRU replacement and MESI line states.

The cache stores *line states*, not data — this is a timing/energy
simulator.  Lines are identified by their line address (byte address
shifted by the line-size log).  States follow MESI:

* ``MODIFIED`` — exclusive dirty,
* ``EXCLUSIVE`` — exclusive clean,
* ``SHARED`` — possibly replicated, clean,
* invalid lines are simply absent.

LRU is implemented with insertion-ordered dicts (hits reinsert the key),
which keeps lookups O(1) — the simulator does one lookup per memory
operation, so this is the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

# MESI states (invalid = not present).
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache (Table 1 values as defaults elsewhere)."""

    capacity_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.line_bytes, self.associativity) <= 0:
            raise ConfigurationError("cache parameters must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("line size must be a power of two")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "capacity must divide into line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.line_bytes * self.associativity)

    @property
    def line_shift(self) -> int:
        """log2 of the line size."""
        return self.line_bytes.bit_length() - 1


class Cache:
    """One set-associative cache array tracking MESI line states."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_shift
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        # One insertion-ordered dict per set: line_addr -> state.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self._n_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def line_address(self, byte_address: int) -> int:
        """The line address containing ``byte_address``."""
        return byte_address >> self._line_shift

    def _set_for(self, line_addr: int) -> Dict[int, int]:
        return self._sets[line_addr % self._n_sets]

    def lookup(self, line_addr: int, update_lru: bool = True) -> Optional[int]:
        """State of the line, or None if absent.  Counts hit/miss."""
        cache_set = self._set_for(line_addr)
        state = cache_set.get(line_addr)
        if state is None:
            self.misses += 1
            return None
        self.hits += 1
        if update_lru:
            del cache_set[line_addr]
            cache_set[line_addr] = state
        return state

    def probe(self, line_addr: int) -> Optional[int]:
        """State of the line without touching LRU or counters (snoops)."""
        return self._set_for(line_addr).get(line_addr)

    def touch_hit(self, line_addr: int, state: Optional[int] = None) -> None:
        """Record a hit on a *known-resident* line: LRU move + hit count.

        The fast-path dispatch loop (:meth:`repro.sim.cpu.Core.step_fast`)
        performs exactly this sequence inline after probing the line;
        ``state`` optionally rewrites the line's state in the same move
        (the silent E->M store upgrade).  Equivalent to ``lookup`` (plus
        ``set_state`` when ``state`` is given) for a resident line.
        """
        cache_set = self._sets[line_addr % self._n_sets]
        if state is None:
            state = cache_set[line_addr]
        del cache_set[line_addr]
        cache_set[line_addr] = state
        self.hits += 1

    def set_state(self, line_addr: int, state: int) -> None:
        """Change the state of a resident line (snoop downgrades etc.)."""
        cache_set = self._set_for(line_addr)
        if line_addr not in cache_set:
            raise ConfigurationError(f"line {line_addr:#x} not resident")
        cache_set[line_addr] = state

    def invalidate(self, line_addr: int) -> Optional[int]:
        """Remove a line (snoop invalidation); returns its old state."""
        return self._set_for(line_addr).pop(line_addr, None)

    def insert(self, line_addr: int, state: int) -> Optional[Tuple[int, int]]:
        """Insert a line, evicting LRU if the set is full.

        Returns ``(victim_line, victim_state)`` if something was evicted,
        else None.  A MODIFIED victim increments the writeback counter.
        """
        cache_set = self._set_for(line_addr)
        victim = None
        if line_addr in cache_set:
            del cache_set[line_addr]
        elif len(cache_set) >= self._assoc:
            victim_line = next(iter(cache_set))
            victim_state = cache_set.pop(victim_line)
            victim = (victim_line, victim_state)
            self.evictions += 1
            if victim_state == MODIFIED:
                self.writebacks += 1
        cache_set[line_addr] = state
        return victim

    def resident_lines(self) -> int:
        """Number of currently valid lines (for occupancy tests)."""
        return sum(len(s) for s in self._sets)

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0 if never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0
