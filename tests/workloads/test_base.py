"""Tests for the workload specification and operation-stream generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, WorkloadError
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE
from repro.workloads.base import WorkloadModel, WorkloadSpec

KB = 1024


def make_spec(**overrides):
    defaults = dict(
        name="test",
        problem_size="unit",
        total_instructions=20_000,
        mem_ratio=0.25,
        write_fraction=0.3,
        total_private_bytes=256 * KB,
        shared_bytes=64 * KB,
        shared_fraction=0.2,
        locality=0.9,
        hot_fraction=0.5,
        n_phases=4,
        seed=7,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_spec(mem_ratio=0.0)
        with pytest.raises(ConfigurationError):
            make_spec(locality=1.0)
        with pytest.raises(ConfigurationError):
            make_spec(hot_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            make_spec(serial_fraction=1.0)
        with pytest.raises(ConfigurationError):
            make_spec(imbalance=1.0)
        with pytest.raises(ConfigurationError):
            make_spec(sharing_pattern="ring")
        with pytest.raises(ConfigurationError):
            make_spec(total_instructions=2, n_phases=4)

    def test_scaled(self):
        spec = make_spec()
        half = spec.scaled(0.5)
        assert half.total_instructions == 10_000
        assert half.name == spec.name
        with pytest.raises(ConfigurationError):
            spec.scaled(0.0)


class TestSupports:
    def test_any_count_by_default(self):
        model = WorkloadModel(make_spec())
        assert model.supports(3)
        assert model.supports(16)
        assert not model.supports(0)

    def test_power_of_two_restriction(self):
        model = WorkloadModel(make_spec(power_of_two_only=True))
        assert model.supports(8)
        assert not model.supports(6)
        assert model.supported_thread_counts(range(1, 17)) == [1, 2, 4, 8, 16]

    def test_unsupported_count_raises(self):
        model = WorkloadModel(make_spec(power_of_two_only=True))
        with pytest.raises(WorkloadError):
            next(model.thread_ops(0, 6))

    def test_bad_thread_id(self):
        model = WorkloadModel(make_spec())
        with pytest.raises(WorkloadError):
            next(model.thread_ops(4, 4))


class TestStreamStructure:
    def test_deterministic(self):
        model = WorkloadModel(make_spec())
        a = list(model.thread_ops(0, 4))
        b = list(model.thread_ops(0, 4))
        assert a == b

    def test_threads_differ(self):
        model = WorkloadModel(make_spec())
        assert list(model.thread_ops(0, 4)) != list(model.thread_ops(1, 4))

    def test_barrier_sequences_identical_across_threads(self):
        model = WorkloadModel(make_spec(serial_fraction=0.05, n_phases=3))
        barrier_seqs = []
        for tid in range(4):
            seq = [op[1] for op in model.thread_ops(tid, 4) if op[0] == OP_BARRIER]
            barrier_seqs.append(seq)
        assert all(seq == barrier_seqs[0] for seq in barrier_seqs)
        # Barriers are consecutively numbered from 0.
        assert barrier_seqs[0] == list(range(len(barrier_seqs[0])))

    def test_serial_work_only_on_thread_zero(self):
        spec = make_spec(serial_fraction=0.2, n_phases=2)
        model = WorkloadModel(spec)

        def instructions(tid):
            total = 0
            for op in model.thread_ops(tid, 4):
                if op[0] == OP_COMPUTE:
                    total += op[1]
                elif op[0] in (OP_LOAD, OP_STORE):
                    total += 1
            return total

        assert instructions(0) > 1.5 * instructions(1)

    def test_total_work_roughly_spec(self):
        spec = make_spec()
        model = WorkloadModel(spec)
        total = 0
        for tid in range(4):
            for op in model.thread_ops(tid, 4):
                if op[0] == OP_COMPUTE:
                    total += op[1]
                elif op[0] in (OP_LOAD, OP_STORE):
                    total += 1
        # Within 2x of the spec (warmup adds roughly one extra phase plus
        # the hot-set sweep).
        assert spec.total_instructions * 0.8 < total < spec.total_instructions * 2.0

    def test_memory_ratio_roughly_spec(self):
        spec = make_spec(mem_ratio=0.25)
        model = WorkloadModel(spec)
        mem = compute = 0
        for op in model.thread_ops(0, 1):
            if op[0] == OP_COMPUTE:
                compute += op[1]
            elif op[0] in (OP_LOAD, OP_STORE):
                mem += 1
        observed = mem / (mem + compute)
        assert abs(observed - 0.25) < 0.08

    def test_write_fraction_roughly_spec(self):
        spec = make_spec(write_fraction=0.4, total_instructions=40_000)
        model = WorkloadModel(spec)
        loads = stores = 0
        for op in model.thread_ops(0, 1):
            if op[0] == OP_LOAD:
                loads += 1
            elif op[0] == OP_STORE:
                stores += 1
        assert abs(stores / (loads + stores) - 0.4) < 0.05

    def test_critical_sections_emitted(self):
        spec = make_spec(critical_sections_per_phase=5, n_phases=4)
        model = WorkloadModel(spec)
        criticals = [op for op in model.thread_ops(0, 2) if op[0] == OP_CRITICAL]
        assert len(criticals) >= 4 * 3  # close to 5 per phase
        for op in criticals:
            assert 0 <= op[1] < spec.n_locks

    def test_addresses_respect_thread_privacy(self):
        spec = make_spec(shared_fraction=0.0, hot_fraction=0.0)
        model = WorkloadModel(spec)
        addr0 = {op[1] for op in model.thread_ops(0, 2) if op[0] in (OP_LOAD, OP_STORE)}
        addr1 = {op[1] for op in model.thread_ops(1, 2) if op[0] in (OP_LOAD, OP_STORE)}
        assert not addr0 & addr1

    @given(n=st.sampled_from([1, 2, 4, 8, 16]))
    @settings(max_examples=5, deadline=None)
    def test_stream_finite_and_well_formed(self, n):
        model = WorkloadModel(make_spec(total_instructions=5_000))
        for tid in range(n):
            for op in model.thread_ops(tid, n):
                assert op[0] in (OP_COMPUTE, OP_LOAD, OP_STORE, OP_BARRIER, OP_CRITICAL)


class TestImbalance:
    def test_imbalance_spreads_work(self):
        spec = make_spec(imbalance=0.3, n_phases=1, serial_fraction=0.0)
        model = WorkloadModel(spec)

        def work(tid):
            return sum(
                op[1] if op[0] == OP_COMPUTE else 1
                for op in model.thread_ops(tid, 8)
                if op[0] in (OP_COMPUTE, OP_LOAD, OP_STORE)
            )

        works = [work(t) for t in range(8)]
        assert max(works) > min(works)

    def test_no_imbalance_means_equal_parallel_work(self):
        spec = make_spec(imbalance=0.0, serial_fraction=0.0, shared_fraction=0.0)
        model = WorkloadModel(spec)

        def work(tid):
            return sum(
                op[1] if op[0] == OP_COMPUTE else 1
                for op in model.thread_ops(tid, 4)
                if op[0] in (OP_COMPUTE, OP_LOAD, OP_STORE)
            )

        works = [work(t) for t in range(4)]
        assert max(works) - min(works) < 0.02 * max(works)
