"""The paper's analytical power-performance model (Section 2).

This package quantifies, for a CMP running one parallel application, the
interaction of three knobs:

* **granularity** — number of active cores ``N``,
* **parallel efficiency** — the application's nominal efficiency
  ``eps_n(N)`` (Eq. 6), measured at fixed frequency,
* **DVFS** — chip-wide voltage/frequency scaling under the alpha-power
  law (Eq. 1) with temperature-dependent leakage (Eqs. 2-4).

Two dual solvers implement the paper's scenarios:

* :mod:`~repro.core.scenario1` — *power optimization*: hold performance
  at the 1-core nominal level, minimise power (Section 2.2, Figure 1);
* :mod:`~repro.core.scenario2` — *performance optimization*: hold power
  at the 1-core nominal budget, maximise speedup (Section 2.3, Figure 2).

:mod:`~repro.core.sweeps` packages the exact parameter sweeps behind
Figures 1 and 2 so the benchmark harness and the examples can regenerate
them with one call.
"""

from repro.core.efficiency import (
    EfficiencyCurve,
    ConstantEfficiency,
    AmdahlEfficiency,
    CommunicationOverheadEfficiency,
    MeasuredEfficiency,
    SAMPLE_APPLICATION,
)
from repro.core.perfmodel import (
    ExecutionTimeModel,
    nominal_parallel_efficiency,
    iso_performance_frequency,
    speedup_from_frequency,
)
from repro.core.powermodel import AnalyticalChipModel, PowerBreakdown, OperatingPoint
from repro.core.scenario1 import PowerOptimizationScenario, Scenario1Point
from repro.core.scenario2 import PerformanceOptimizationScenario, Scenario2Point
from repro.core.scenario3 import EnergyOptimizationScenario, Scenario3Point
from repro.core.asymmetric import AsymmetricCMPModel, AsymmetricPoint
from repro.core.sensitivity import (
    SensitivityEntry,
    iso_performance_power_metric,
    peak_speedup_metric,
    sensitivity_analysis,
)
from repro.core.sweeps import (
    figure1_rows,
    figure1_sweep,
    figure2_rows,
    figure2_sweep,
    Figure1Curve,
    Figure1Row,
    Figure2Curve,
    Figure2Row,
)

__all__ = [
    "EfficiencyCurve",
    "ConstantEfficiency",
    "AmdahlEfficiency",
    "CommunicationOverheadEfficiency",
    "MeasuredEfficiency",
    "SAMPLE_APPLICATION",
    "ExecutionTimeModel",
    "nominal_parallel_efficiency",
    "iso_performance_frequency",
    "speedup_from_frequency",
    "AnalyticalChipModel",
    "PowerBreakdown",
    "OperatingPoint",
    "PowerOptimizationScenario",
    "Scenario1Point",
    "PerformanceOptimizationScenario",
    "Scenario2Point",
    "EnergyOptimizationScenario",
    "Scenario3Point",
    "AsymmetricCMPModel",
    "AsymmetricPoint",
    "SensitivityEntry",
    "iso_performance_power_metric",
    "peak_speedup_metric",
    "sensitivity_analysis",
    "figure1_sweep",
    "figure2_sweep",
    "Figure1Curve",
    "Figure1Row",
    "Figure2Curve",
    "Figure2Row",
    "figure1_rows",
    "figure2_rows",
]
