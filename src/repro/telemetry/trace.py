"""Structured tracing: nested spans with monotonic timestamps.

A :class:`Span` brackets one phase of work (workload compile, kernel
window, power solve, thermal solve, ...); a :class:`Tracer` maintains the
current span stack so spans opened inside other spans nest into a tree.
Completed top-level spans accumulate on the tracer until they are
*drained* — either into a :class:`SpanRecord` tree that travels across
process boundaries (worker -> executor outcome channel) or into a
telemetry run's ``spans.jsonl``.

Two properties the hot paths rely on:

* **Zero-allocation no-op when disabled.**  ``tracer.span(...)`` on a
  disabled tracer returns the shared :data:`NULL_SPAN` singleton — no
  object is created, no timestamp read.  The simulator can therefore
  call ``span()`` unconditionally.
* **Bounded memory when enabled.**  A tracer records at most
  ``max_spans`` spans; past the cap, ``span()`` degrades to the no-op
  singleton and counts the drop, so a pathological sweep cannot exhaust
  memory through its own instrumentation.

Timestamps come from :func:`time.perf_counter_ns` (monotonic, immune to
clock steps) and are mapped to absolute wall-clock microseconds through
a process-start anchor, so spans recorded by different worker processes
line up on one Chrome-trace timeline (fork inherits the parent's
anchor; ``CLOCK_MONOTONIC`` is system-wide on Linux).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.units import GIGA, KILO

#: Maps ``perf_counter_ns`` readings onto the wall clock: absolute
#: nanoseconds = reading + anchor.  Captured once per process tree.
_ANCHOR_NS = time.time_ns() - time.perf_counter_ns()


def now_us() -> float:
    """Current absolute time in microseconds on the span timebase."""
    return (time.perf_counter_ns() + _ANCHOR_NS) / KILO


def _scalar(value: Any) -> Any:
    """Coerce a span argument to a JSON-representable scalar."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span, flattened for serialisation.

    The executor's value codec (and plain JSON) can carry this across
    process boundaries; ``start_us`` is absolute wall-clock microseconds
    so records from different processes share a timeline.
    """

    name: str
    start_us: float
    duration_us: float
    args: Tuple[Tuple[str, Any], ...] = ()
    children: Tuple["SpanRecord", ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the ``spans.jsonl`` line payload)."""
        document: Dict[str, Any] = {
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
        }
        if self.args:
            document["args"] = {key: value for key, value in self.args}
        if self.children:
            document["children"] = [c.to_dict() for c in self.children]
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict` (used by the exporters)."""
        return cls(
            name=str(document["name"]),
            start_us=float(document["start_us"]),
            duration_us=float(document["duration_us"]),
            args=tuple(sorted(document.get("args", {}).items())),
            children=tuple(
                cls.from_dict(c) for c in document.get("children", ())
            ),
        )


class Span:
    """One timed phase; use as a context manager via :meth:`Tracer.span`."""

    __slots__ = ("name", "args", "start_ns", "end_ns", "children", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self.name = name
        self.args = args
        self.start_ns = 0
        self.end_ns = 0
        self.children: List["Span"] = []
        self._tracer = tracer

    def set(self, **args: Any) -> None:
        """Attach (or update) arguments on the span."""
        self.args.update(args)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds (0 while still open)."""
        return max(0, self.end_ns - self.start_ns) / GIGA

    def __enter__(self) -> "Span":
        self.start_ns = time.perf_counter_ns()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end_ns = time.perf_counter_ns()
        self._tracer._close(self)

    def record(self) -> SpanRecord:
        """The span (and its subtree) as an immutable record."""
        return SpanRecord(
            name=self.name,
            start_us=(self.start_ns + _ANCHOR_NS) / KILO,
            duration_us=max(0, self.end_ns - self.start_ns) / KILO,
            args=tuple(
                sorted((key, _scalar(value)) for key, value in self.args.items())
            ),
            children=tuple(child.record() for child in self.children),
        )


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (one per process)."""

    __slots__ = ()

    def set(self, **args: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared no-op span: ``tracer.span(...)`` returns this when disabled,
#: so the instrumented hot paths allocate nothing.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one process; drained by the telemetry layer."""

    def __init__(self, enabled: bool = True, max_spans: int = 250_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        #: Spans recorded so far (open + closed); drops start past the cap.
        self.recorded = 0
        #: ``span()`` calls refused because the cap was reached.
        self.dropped = 0
        #: Completed top-level spans awaiting a drain.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # repro: hot
    def span(self, name: str, **args: Any):
        """Open a nested span; returns :data:`NULL_SPAN` when disabled."""
        if not self.enabled:
            return NULL_SPAN
        if self.recorded >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        self.recorded += 1
        return Span(self, name, args)

    def aggregate(self, name: str, seconds: float, count: int = 1, **args: Any) -> None:
        """Record pre-accumulated work as one closed span.

        For phases too hot to bracket individually (the coherence slow
        path times thousands of ops per window), callers accumulate wall
        time with raw counters and report the total once.  The span is
        placed so it *ends now* — the work happened somewhere inside the
        currently open span — and flagged ``aggregated`` with its event
        count so consumers do not mistake it for one contiguous interval.
        """
        if not self.enabled:
            return
        if self.recorded >= self.max_spans:
            self.dropped += 1
            return
        self.recorded += 1
        span = Span(self, name, args)
        span.set(aggregated=True, count=count)
        span.end_ns = time.perf_counter_ns()
        span.start_ns = span.end_ns - max(0, int(seconds * GIGA))
        self._close(span)

    def _close(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def take_roots(self) -> List[Span]:
        """Completed top-level spans; clears them from the tracer."""
        roots, self.roots = self.roots, []
        return roots

    def drain_records(self) -> List[SpanRecord]:
        """Completed top-level spans as records; clears them."""
        return [span.record() for span in self.take_roots()]

    def reset(self) -> None:
        """Drop all collected spans and counters (keeps enabled state)."""
        self.roots.clear()
        self._stack.clear()
        self.recorded = 0
        self.dropped = 0


#: The process-wide tracer every instrumented module consults.  Disabled
#: by default: the no-op path costs one attribute check per call site.
_TRACER = Tracer(enabled=False)


# repro: hot
def get_tracer() -> Tracer:
    """The process-wide tracer."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def enable_tracing(max_spans: int = 250_000) -> Tracer:
    """Install (and return) an enabled process-wide tracer."""
    return_value = Tracer(enabled=True, max_spans=max_spans)
    set_tracer(return_value)
    return return_value


def disable_tracing() -> None:
    """Install a disabled process-wide tracer (the default state)."""
    set_tracer(Tracer(enabled=False))


def span(name: str, **args: Any):
    """Open a span on the process-wide tracer (no-op when disabled)."""
    return _TRACER.span(name, **args)
