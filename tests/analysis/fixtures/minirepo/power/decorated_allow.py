"""Suppression-on-decorator fixture (analyzer fixture; never imported).

The DIM-RETURN finding anchors on the ``def`` line, but the natural
place for the comment is above the decorator stack — coverage must
bridge the gap.
"""

import functools


def power_w(activity: float) -> float:
    return activity * 2.0


# repro: allow[DIM-RETURN] fixture: deliberately unit-erasing wrapper
@functools.lru_cache(maxsize=None)
def cached_ratio_j(activity: float) -> float:
    p = power_w(activity)
    return p * p  # W^2 from a _j function: allowed above the decorator


def stacked_ok_w(activity: float) -> float:
    return power_w(activity)
