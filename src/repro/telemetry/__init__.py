"""Unified telemetry: structured tracing, cross-process metrics, exports.

The subsystem has four pieces, threaded through the simulator, the
power/thermal models, the sweep executor, and the CLI:

* :mod:`repro.telemetry.trace` — ``Span``/``Tracer`` with monotonic
  timestamps, nested spans, and a zero-allocation no-op path when
  disabled (the default);
* :mod:`repro.telemetry.record` — picklable ``KernelRecord`` /
  ``PointTelemetry`` records that carry worker-side kernel stats and
  span trees back through the executor's outcome channel (and into the
  result cache), so ``--profile`` accounts for parallel and warm-cache
  sweeps;
* :mod:`repro.telemetry.manifest` — per-sweep run manifests plus JSONL
  event/span logs under ``--telemetry-dir``, with schema validation;
* :mod:`repro.telemetry.chrometrace` — Chrome ``trace_event`` JSON
  export (``repro trace export``) and plain-text phase metrics
  (``repro trace metrics``).

See docs/OBSERVABILITY.md for the artifact schema and span names.
"""

from repro.telemetry.chrometrace import (
    chrome_trace_document,
    export_chrome_trace,
    metrics_table,
)
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    TelemetryRun,
    git_sha,
    latest_run_dir,
    list_run_dirs,
    load_events,
    load_manifest,
    load_spans,
    resolve_run_dir,
    validate_run_dir,
)
from repro.telemetry.record import (
    KernelRecord,
    PointTelemetry,
    begin_point_capture,
    capturing,
    end_point_capture,
    record_kernel,
)
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    now_us,
    set_tracer,
    span,
)

__all__ = [
    "MANIFEST_SCHEMA",
    "NULL_SPAN",
    "KernelRecord",
    "PointTelemetry",
    "Span",
    "SpanRecord",
    "TelemetryRun",
    "Tracer",
    "begin_point_capture",
    "capturing",
    "chrome_trace_document",
    "disable_tracing",
    "enable_tracing",
    "end_point_capture",
    "export_chrome_trace",
    "get_tracer",
    "git_sha",
    "latest_run_dir",
    "list_run_dirs",
    "load_events",
    "load_manifest",
    "load_spans",
    "metrics_table",
    "now_us",
    "record_kernel",
    "resolve_run_dir",
    "set_tracer",
    "span",
    "validate_run_dir",
]
