"""The HotSpot-style facade: power map in, block temperatures out.

This is the interface both halves of the reproduction use:

* the analytical scenarios need only an *average* die temperature for the
  leakage feedback loop of Eqs. 4/8;
* the experimental Scenario I reports the average operating temperature
  (Figure 3, bottom panel), computed over the cores only — the shared L2
  is excluded from temperature/density averages per Section 3.3.

Calibration follows the paper's renormalisation procedure (Section 3.3):
given the maximum operational power map, scale the package's vertical
thermal resistance so the hottest block sits exactly at the 100 C maximum
operating temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

from repro.errors import ConfigurationError, ConvergenceError
from repro.telemetry.timeseries import get_sampler
from repro.telemetry.trace import get_tracer
from repro.thermal.floorplan import Floorplan
from repro.thermal.rcnetwork import ThermalMaterial, ThermalRCNetwork
from repro.units import celsius_to_kelvin


@dataclass(frozen=True)
class ThermalResult:
    """Block temperatures plus the aggregates the experiments report."""

    block_temperatures_k: Dict[str, float]
    average_k: float
    peak_k: float

    def average_celsius(self) -> float:
        """Average temperature in degrees Celsius."""
        return self.average_k - 273.15

    def peak_celsius(self) -> float:
        """Peak block temperature in degrees Celsius."""
        return self.peak_k - 273.15


class HotSpotModel:
    """Steady-state thermal estimation over a floorplan.

    Parameters
    ----------
    floorplan:
        The die layout.
    ambient_celsius:
        In-box ambient air temperature; the paper uses 45 C (Table 1).
    material:
        Optional override of the silicon/package constants.
    exclude_from_average:
        Block names excluded from the reported average (the paper excludes
        the L2, Section 3.3).  Excluded blocks still participate in the RC
        network and in total power.
    """

    def __init__(
        self,
        floorplan: Floorplan,
        ambient_celsius: float = 45.0,
        material: ThermalMaterial | None = None,
        exclude_from_average: Sequence[str] = (),
    ) -> None:
        self.floorplan = floorplan
        self.ambient_k = celsius_to_kelvin(ambient_celsius)
        self.network = ThermalRCNetwork(floorplan, material)
        missing = set(exclude_from_average) - set(floorplan.names)
        if missing:
            raise ConfigurationError(
                f"exclude_from_average names not in floorplan: {sorted(missing)}"
            )
        self.exclude_from_average = tuple(exclude_from_average)

    def _aggregate(self, temperatures: Mapping[str, float]) -> ThermalResult:
        averaged = {
            name: t
            for name, t in temperatures.items()
            if name not in self.exclude_from_average
        }
        if not averaged:
            raise ConfigurationError("all blocks excluded from the average")
        # Area-weighted average over the reported blocks.
        total_area = sum(self.floorplan.block(n).area for n in averaged)
        average = (
            # repro: allow[DET-FLOAT-SUM] dict preserves the fixed floorplan block order
            sum(t * self.floorplan.block(n).area for n, t in averaged.items())
            / total_area
        )
        return ThermalResult(
            block_temperatures_k=dict(temperatures),
            average_k=average,
            peak_k=max(averaged.values()),
        )

    def solve(self, power_map: Mapping[str, float]) -> ThermalResult:
        """Steady-state temperatures for the given block power map (watts).

        Blocks absent from the map dissipate zero power.  Temperatures are
        floored at ambient by construction of the RC network.
        """
        with get_tracer().span("thermal.solve", blocks=len(power_map)):
            temperatures = self.network.steady_state(power_map, self.ambient_k)
            result = self._aggregate(temperatures)
        sampler = get_sampler()
        if sampler.enabled:
            sampler.sample("thermal.peak_c", result.peak_celsius())
            sampler.sample("thermal.average_c", result.average_celsius())
        return result

    def calibrate(
        self,
        max_power_map: Mapping[str, float],
        peak_celsius: float = 100.0,
    ) -> None:
        """Scale the vertical resistance so ``max_power_map`` peaks at ``peak_celsius``.

        This reproduces the design-point renormalisation of Section 3.3:
        the maximum operational power consumption is defined as the one
        that yields the 100 C maximum operating temperature.  Uses
        bisection on the (monotone) vertical-resistance scale.
        """
        target_k = celsius_to_kelvin(peak_celsius)
        if target_k <= self.ambient_k:
            raise ConfigurationError("calibration target must exceed ambient")
        if all(watts == 0 for watts in max_power_map.values()):
            raise ConfigurationError("calibration power map is all zeros")

        def peak_for_scale(scale: float) -> float:
            network = self.network.with_vertical_scale(scale)
            temperatures = network.steady_state(max_power_map, self.ambient_k)
            reported = {
                name: t
                for name, t in temperatures.items()
                if name not in self.exclude_from_average
            }
            return max(reported.values())

        lo, hi = 1e-6, 1.0
        while peak_for_scale(hi) < target_k:
            hi *= 2.0
            if hi > 1e9:
                raise ConvergenceError("thermal calibration did not bracket the target")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if peak_for_scale(mid) < target_k:
                lo = mid
            else:
                hi = mid
        self.network = self.network.with_vertical_scale(hi)
