"""Exporters: Chrome ``trace_event`` JSON and plain-text metrics tables.

The Chrome trace format (the JSON Array/Object format consumed by
``chrome://tracing`` and https://ui.perfetto.dev) renders one row per
``(pid, tid)`` with nested "X" (complete) events.  We emit

* one "X" event per recorded span (nesting reconstructed from the span
  tree's timestamps),
* one "X" event per sweep point (from ``events.jsonl``), on a dedicated
  ``points`` track per evaluating process, so the executor's fan-out and
  cache behaviour is visible at a glance,
* one "C" (counter) event per timeline sample (from ``timeline.jsonl``),
  which Perfetto renders as per-channel counter tracks — the sampled
  power/thermal/IPC trajectories — aligned with the span rows,
* "M" (metadata) events naming each process row with its executor lane
  and the point indices it evaluated (the coordinator is named as such),
  so a farm worker reads ``repro farm worker 1234 · points 3-5`` instead
  of a bare pid.

Timestamps are absolute wall-clock microseconds shared across worker
processes (see :mod:`repro.telemetry.trace`); the exporter rebases them
to the run's earliest event so traces start near zero.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.manifest import (
    load_events,
    load_manifest,
    load_spans,
    load_timeline,
)
from repro.units import KILO, MEGA

PathLike = Union[str, Path]

#: Virtual thread ids: spans on row 0, sweep points on row 1.
_SPAN_TID = 0
_POINT_TID = 1


def _span_events(
    node: Dict[str, Any], pid: int, out: List[Dict[str, Any]]
) -> None:
    event: Dict[str, Any] = {
        "name": node["name"],
        "cat": "span",
        "ph": "X",
        "pid": pid,
        "tid": _SPAN_TID,
        "ts": node["start_us"],
        "dur": node["duration_us"],
    }
    args = node.get("args")
    if args:
        event["args"] = args
    out.append(event)
    for child in node.get("children", ()):
        _span_events(child, pid, out)


def _format_indices(indices: List[int], limit: int = 6) -> str:
    """Compact a sorted index list into ranges: ``0-2,5,7-9``.

    At most ``limit`` ranges are spelled out (a pool worker in a big
    sweep may evaluate hundreds of points); the rest collapse to an
    ellipsis so the Perfetto row label stays readable.
    """
    ranges: List[str] = []
    start = previous = indices[0]
    for index in indices[1:]:
        if index == previous + 1:
            previous = index
            continue
        ranges.append(str(start) if start == previous else f"{start}-{previous}")
        start = previous = index
    ranges.append(str(start) if start == previous else f"{start}-{previous}")
    if len(ranges) > limit:
        ranges = ranges[:limit] + ["…"]
    return ",".join(ranges)


def _process_names(
    events: List[Dict[str, Any]], coordinator_pid: Optional[int]
) -> Dict[int, str]:
    """One display name per evaluating pid, from the point events."""
    lanes: Dict[int, set] = defaultdict(set)
    indices: Dict[int, List[int]] = defaultdict(list)
    for event in events:
        if event.get("event") != "point":
            continue
        pid = int(event.get("pid", 0))
        lanes[pid].add(str(event.get("lane", "inline")))
        if isinstance(event.get("index"), int):
            indices[pid].append(event["index"])
    names: Dict[int, str] = {}
    for pid, pid_lanes in lanes.items():
        # "cache" replays carry the original evaluation's pid; the lane
        # that did the work (if recorded alongside) is the better label.
        worked = sorted(pid_lanes - {"cache"}) or sorted(pid_lanes)
        label = "+".join(worked)
        if pid == coordinator_pid:
            name = f"repro coordinator {pid}"
        else:
            name = f"repro {label} worker {pid}"
        points = sorted(set(indices[pid]))
        if points:
            name += f" · points {_format_indices(points)}"
        names[pid] = name
    if coordinator_pid is not None and coordinator_pid not in names:
        names[coordinator_pid] = f"repro coordinator {coordinator_pid}"
    return names


def chrome_trace_document(run_dir: PathLike) -> Dict[str, Any]:
    """Build the Chrome trace JSON document for one telemetry run."""
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    events: List[Dict[str, Any]] = []

    for entry in load_spans(run_dir):
        _span_events(entry["span"], int(entry.get("pid", 0)), events)

    point_events = load_events(run_dir)
    for event in point_events:
        if event.get("event") != "point" or not event.get("wall_s"):
            continue
        name = f"point[{event.get('index')}]"
        events.append(
            {
                "name": name,
                "cat": "point",
                "ph": "X",
                "pid": int(event.get("pid", 0)),
                "tid": _POINT_TID,
                "ts": float(event.get("start_us", 0.0)),
                "dur": float(event["wall_s"]) * MEGA,
                "args": {
                    "status": event.get("status"),
                    "cached": event.get("cached"),
                    "lane": event.get("lane"),
                    "ops": event.get("ops"),
                    "key": event.get("key"),
                },
            }
        )

    samples, _torn = load_timeline(run_dir)
    for sample in samples:
        events.append(
            {
                "name": str(sample.get("channel", "")),
                "cat": "counter",
                "ph": "C",
                "pid": int(sample.get("pid", 0)),
                "ts": float(sample.get("t_us", 0.0)),
                "args": {"value": sample.get("value", 0.0)},
            }
        )

    # Rebase to the earliest timestamp so the trace starts near zero
    # ("C" counter events have no duration to round).
    if events:
        origin = min((e["ts"] for e in events if e["ts"] > 0), default=0.0)
        for event in events:
            event["ts"] = round(max(0.0, event["ts"] - origin), 3)
            if "dur" in event:
                event["dur"] = round(event["dur"], 3)

    coordinator_pid = manifest.get("coordinator_pid")
    if not isinstance(coordinator_pid, int):
        coordinator_pid = None
    names = _process_names(point_events, coordinator_pid)
    pids = sorted({e["pid"] for e in events})
    metadata: List[Dict[str, Any]] = []
    for pid in pids:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": _SPAN_TID,
                "args": {"name": names.get(pid, f"repro pid {pid}")},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _SPAN_TID,
                "args": {"name": "spans"},
            }
        )
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _POINT_TID,
                "args": {"name": "points"},
            }
        )

    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run_id": manifest.get("run_id"),
            "command": manifest.get("command"),
            "git_sha": manifest.get("git_sha"),
            "schema": manifest.get("schema"),
        },
    }


def export_chrome_trace(run_dir: PathLike, output: PathLike) -> Dict[str, Any]:
    """Write one run's Chrome trace JSON to ``output``; returns the document."""
    document = chrome_trace_document(run_dir)
    Path(output).write_text(
        json.dumps(document, sort_keys=True), encoding="utf-8"
    )
    return document


# ---------------------------------------------------------------------------
# Plain-text metrics.
# ---------------------------------------------------------------------------


def _collect_phase_rows(run_dir: PathLike) -> List[List[Any]]:
    totals: Dict[str, Tuple[int, float]] = defaultdict(lambda: (0, 0.0))

    def walk(node: Dict[str, Any]) -> None:
        count = int(node.get("args", {}).get("count", 1))
        count_so_far, us_so_far = totals[node["name"]]
        totals[node["name"]] = (
            count_so_far + count,
            us_so_far + float(node["duration_us"]),
        )
        for child in node.get("children", ()):
            walk(child)

    for entry in load_spans(run_dir):
        walk(entry["span"])
    rows = []
    for name in sorted(totals):
        count, total_us = totals[name]
        rows.append(
            [
                name,
                count,
                round(total_us / MEGA, 4),
                round(total_us / count / KILO, 4) if count else 0.0,
            ]
        )
    return rows


def metrics_table(run_dir: PathLike) -> str:
    """One plain-text table per phase: span counts and wall time.

    Aggregates every recorded span by name (aggregated spans contribute
    their event counts), plus a summary header from the manifest.
    """
    from repro.harness.tables import render_table

    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    points = manifest.get("points", {})
    kernel = manifest.get("kernel", {})
    header = (
        f"run {manifest.get('run_id')} ({manifest.get('command')}): "
        f"{points.get('total', 0)} points "
        f"({points.get('evaluated', 0)} evaluated, "
        f"{points.get('cached', 0)} cached, {points.get('failed', 0)} failed), "
        f"{kernel.get('total_ops', 0):,} simulated ops"
    )
    rows = _collect_phase_rows(run_dir)
    if not rows:
        return header + "\n(no spans recorded — was tracing enabled?)"
    table = render_table(
        ["phase", "count", "total (s)", "mean (ms)"],
        rows,
        title="telemetry phases",
    )
    return header + "\n" + table
