"""Rectangular floorplans for thermal modelling.

A floorplan is a set of non-overlapping axis-aligned rectangular blocks
tiling a die.  Two ready-made layouts are provided:

* :func:`ev6_core_floorplan` — a single Alpha 21264 (EV6)-like core with
  the usual microarchitectural blocks; this mirrors HotSpot's default EV6
  floorplan that the paper's analytical study uses (Section 2.2).
* :func:`cmp_floorplan` — the paper's 16-way CMP die (Table 1):
  a grid of cores around a large shared L2 block, 15.6 mm x 15.6 mm.

All dimensions are in metres; areas in m^2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Block:
    """One rectangular floorplan block.

    ``x``/``y`` locate the lower-left corner; ``width``/``height`` are the
    side lengths.  All in metres.
    """

    name: str
    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError(f"block {self.name}: non-positive size")

    @property
    def area(self) -> float:
        """Block area in m^2."""
        return self.width * self.height

    @property
    def x2(self) -> float:
        """Right edge."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge."""
        return self.y + self.height

    def shared_edge_length(self, other: "Block") -> float:
        """Length of the boundary shared with ``other`` (0 if not adjacent).

        Two blocks are laterally adjacent when they touch along a vertical
        or horizontal edge with positive overlap; the overlap length sets
        the lateral thermal conductance between them.
        """
        tol = 1e-9
        # Vertical shared edge (side by side).
        if abs(self.x2 - other.x) < tol or abs(other.x2 - self.x) < tol:
            overlap = min(self.y2, other.y2) - max(self.y, other.y)
            if overlap > tol:
                return overlap
        # Horizontal shared edge (stacked).
        if abs(self.y2 - other.y) < tol or abs(other.y2 - self.y) < tol:
            overlap = min(self.x2, other.x2) - max(self.x, other.x)
            if overlap > tol:
                return overlap
        return 0.0

    def center(self) -> Tuple[float, float]:
        """Geometric centre of the block."""
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)


@dataclass(frozen=True)
class Floorplan:
    """A collection of named blocks tiling a die."""

    blocks: Tuple[Block, ...]

    def __post_init__(self) -> None:
        names = [b.name for b in self.blocks]
        if len(set(names)) != len(names):
            raise ConfigurationError("duplicate block names in floorplan")
        if not self.blocks:
            raise ConfigurationError("floorplan must contain at least one block")

    @property
    def names(self) -> List[str]:
        """Block names in definition order."""
        return [b.name for b in self.blocks]

    @property
    def total_area(self) -> float:
        """Sum of block areas (m^2)."""
        return sum(b.area for b in self.blocks)

    def block(self, name: str) -> Block:
        """Look up a block by name."""
        for b in self.blocks:
            if b.name == name:
                return b
        raise ConfigurationError(f"no block named {name!r}")

    def adjacency(self) -> Dict[Tuple[str, str], float]:
        """Map of ``(name_a, name_b) -> shared edge length`` for adjacent pairs.

        Each unordered pair appears once, with ``name_a < name_b``.
        """
        edges: Dict[Tuple[str, str], float] = {}
        for i, a in enumerate(self.blocks):
            for b in self.blocks[i + 1 :]:
                length = a.shared_edge_length(b)
                if length > 0:
                    key = (a.name, b.name) if a.name < b.name else (b.name, a.name)
                    edges[key] = length
        return edges


#: Relative areas of EV6-like core blocks (fractions of the core area).
#: Derived from the published EV6 die photo proportions used by HotSpot.
_EV6_BLOCK_FRACTIONS: Tuple[Tuple[str, float], ...] = (
    ("icache", 0.14),
    ("dcache", 0.14),
    ("bpred", 0.05),
    ("dtb", 0.04),
    ("fpadd", 0.06),
    ("fpmul", 0.06),
    ("fpreg", 0.04),
    ("fpmap", 0.02),
    ("intmap", 0.03),
    ("intq", 0.04),
    ("intreg", 0.05),
    ("intexec", 0.12),
    ("fpq", 0.03),
    ("ldstq", 0.05),
    ("itb", 0.03),
    ("lsu", 0.10),
)


def ev6_core_floorplan(core_area: float = 12.0e-6) -> Floorplan:
    """An EV6-like single-core floorplan.

    Blocks are laid out in a 4x4 grid whose cells are scaled so the
    fractional areas above are respected along each row.  ``core_area`` is
    the total core area in m^2 (default 12 mm^2, an EV6 core scaled to
    65 nm per the paper's CACTI-derived 244.5 mm^2 / 16-core budget).
    """
    if core_area <= 0:
        raise ConfigurationError("core_area must be positive")
    side = math.sqrt(core_area)
    rows = [
        _EV6_BLOCK_FRACTIONS[0:4],
        _EV6_BLOCK_FRACTIONS[4:8],
        _EV6_BLOCK_FRACTIONS[8:12],
        _EV6_BLOCK_FRACTIONS[12:16],
    ]
    blocks: List[Block] = []
    y = 0.0
    for row in rows:
        row_fraction = sum(frac for _, frac in row)
        row_height = side * row_fraction
        x = 0.0
        for name, frac in row:
            width = side * frac / row_fraction
            blocks.append(Block(name=name, x=x, y=y, width=width, height=row_height))
            x += width
        y += row_height
    return Floorplan(blocks=tuple(blocks))


def cmp_floorplan(
    n_cores: int = 16,
    die_side: float = 15.6e-3,
    l2_fraction: float = 0.22,
) -> Floorplan:
    """The paper's CMP die: a row-banked grid of cores plus a shared L2.

    The L2 occupies a horizontal slab of ``l2_fraction`` of the die at the
    bottom (4 MB of SRAM is a large, cool block — Section 3.3 excludes it
    from density/temperature averages); the cores tile the rest in the most
    square grid available.  Core blocks are named ``core0..core{n-1}``, the
    cache block ``l2``.
    """
    if n_cores < 1:
        raise ConfigurationError("need at least one core")
    l2_height = die_side * l2_fraction
    core_region_height = die_side - l2_height
    cols = int(math.ceil(math.sqrt(n_cores)))
    rows = int(math.ceil(n_cores / cols))
    core_w = die_side / cols
    core_h = core_region_height / rows
    blocks: List[Block] = [
        Block(name="l2", x=0.0, y=0.0, width=die_side, height=l2_height)
    ]
    for idx in range(n_cores):
        r, c = divmod(idx, cols)
        blocks.append(
            Block(
                name=f"core{idx}",
                x=c * core_w,
                y=l2_height + r * core_h,
                width=core_w,
                height=core_h,
            )
        )
    return Floorplan(blocks=tuple(blocks))
