#!/usr/bin/env python
"""Regenerate the paper's analytical study (Figures 1 and 2) as text.

For each process technology (130 nm and 65 nm):

* Figure 1 — normalized power consumption versus nominal parallel
  efficiency at iso-performance, for N in {2, 4, 8, 16, 32}, rendered as
  an ASCII chart with the sample application's operating points marked;
* Figure 2 — speedup versus core count under the 1-core power budget at
  perfect efficiency.

Run:  python examples/analytical_study.py
"""

from repro import AnalyticalChipModel, figure1_sweep, figure2_sweep
from repro.harness import render_table
from repro.tech import NODE_130NM, NODE_65NM

#: Efficiencies sampled in the Figure 1 text table.
EFFICIENCY_COLUMNS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def ascii_chart(series, width=64, height=16, y_max=3.0):
    """Plot {label: [(x, y), ...]} into an ASCII grid, x in [0, 1]."""
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for (label, points), marker in zip(series.items(), markers):
        for x, y in points:
            col = min(width - 1, int(x * (width - 1)))
            if y > y_max:
                continue
            row = min(height - 1, int((1.0 - y / y_max) * (height - 1)))
            grid[row][col] = marker
    lines = [f"{y_max:>4.1f} |" + "".join(grid[0])]
    for i, row in enumerate(grid[1:], start=1):
        y_label = y_max * (1 - i / (height - 1))
        prefix = f"{y_label:>4.1f} |" if i % 4 == 0 or i == height - 1 else "     |"
        lines.append(prefix + "".join(row))
    lines.append("      " + "-" * width)
    lines.append("      eps_n: 0" + " " * (width - 10) + "1.0")
    legend = "  ".join(
        f"{marker}={label}" for (label, _), marker in zip(series.items(), markers)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def figure1(node) -> None:
    chip = AnalyticalChipModel(node)
    curves = figure1_sweep(chip, efficiency_points=81)

    rows = []
    series = {}
    for curve in curves:
        def nearest(target):
            feasible = [
                (abs(e - target), p)
                for e, p in zip(curve.efficiencies, curve.normalized_power)
            ]
            distance, power = min(feasible, default=(1.0, float("nan")))
            return power if distance < 0.02 else float("nan")

        rows.append([curve.n] + [nearest(e) for e in EFFICIENCY_COLUMNS])
        series[f"N={curve.n}"] = list(zip(curve.efficiencies, curve.normalized_power))
    print(
        render_table(
            ["N"] + [f"eps={e}" for e in EFFICIENCY_COLUMNS],
            rows,
            title=f"\nFigure 1 ({node.name}): normalized power at iso-performance",
        )
    )
    print()
    print(ascii_chart(series))
    marks = [
        (curve.n, curve.sample_mark)
        for curve in curves
        if curve.sample_mark is not None
    ]
    print(
        "\nsample application marks: "
        + ", ".join(f"N={n}: eps={m[0]:.2f} -> P={m[1]:.2f}" for n, m in marks)
    )


def figure2(node) -> None:
    chip = AnalyticalChipModel(node)
    curve = figure2_sweep(chip)
    n_peak, s_peak = curve.peak()
    print(
        render_table(
            ["N", "speedup", "regime"],
            list(zip(curve.core_counts, curve.speedups, curve.regimes)),
            title=f"\nFigure 2 ({node.name}): speedup under the 1-core power "
            f"budget (eps_n = 1); peak {s_peak:.2f} at N = {n_peak}",
        )
    )


def main() -> None:
    for node in (NODE_130NM, NODE_65NM):
        figure1(node)
        figure2(node)


if __name__ == "__main__":
    main()
