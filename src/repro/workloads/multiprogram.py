"""Multiprogrammed workloads: the related-work baseline, for contrast.

The paper positions itself against the power/thermal-aware SMT/CMP
literature that studies **multiprogrammed** workloads — N independent
programs, one per core, no sharing, no synchronisation.  This module
builds that baseline from the same application models so the two regimes
can be compared on identical infrastructure:

* every core runs a *single-threaded* instance of its assigned
  application (its own address space — instances are offset so nothing
  is shared);
* the only synchronisation is one common barrier at the end of each
  instance's initialization, so the simulator's warmup reset
  (``warmup_barriers=1``) still applies;
* per-core :class:`~repro.sim.cpu.CoreTimingConfig` preserves each
  application's own CPI/MLP character.

The headline contrast with a parallel application at equal core count:
no parallel-efficiency loss (every core computes usefully all the time),
but also no DVFS-at-iso-performance story — each program's performance
is its own, which is exactly why the paper's questions only arise for
parallel codes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, List, Sequence

from repro.errors import ConfigurationError, WorkloadError
from repro.sim.cpu import CoreTimingConfig
from repro.sim.ops import OP_BARRIER
from repro.workloads.base import WorkloadModel

#: Address offset between program instances.  Must clear the workload
#: generator's entire layout (its lock region sits at ~2^46.8), so one
#: instance per 2^48 bytes keeps all sixteen instances disjoint.
_INSTANCE_STRIDE = 1 << 48


class MultiprogrammedWorkload:
    """N independent single-thread program instances, one per core."""

    #: One common barrier separates initialization from measurement.
    warmup_barriers = 1

    def __init__(self, models: Sequence[WorkloadModel]) -> None:
        if not models:
            raise ConfigurationError("need at least one program")
        self.models = list(models)
        self.name = "mix(" + "+".join(m.name for m in self.models) + ")"

    @property
    def n_programs(self) -> int:
        """Number of program instances (= required core count)."""
        return len(self.models)

    def supports(self, n_threads: int) -> bool:
        """A mix runs only at exactly one core per program."""
        return n_threads == self.n_programs

    def supported_thread_counts(self, candidates) -> List[int]:
        """Filter candidates to the mix's size."""
        return [n for n in candidates if self.supports(n)]

    def compile_key(self, n_threads: int):
        """Identity of the mix's op streams for the compile cache."""
        return ("mix", tuple(m.spec for m in self.models), n_threads)

    def core_timing(self) -> List[CoreTimingConfig]:
        """Per-core timing configs, one per program."""
        return [m.core_timing() for m in self.models]

    def thread_ops(self, thread_id: int, n_threads: int) -> Iterator[tuple]:
        """Program ``thread_id``'s single-threaded stream, relocated.

        The instance's own barriers are meaningless across programs, so
        everything up to its first barrier counts as initialization
        (re-emitted before a single common barrier 0) and later barriers
        are stripped.
        """
        if not self.supports(n_threads):
            raise WorkloadError(
                f"mix of {self.n_programs} programs needs exactly that many cores"
            )
        if not 0 <= thread_id < self.n_programs:
            raise WorkloadError(f"program index {thread_id} out of range")
        offset = thread_id * _INSTANCE_STRIDE
        lock_offset = thread_id * 1_000_000
        seen_first_barrier = False
        for op in self.models[thread_id].thread_ops(0, 1):
            kind = op[0]
            if kind == OP_BARRIER:
                if not seen_first_barrier:
                    seen_first_barrier = True
                    yield (OP_BARRIER, 0)
                continue
            yield _relocate(op, offset, lock_offset)


def _relocate(op: tuple, offset: int, lock_offset: int) -> tuple:
    """Shift an op's addresses (and lock ids) into the instance's region."""
    kind = op[0]
    if kind in (1, 2):  # OP_LOAD / OP_STORE
        return (kind, op[1] + offset)
    if kind == 4:  # OP_CRITICAL: private lock-id space + relocated data.
        return (kind, op[1] + lock_offset, op[2], op[3] + offset)
    return op


def homogeneous_mix(model: WorkloadModel, n_copies: int) -> MultiprogrammedWorkload:
    """N copies of one program, independently seeded (rate-style mix)."""
    if n_copies < 1:
        raise ConfigurationError("need at least one copy")
    copies = [
        WorkloadModel(replace(model.spec, seed=model.spec.seed + 7919 * i))
        for i in range(n_copies)
    ]
    return MultiprogrammedWorkload(copies)
