"""Scenario I — power optimization at a fixed performance target (Sec. 2.2).

Every configuration must deliver the performance of the 1-core run at
nominal voltage and frequency.  For N cores with nominal parallel
efficiency ``eps_n(N)`` this pins the frequency at (Eq. 7)::

    f_N = f_1 / (N * eps_n(N))

which requires ``N * eps_n >= 1`` (no overclocking).  The supply voltage
follows from inverting the alpha-power law, clamped at the noise-margin
floor ``2 Vth``; below that point only frequency keeps falling, which is
exactly the diminishing-returns bend visible in Figure 1.  Power is then
resolved through the thermal fixed point and normalised to the 1-core
design-point power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.efficiency import EfficiencyCurve
from repro.core.perfmodel import iso_performance_frequency
from repro.core.powermodel import AnalyticalChipModel, OperatingPoint, PowerBreakdown
from repro.errors import ConvergenceError, InfeasibleOperatingPoint


@dataclass(frozen=True)
class Scenario1Point:
    """One solved iso-performance configuration."""

    n: int
    eps_n: float
    operating_point: OperatingPoint
    normalized_power: float
    voltage_floored: bool

    @property
    def voltage(self) -> float:
        """Chip supply voltage (volts)."""
        return self.operating_point.voltage

    @property
    def frequency_hz(self) -> float:
        """Chip clock frequency (hertz)."""
        return self.operating_point.frequency_hz

    @property
    def power(self) -> PowerBreakdown:
        """Equilibrium chip power."""
        return self.operating_point.power

    @property
    def temperature_celsius(self) -> float:
        """Equilibrium average die temperature (Celsius)."""
        return self.operating_point.temperature_celsius


class PowerOptimizationScenario:
    """Solver for the paper's Scenario I on an analytical chip model.

    By default the supply voltage for the Eq. 7 frequency is the
    alpha-power-law minimum; pass a ``vf_table`` (e.g. the experimental
    harness's Pentium-M-style table) to use datasheet operating points
    instead — useful when comparing against the simulator, which runs on
    that table.
    """

    def __init__(self, chip: AnalyticalChipModel, vf_table=None) -> None:
        self.chip = chip
        self.vf_table = vf_table
        self._reference = chip.reference_point()

    @property
    def reference(self) -> OperatingPoint:
        """The 1-core nominal design point all powers are normalised to."""
        return self._reference

    def solve(self, n: int, eps_n: float) -> Scenario1Point:
        """Solve the iso-performance point for ``n`` cores at ``eps_n``.

        Raises :class:`InfeasibleOperatingPoint` when ``N * eps_n < 1``
        (the region left blank in Figure 1).
        """
        tech = self.chip.tech
        f_n = iso_performance_frequency(tech.f_nominal, n, eps_n)
        if self.vf_table is not None:
            f_n = min(max(f_n, self.vf_table.f_min), self.vf_table.f_max)
            voltage = self.vf_table.voltage_for_frequency(f_n)
        else:
            voltage = tech.voltage_for_frequency(f_n)
        floored = abs(voltage - tech.v_min) < 1e-9 and f_n < tech.fmax(tech.v_min)
        point = self.chip.equilibrium(n, voltage, f_n)
        return Scenario1Point(
            n=n,
            eps_n=eps_n,
            operating_point=point,
            normalized_power=point.power.total_w / self._reference.power.total_w,
            voltage_floored=floored,
        )

    def efficiency_sweep(
        self,
        n: int,
        efficiencies: Sequence[float],
    ) -> List[Scenario1Point]:
        """Solve one Figure 1 curve: fixed ``n``, sweeping ``eps_n``.

        Infeasible efficiencies (``N * eps_n < 1``) are skipped, matching
        the blank left edge of the paper's curves.
        """
        points: List[Scenario1Point] = []
        for eps in efficiencies:
            try:
                points.append(self.solve(n, eps))
            except InfeasibleOperatingPoint:
                continue
            except ConvergenceError:
                # Very low efficiencies leave many cores near full
                # throttle; some of those points have no thermal
                # equilibrium and sit far above Figure 1's plot range
                # anyway.
                continue
        return points

    def breakeven_efficiency(
        self,
        n: int,
        resolution: float = 1e-4,
    ) -> Optional[float]:
        """Lowest ``eps_n`` at which ``n`` cores beat the 1-core power.

        Bisects for ``normalized_power = 1``; returns ``None`` if the
        configuration never breaks even on (feasible) efficiencies up
        to 1.  The paper observes this threshold falls as N grows.
        """
        def power_or_inf(eps: float) -> float:
            # Thermal runaway (many cores near full throttle) is
            # unambiguously above breakeven.
            try:
                return self.solve(n, eps).normalized_power
            except ConvergenceError:
                return float("inf")

        lo = max(1.0 / n, resolution)
        hi = 1.0
        if power_or_inf(hi) >= 1.0:
            return None
        if power_or_inf(lo) <= 1.0:
            return lo
        while hi - lo > resolution:
            mid = 0.5 * (lo + hi)
            if power_or_inf(mid) > 1.0:
                lo = mid
            else:
                hi = mid
        return hi

    def best_configuration(
        self,
        efficiency: EfficiencyCurve,
        candidates: Iterable[int],
    ) -> Scenario1Point:
        """The feasible candidate N with the lowest normalised power.

        This answers the paper's observation that "the configuration that
        yields the maximum power savings is not necessarily the one with
        the highest number of processors".
        """
        best: Optional[Scenario1Point] = None
        for n in candidates:
            try:
                point = self.solve(n, efficiency(n))
            except InfeasibleOperatingPoint:
                continue
            if best is None or point.normalized_power < best.normalized_power:
                best = point
        if best is None:
            raise InfeasibleOperatingPoint(
                "no candidate configuration can match the 1-core performance"
            )
        return best
