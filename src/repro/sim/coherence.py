"""The MESI snooping protocol over the shared bus (Section 3.1).

One :class:`MESIController` owns all per-core L1 data caches, the shared
L2, the bus, and the memory port, and serialises coherence transactions
through bus reservations.  A sharer map (per 64 B L1 line) plays the role
of the snoop results that a real bus collects in its address phase —
functionally identical to probing every cache, but O(1).

Latency composition of a load miss, matching the paper's architecture:

* bus arbitration + address/snoop phase,
* then one of: cache-to-cache transfer from a MODIFIED peer, an L2 hit,
  or an L2 miss extended by the 75 ns DRAM round trip (wall-clock, so its
  cycle cost shrinks under DVFS),
* plus the data phase already folded into the bus occupancy.

Write misses (BusRdX) invalidate all other sharers; write hits on SHARED
lines issue an address-only upgrade (BusUpgr).  Dirty evictions post
writebacks that occupy the bus but do not stall the core (write-buffer
semantics).  The L2 is inclusive in spirit; back-invalidation on L2
eviction is omitted (the 4 MB L2 dwarfs the L1s, making the case rare)
and recorded as a simplification in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.errors import SimulationError
from repro.sim.bus import SharedBus
from repro.sim.cache import Cache, EXCLUSIVE, MODIFIED, SHARED
from repro.sim.clock import ClockDomain
from repro.sim.memory import MainMemory


def mask_to_ids(mask: int) -> List[int]:
    """Core ids set in a sharer bitmask, ascending (tests/debug)."""
    ids: List[int] = []
    while mask:
        low = mask & -mask
        ids.append(low.bit_length() - 1)
        mask ^= low
    return ids


@dataclass
class CoherenceStats:
    """Event counters for the whole coherence fabric."""

    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    cache_to_cache: int = 0
    invalidations: int = 0
    upgrades: int = 0
    writebacks: int = 0
    memory_reads: int = 0
    prefetches: int = 0

    def l1_miss_rate(self) -> float:
        """L1 miss rate over all cores."""
        total = self.l1_hits + self.l1_misses
        return self.l1_misses / total if total else 0.0

    def l2_miss_rate(self) -> float:
        """L2 miss rate over the requests that reached it."""
        total = self.l2_hits + self.l2_misses
        return self.l2_misses / total if total else 0.0

    @property
    def total_transactions(self) -> int:
        """Coherence-fabric transactions (the bus-traffic view of MESI)."""
        return (
            self.l1_misses
            + self.upgrades
            + self.invalidations
            + self.writebacks
            + self.cache_to_cache
            + self.prefetches
        )


class MESIController:
    """Coherence and memory-hierarchy timing for all cores."""

    def __init__(
        self,
        l1_caches: List[Cache],
        l2: Cache,
        bus: SharedBus,
        memory: MainMemory,
        clock: ClockDomain,
        l1_hit_cycles: int = 2,
        l2_hit_cycles: int = 12,
        cache_to_cache_cycles: int = 16,
        core_clocks: Optional[List[ClockDomain]] = None,
        prefetch_next_line: bool = False,
    ) -> None:
        self.l1s = l1_caches
        self.l2 = l2
        self.bus = bus
        self.memory = memory
        #: The uncore clock: bus, L2 and cache-to-cache latencies tick
        #: here.  With per-core DVFS the cores may run elsewhere.
        self.clock = clock
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self.cache_to_cache_cycles = cache_to_cache_cycles
        #: Per-core clocks (L1 hit latency ticks in the requester's
        #: domain); defaults to the uncore clock for global DVFS.
        self.core_clocks = core_clocks or [clock] * len(l1_caches)
        self._hit_ps = [
            c.cycles_to_ps(l1_hit_cycles) for c in self.core_clocks
        ]
        #: Stream prefetching (extension): a demand L1 read miss on the
        #: line sequentially after the core's previous miss is a detected
        #: stream — the next line is pulled into the L1 off the critical
        #: path (charged as interconnect/L2 traffic), and hits on
        #: prefetched lines keep the stream ahead of the consumer.
        #: Random misses never trigger, so irregular codes pay nothing.
        self.prefetch_next_line = prefetch_next_line
        self._last_miss_line: Dict[int, int] = {}
        self.stats = CoherenceStats()
        # Snoop filter: L1 line address -> bitmask of core ids holding
        # it (bit ``i`` set iff core ``i``'s L1 has the line).  Bitmask
        # iteration walks ascending core ids by construction, so snoop
        # order is deterministic without sorting, and add/drop/probe
        # allocate nothing.
        self._sharers: Dict[int, int] = {}
        # Lines brought in by the prefetcher and not yet demanded: a hit
        # on one of these keeps the stream running (chained prefetch).
        self._prefetched: Set[int] = set()

    def set_clock(self, clock: ClockDomain) -> None:
        """Propagate a chip-wide DVFS change (uncore + every core)."""
        self.clock = clock
        self.core_clocks = [clock] * len(self.l1s)
        self._hit_ps = [clock.cycles_to_ps(self.l1_hit_cycles)] * len(self.l1s)
        self.bus.set_clock(clock)

    def _l1_hit_ps(self, core_id: int) -> int:
        return self._hit_ps[core_id]

    # -- sharer-map helpers -------------------------------------------------

    def _add_sharer(self, line: int, core_id: int) -> None:
        sharers = self._sharers
        sharers[line] = sharers.get(line, 0) | (1 << core_id)

    def _drop_sharer(self, line: int, core_id: int) -> None:
        mask = self._sharers.get(line, 0) & ~(1 << core_id)
        if mask:
            self._sharers[line] = mask
        else:
            self._sharers.pop(line, None)

    def _other_sharers(self, line: int, core_id: int) -> int:
        """Bitmask of cores other than ``core_id`` holding ``line``."""
        return self._sharers.get(line, 0) & ~(1 << core_id)

    def sharer_ids(self, line: int) -> List[int]:
        """Core ids currently holding ``line`` (tests/debug)."""
        return mask_to_ids(self._sharers.get(line, 0))

    def _handle_l1_victim(self, core_id: int, victim, now_ps: int) -> None:
        """Bookkeeping (and bus traffic) for an L1 eviction."""
        if victim is None:
            return
        victim_line, victim_state = victim
        self._drop_sharer(victim_line, core_id)
        if victim_state == MODIFIED:
            # Posted writeback: occupies the interconnect from the write
            # buffer, but does not stall the core.
            self.bus.acquire(now_ps, with_data=True, route=victim_line)
            self.stats.writebacks += 1
            self._l2_mark_dirty(victim_line << self.l1s[core_id].config.line_shift)

    # -- L2 helpers ----------------------------------------------------------

    def _l2_mark_dirty(self, byte_address: int) -> None:
        line = self.l2.line_address(byte_address)
        if self.l2.probe(line) is not None:
            self.l2.set_state(line, MODIFIED)

    def _l2_fill(self, byte_address: int) -> None:
        line = self.l2.line_address(byte_address)
        victim = self.l2.insert(line, SHARED)
        if victim is not None and victim[1] == MODIFIED:
            self.stats.writebacks += 1

    def _fetch_from_l2_or_memory(self, grant_ps: int, byte_address: int) -> int:
        """Data source below the L1s: returns the data-ready time."""
        l2_line = self.l2.line_address(byte_address)
        l2_latency = self.clock.cycles_to_ps(self.l2_hit_cycles)
        if self.l2.lookup(l2_line) is not None:
            self.stats.l2_hits += 1
            return grant_ps + l2_latency
        self.stats.l2_misses += 1
        self.stats.memory_reads += 1
        ready = self.memory.access(grant_ps + l2_latency, l2_line)
        self._l2_fill(byte_address)
        return ready

    # -- public protocol entry points ----------------------------------------

    # repro: hot
    def read(self, core_id: int, byte_address: int, now_ps: int) -> int:
        """A load by ``core_id``; returns its completion time (ps)."""
        stats = self.stats
        l1 = self.l1s[core_id]
        line = l1.line_address(byte_address)
        state = l1.lookup(line)
        if state is not None:
            stats.l1_hits += 1
            done = now_ps + self._l1_hit_ps(core_id)
            if self.prefetch_next_line and line in self._prefetched:
                # First demand hit on a prefetched line: keep the
                # stream ahead of the consumer.
                self._prefetched.discard(line)
                self._prefetch(core_id, line + 1, done)
            return done

        stats.l1_misses += 1
        grant, _release = self.bus.acquire(now_ps, with_data=True, route=line)
        others = self._other_sharers(line, core_id)

        owner = self._find_modified_owner(line, others)
        if owner is not None:
            # Cache-to-cache transfer; owner downgrades to SHARED and the
            # dirty data is written through to the L2 (MOESI-free MESI).
            self.l1s[owner].set_state(line, SHARED)
            self._l2_mark_dirty(byte_address)
            stats.cache_to_cache += 1
            ready = grant + self.clock.cycles_to_ps(self.cache_to_cache_cycles)
            fill_state = SHARED
        else:
            # The snoop downgrades any EXCLUSIVE peer to SHARED; a stale E
            # would later upgrade to M silently while we hold a copy.
            # Bitmask iteration probes ascending core ids by construction.
            mask = others
            while mask:
                low = mask & -mask
                mask ^= low
                other = low.bit_length() - 1
                if self.l1s[other].probe(line) == EXCLUSIVE:
                    self.l1s[other].set_state(line, SHARED)
            ready = self._fetch_from_l2_or_memory(grant, byte_address)
            fill_state = SHARED if others else EXCLUSIVE

        self._handle_l1_victim(core_id, l1.insert(line, fill_state), grant)
        self._add_sharer(line, core_id)
        if self.prefetch_next_line:
            # Stream detection: two consecutive-line misses arm the
            # prefetcher; isolated (random) misses do not.
            if self._last_miss_line.get(core_id) == line - 1:
                self._prefetch(core_id, line + 1, ready)
            self._last_miss_line[core_id] = line
        return ready

    # repro: hot
    def write(self, core_id: int, byte_address: int, now_ps: int) -> int:
        """A store by ``core_id``; returns its completion time (ps)."""
        stats = self.stats
        l1 = self.l1s[core_id]
        line = l1.line_address(byte_address)
        state = l1.lookup(line)

        if state == MODIFIED:
            stats.l1_hits += 1
            return now_ps + self._l1_hit_ps(core_id)
        if state == EXCLUSIVE:
            # Silent E -> M upgrade.
            stats.l1_hits += 1
            l1.set_state(line, MODIFIED)
            return now_ps + self._l1_hit_ps(core_id)
        if state == SHARED:
            # BusUpgr: address-only transaction invalidating other copies.
            stats.l1_hits += 1
            grant, release = self.bus.acquire(now_ps, with_data=False, route=line)
            self._invalidate_others(line, core_id)
            l1.set_state(line, MODIFIED)
            stats.upgrades += 1
            return release

        # Write miss: BusRdX.
        stats.l1_misses += 1
        grant, _release = self.bus.acquire(now_ps, with_data=True, route=line)
        others = self._other_sharers(line, core_id)
        owner = self._find_modified_owner(line, others)
        if owner is not None:
            self.stats.cache_to_cache += 1
            ready = grant + self.clock.cycles_to_ps(self.cache_to_cache_cycles)
        else:
            ready = self._fetch_from_l2_or_memory(grant, byte_address)
        self._invalidate_others(line, core_id)
        self._handle_l1_victim(core_id, l1.insert(line, MODIFIED), grant)
        self._add_sharer(line, core_id)
        return ready

    def _prefetch(self, core_id: int, line: int, now_ps: int) -> None:
        """Pull ``line`` into the requester's L1 off the critical path.

        Conservative: only untouched lines (no sharers anywhere) are
        prefetched, so no coherence state is disturbed; the transfer
        occupies the interconnect and may read memory, but the demand
        access has already returned.
        """
        l1 = self.l1s[core_id]
        if l1.probe(line) is not None or line in self._sharers:
            return
        grant, _release = self.bus.acquire(now_ps, with_data=True, route=line)
        byte_address = line << l1.config.line_shift
        self._fetch_from_l2_or_memory(grant, byte_address)
        self._handle_l1_victim(core_id, l1.insert(line, EXCLUSIVE), grant)
        self._add_sharer(line, core_id)
        self._prefetched.add(line)
        self.stats.prefetches += 1

    # -- snoop actions ---------------------------------------------------------

    def _find_modified_owner(self, line: int, others: int) -> Optional[int]:
        # MESI allows at most one MODIFIED owner, so any probe order finds
        # the same core; bitmask iteration walks ascending ids anyway.
        mask = others
        while mask:
            low = mask & -mask
            mask ^= low
            other = low.bit_length() - 1
            if self.l1s[other].probe(line) == MODIFIED:
                return other
        return None

    def _invalidate_others(self, line: int, core_id: int) -> None:
        mask = self._other_sharers(line, core_id)
        while mask:
            low = mask & -mask
            mask ^= low
            other = low.bit_length() - 1
            state = self.l1s[other].invalidate(line)
            if state is None:
                raise SimulationError(
                    f"sharer map claims core {other} holds line {line:#x}"
                )
            if state == MODIFIED:
                self._l2_mark_dirty(line << self.l1s[other].config.line_shift)
            self._drop_sharer(line, other)
            self.stats.invalidations += 1
