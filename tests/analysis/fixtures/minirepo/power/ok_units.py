"""Unit-clean idioms (analyzer fixture; never imported)."""

GIGA = 1e9
KILO = 1e3


def configure_ok(frequency_hz: float) -> float:
    return frequency_hz


def named_conversion(frequency_hz: float) -> float:
    return frequency_hz / GIGA  # named constant: not a magic literal


def consistent_arithmetic(rise_s: float, fall_s: float) -> float:
    return rise_s + fall_s  # same unit on both sides


def matching_call(frequency_hz: float) -> float:
    return configure_ok(frequency_hz)


def tolerance_not_magic(voltage_v: float) -> bool:
    return voltage_v < 1.1 * (1 + 1e-12)  # dimensionless tolerance factor


def converted_argument(speed_mhz: float) -> float:
    # Scaling through a named constant erases the inferred unit, so the
    # converted value passes the call-site check.
    return configure_ok(speed_mhz * KILO * KILO)
