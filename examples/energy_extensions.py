#!/usr/bin/env python
"""Beyond the paper: energy optimization, per-core DVFS, thrifty barriers.

Three extensions the paper's own discussion points toward:

1. **Scenario III** — instead of fixing performance (Scenario I) or
   power (Scenario II), minimise *energy* or *energy-delay product* over
   the analytical model;
2. **per-core DVFS** — Section 3.1 calls it beyond scope: slow down
   lightly-loaded threads so everyone hits the barrier together;
3. **thrifty barrier** [26] — sleep through long barrier waits.

Run:  python examples/energy_extensions.py
"""

from repro.core import (
    AnalyticalChipModel,
    EnergyOptimizationScenario,
    SAMPLE_APPLICATION,
)
from repro.harness import (
    ExperimentContext,
    render_table,
    run_percore_dvfs_suite,
)
from repro.sim.cmp import ChipMultiprocessor, CMPConfig
from repro.tech import NODE_65NM
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


def scenario3() -> None:
    chip = AnalyticalChipModel(NODE_65NM)
    rows = []
    for weight, label in ((0.0, "energy"), (1.0, "EDP"), (2.0, "ED^2P")):
        scenario = EnergyOptimizationScenario(chip, delay_weight=weight)
        best = scenario.best_configuration(SAMPLE_APPLICATION, (1, 2, 4, 8, 16))
        rows.append(
            [
                label,
                best.n,
                best.frequency_hz / 1e9,
                best.relative_energy,
                best.relative_time,
            ]
        )
    print(
        render_table(
            ["objective", "best N", "f* (GHz)", "E / E_nom", "T / T_nom"],
            rows,
            title="Scenario III (analytical): what should we minimise?",
        )
    )
    print(
        "Pure energy doesn't care about cores (same work either way);\n"
        "delay-weighted objectives buy parallelism.\n"
    )


def percore_dvfs(context: ExperimentContext) -> None:
    apps = [workload_by_name(a) for a in ("Cholesky", "Volrend", "Water-Sp")]
    results = run_percore_dvfs_suite(context, apps, n_threads=8)
    print(
        render_table(
            ["app", "saving", "slowdown", "core frequencies (GHz)"],
            [
                [
                    r.app,
                    f"{r.energy_saving:.1%}",
                    r.slowdown,
                    " ".join(f"{f / 1e9:.1f}" for f in r.core_frequencies_hz),
                ]
                for r in results
            ],
            title="Per-core DVFS: slow the lightly-loaded threads",
        )
    )
    print("Imbalanced applications (Cholesky) have the most slack to harvest.\n")


def thrifty_barrier(context: ExperimentContext) -> None:
    model = WorkloadModel(
        workload_by_name("Volrend").spec.scaled(context.workload_scale)
    )

    def run(sleep: bool):
        config = CMPConfig(barrier_sleep=sleep)
        result = ChipMultiprocessor(config).run(
            [model.thread_ops(t, 16) for t in range(16)],
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        return result, context.chip_power.evaluate(result)

    awake, awake_power = run(False)
    asleep, asleep_power = run(True)
    saving = 1.0 - asleep_power.energy_j / awake_power.energy_j
    print(
        render_table(
            ["barrier mode", "time (us)", "energy (mJ)"],
            [
                ["spin", awake.execution_time_s * 1e6, awake_power.energy_j * 1e3],
                ["thrifty", asleep.execution_time_s * 1e6, asleep_power.energy_j * 1e3],
            ],
            title="Thrifty barrier on Volrend @ 16 cores",
        )
    )
    print(f"energy saving: {saving:.1%} at zero slowdown (exact stall predictor)\n")


def main() -> None:
    scenario3()
    print("Building the experiment context (calibration microbenchmark)...\n")
    context = ExperimentContext(workload_scale=0.25)
    percore_dvfs(context)
    thrifty_barrier(context)


if __name__ == "__main__":
    main()
