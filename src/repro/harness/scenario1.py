"""Experimental Scenario I: iso-performance power optimization (Sec. 4.1).

The paper's pipeline, reproduced step by step:

1. profile every application at nominal V/f over N in {1, 2, 4, 8, 16}
   to obtain its nominal parallel efficiency curve and the 1-core power
   baseline;
2. compute each configuration's target frequency from Eq. 7
   (``f_N = f_1 / (N * eps_n)``), clamped into the chip's scaling range,
   and look the supply voltage up in the V/f table;
3. re-simulate at the scaled operating point and collect the five
   Figure 3 panels: nominal parallel efficiency, actual speedup,
   normalized power, normalized power density, and average temperature.

Actual speedups can exceed 1 (most visibly for memory-bound codes):
chip DVFS does not slow the 75 ns memory, so the processor-memory gap
narrows — the effect the analytical model cannot capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.harness.context import ExperimentContext
from repro.harness.profiling import ApplicationProfile, profile_application
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class Scenario1Row:
    """One (application, N) outcome — one bar in each Figure 3 panel."""

    app: str
    n: int
    nominal_efficiency: float
    actual_speedup: float
    normalized_power: float
    normalized_power_density: float
    average_temperature_c: float
    frequency_hz: float
    voltage: float
    total_power_w: float


def run_scenario1(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> Dict[str, List[Scenario1Row]]:
    """The Figure 3 experiment for a set of applications."""
    results: Dict[str, List[Scenario1Row]] = {}
    for model in models:
        profile = profile_application(context, model, core_counts)
        results[model.name] = _scenario1_for_profile(context, model, profile)
    return results


def _scenario1_for_profile(
    context: ExperimentContext,
    model: WorkloadModel,
    profile: ApplicationProfile,
) -> List[Scenario1Row]:
    baseline = profile.entries[1]
    base_power = baseline.power.total_w
    base_density = baseline.power.core_power_density_w_m2
    t1 = baseline.execution_time_ps

    rows = [
        Scenario1Row(
            app=model.name,
            n=1,
            nominal_efficiency=1.0,
            actual_speedup=1.0,
            normalized_power=1.0,
            normalized_power_density=1.0,
            average_temperature_c=baseline.power.average_temperature_c,
            frequency_hz=context.f_nominal,
            voltage=context.vf_table.voltage_for_frequency(context.f_nominal),
            total_power_w=base_power,
        )
    ]
    for n in profile.core_counts():
        if n == 1:
            continue
        eps_n = profile.nominal_efficiency(n)
        # Eq. 7, clamped to the chip's legal frequency range (no
        # overclocking even when N * eps < 1; no scaling below 200 MHz).
        f_target = context.clamp_frequency(context.f_nominal / (n * eps_n))
        voltage = context.vf_table.voltage_for_frequency(f_target)
        result, power = context.run(model, n, f_target, voltage)
        rows.append(
            Scenario1Row(
                app=model.name,
                n=n,
                nominal_efficiency=eps_n,
                actual_speedup=t1 / result.execution_time_ps,
                normalized_power=power.total_w / base_power,
                normalized_power_density=(
                    power.core_power_density_w_m2 / base_density
                ),
                average_temperature_c=power.average_temperature_c,
                frequency_hz=f_target,
                voltage=voltage,
                total_power_w=power.total_w,
            )
        )
    return rows
