"""Tests for technology nodes, the alpha-power law, and VF tables."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, InfeasibleOperatingPoint
from repro.tech import (
    NODE_130NM,
    NODE_65NM,
    NODE_32NM_PROJECTED,
    TechnologyNode,
    VFTable,
    technology_by_name,
)

ALL_NODES = [NODE_130NM, NODE_65NM, NODE_32NM_PROJECTED]


class TestTechnologyNode:
    def test_paper_table1_constants(self):
        # Table 1: 65 nm, 3.2 GHz, Vdd 1.1 V, Vth 0.18 V.
        assert NODE_65NM.vdd_nominal == 1.1
        assert NODE_65NM.vth == 0.18
        assert NODE_65NM.f_nominal == 3.2e9

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_nominal_voltage_yields_nominal_frequency(self, node):
        assert math.isclose(node.fmax(node.vdd_nominal), node.f_nominal)

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_fmax_monotone_in_voltage(self, node):
        voltages = [
            node.v_min + i * (node.vdd_nominal - node.v_min) / 20 for i in range(21)
        ]
        freqs = [node.fmax(v) for v in voltages]
        assert all(f2 > f1 for f1, f2 in zip(freqs, freqs[1:]))

    def test_fmax_below_threshold_rejected(self):
        with pytest.raises(InfeasibleOperatingPoint):
            NODE_65NM.fmax(NODE_65NM.vth)

    @pytest.mark.parametrize("node", ALL_NODES, ids=lambda n: n.name)
    def test_voltage_for_frequency_inverts_fmax(self, node):
        for scale in (1.0, 0.8, 0.6):
            f = node.f_nominal * scale
            v = node.voltage_for_frequency(f)
            if v > node.v_min + 1e-9:
                assert math.isclose(node.fmax(v), f, rel_tol=1e-9)
            else:
                # Floored: the floor voltage must sustain the frequency.
                assert node.fmax(v) >= f

    def test_voltage_for_frequency_clamps_at_floor(self):
        node = NODE_65NM
        tiny = node.f_nominal * 1e-3
        assert node.voltage_for_frequency(tiny) == pytest.approx(node.v_min)

    def test_voltage_for_frequency_rejects_overclock(self):
        with pytest.raises(InfeasibleOperatingPoint):
            NODE_65NM.voltage_for_frequency(NODE_65NM.f_nominal * 1.01)

    def test_voltage_for_frequency_strict_mode(self):
        node = NODE_65NM
        tiny = node.f_nominal * 1e-3
        with pytest.raises(InfeasibleOperatingPoint):
            node.voltage_for_frequency(tiny, allow_floor=False)

    def test_frequency_scale_is_one_at_nominal(self):
        assert NODE_130NM.frequency_scale(NODE_130NM.vdd_nominal) == pytest.approx(1.0)

    def test_legal_voltage_bounds(self):
        node = NODE_65NM
        assert node.legal_voltage(node.v_min)
        assert node.legal_voltage(node.vdd_nominal)
        assert not node.legal_voltage(node.v_min * 0.9)
        assert not node.legal_voltage(node.vdd_nominal * 1.1)

    def test_invalid_constructions_rejected(self):
        with pytest.raises(ConfigurationError):
            TechnologyNode("bad", 65, 1.0, 1.2, 1e9)  # vth > vdd
        with pytest.raises(ConfigurationError):
            TechnologyNode("bad", 65, 1.0, 0.6, 1e9)  # floor 1.2 >= vdd
        with pytest.raises(ConfigurationError):
            TechnologyNode("bad", 65, 1.1, 0.18, 1e9, static_fraction_nominal=1.5)

    @given(
        st.floats(min_value=0.01, max_value=1.0),
    )
    def test_voltage_inversion_property(self, scale):
        node = NODE_130NM
        f = node.f_nominal * scale
        v = node.voltage_for_frequency(f)
        assert node.v_min - 1e-12 <= v <= node.vdd_nominal + 1e-12
        assert node.fmax(v) >= f * (1 - 1e-9)

    def test_lookup_by_name(self):
        assert technology_by_name("65nm") is NODE_65NM
        assert technology_by_name("130nm") is NODE_130NM
        with pytest.raises(ConfigurationError):
            technology_by_name("45nm")


class TestVFTable:
    def make_table(self):
        # The experimental study's grid: 200 MHz..3.2 GHz (Section 3.1).
        return VFTable.from_technology(
            NODE_65NM, f_min=200e6, f_max=3.2e9, step=200e6
        )

    def test_table_spans_requested_range(self):
        table = self.make_table()
        assert table.f_min == pytest.approx(200e6)
        assert table.f_max == pytest.approx(3.2e9)

    def test_top_entry_is_nominal_voltage(self):
        table = self.make_table()
        assert table.voltage_for_frequency(3.2e9) == pytest.approx(
            NODE_65NM.vdd_nominal
        )

    def test_voltages_non_decreasing(self):
        table = self.make_table()
        volts = [v for _, v in table.points]
        assert all(b >= a - 1e-12 for a, b in zip(volts, volts[1:]))

    def test_interpolation_between_grid_points(self):
        table = self.make_table()
        v_lo = table.voltage_for_frequency(1.0e9)
        v_hi = table.voltage_for_frequency(1.2e9)
        v_mid = table.voltage_for_frequency(1.1e9)
        assert v_lo <= v_mid <= v_hi
        assert v_mid == pytest.approx(0.5 * (v_lo + v_hi))

    def test_out_of_range_rejected(self):
        table = self.make_table()
        with pytest.raises(InfeasibleOperatingPoint):
            table.voltage_for_frequency(100e6)
        with pytest.raises(InfeasibleOperatingPoint):
            table.voltage_for_frequency(4.0e9)

    def test_low_entries_sit_at_noise_margin_floor(self):
        table = self.make_table()
        assert table.voltage_for_frequency(200e6) == pytest.approx(NODE_65NM.v_min)

    def test_validation_rejects_bad_tables(self):
        with pytest.raises(ConfigurationError):
            VFTable(points=((1e9, 1.0),))  # too short
        with pytest.raises(ConfigurationError):
            VFTable(points=((2e9, 1.0), (1e9, 1.1)))  # not increasing
        with pytest.raises(ConfigurationError):
            VFTable(points=((1e9, 1.1), (2e9, 1.0)))  # voltage decreasing

    @given(st.floats(min_value=200e6, max_value=3.2e9))
    def test_interpolated_voltage_within_bounds(self, f):
        table = self.make_table()
        v = table.voltage_for_frequency(f)
        assert NODE_65NM.v_min - 1e-9 <= v <= NODE_65NM.vdd_nominal + 1e-9
