"""Benchmarks for the library's beyond-the-paper extensions.

Three extensions, each rooted in the paper's own discussion:

* **Scenario III** (energy / energy-delay optimization) — the metric the
  paper's related work ([21], [26]) optimises, solved on the analytical
  model;
* **per-core DVFS** — Section 3.1's "beyond the scope" note, implemented
  as the Kadayif-style slow-the-light-threads policy;
* **thrifty barrier** — the paper's reference [26]: sleep through long
  barrier waits instead of spinning.
"""


from repro.core import (
    AnalyticalChipModel,
    ConstantEfficiency,
    EnergyOptimizationScenario,
    SAMPLE_APPLICATION,
)
from repro.harness import (
    render_table,
    run_overclocking_study,
    run_percore_dvfs_suite,
    thermal_step_response,
)
from repro.tech import NODE_130NM, NODE_65NM
from repro.workloads import workload_by_name


def test_scenario3_energy_curves(benchmark):
    """Energy-optimal operating points across N for both nodes."""

    def sweep():
        out = {}
        for node in (NODE_130NM, NODE_65NM):
            scenario = EnergyOptimizationScenario(AnalyticalChipModel(node))
            out[node.name] = scenario.energy_curve(
                ConstantEfficiency(1.0), (1, 2, 4, 8, 16, 32)
            )
        return out

    curves = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    rows = [
        [tech, p.n, p.frequency_hz / 1e9, p.relative_energy, p.relative_time]
        for tech, points in curves.items()
        for p in points
    ]
    print(
        render_table(
            ["tech", "N", "f* (GHz)", "E / E_nominal", "T / T_nominal"],
            rows,
            title="Scenario III: energy-optimal operating points",
        )
    )
    for tech, points in curves.items():
        # Racing at nominal is never energy-optimal with leakage present.
        for p in points:
            assert p.relative_energy < 1.0, (tech, p.n)
        # Energy is nearly flat in N; it never *improves* with more cores
        # at perfect efficiency (static-while-running effect).
        energies = [p.relative_energy for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(energies, energies[1:])), tech


def test_scenario3_edp_prefers_parallelism(benchmark):
    """EDP pushes the optimum to more cores than pure energy does."""

    def best_pair():
        chip = AnalyticalChipModel(NODE_65NM)
        energy = EnergyOptimizationScenario(chip, delay_weight=0.0)
        edp = EnergyOptimizationScenario(chip, delay_weight=1.0)
        counts = (1, 2, 4, 8, 16)
        return (
            energy.best_configuration(SAMPLE_APPLICATION, counts),
            edp.best_configuration(SAMPLE_APPLICATION, counts),
        )

    e_best, edp_best = benchmark.pedantic(best_pair, rounds=1, iterations=1)
    print(
        f"\nenergy-optimal: N={e_best.n} (E={e_best.relative_energy:.3f}); "
        f"EDP-optimal: N={edp_best.n} (E={edp_best.relative_energy:.3f}, "
        f"T={edp_best.relative_time:.3f})"
    )
    assert edp_best.n > e_best.n


def test_percore_dvfs_policy(benchmark, experiment_context):
    """Per-core DVFS saves energy roughly in proportion to imbalance."""
    apps = [workload_by_name(a) for a in ("Cholesky", "Volrend", "Water-Sp")]

    results = benchmark.pedantic(
        lambda: run_percore_dvfs_suite(experiment_context, apps, n_threads=8),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["app", "N", "energy saving", "slowdown"],
            [[r.app, r.n, f"{r.energy_saving:.1%}", r.slowdown] for r in results],
            title="Per-core DVFS (slow the lightly-loaded threads)",
        )
    )
    by_app = {r.app: r for r in results}
    # Everyone saves something; the imbalanced apps save the most.
    for r in results:
        assert r.energy_saving > 0.0, r.app
        assert r.slowdown < 1.3, r.app
    assert by_app["Cholesky"].energy_saving > by_app["Water-Sp"].energy_saving


def test_thrifty_barrier(benchmark, experiment_context):
    """Sleeping through barrier waits saves energy at tiny slowdown."""
    from repro.sim.cmp import ChipMultiprocessor
    from repro.workloads.base import WorkloadModel

    model = WorkloadModel(
        workload_by_name("Volrend").spec.scaled(experiment_context.workload_scale)
    )

    def run(sleep: bool):
        config = experiment_context.cmp_config
        config = type(config)(
            n_cores=config.n_cores,
            frequency_hz=config.frequency_hz,
            voltage=config.voltage,
            barrier_sleep=sleep,
        )
        result = ChipMultiprocessor(config).run(
            [model.thread_ops(t, 16) for t in range(16)],
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        power = experiment_context.chip_power.evaluate(result)
        return result, power

    def both():
        return run(False), run(True)

    (awake, awake_power), (asleep, asleep_power) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    saving = 1.0 - asleep_power.energy_j / awake_power.energy_j
    slowdown = asleep.execution_time_s / awake.execution_time_s
    slept = sum(s.sleep_ps for s in asleep.core_stats)
    waited = sum(s.sync_wait_ps for s in awake.core_stats)
    print(
        f"\nthrifty barrier on Volrend@16: energy saving {saving:.1%}, "
        f"slowdown {slowdown:.3f}, slept {slept / max(1, waited):.0%} of the "
        "spin time"
    )
    assert slept > 0
    assert saving > 0.0
    assert slowdown < 1.05


def test_overclocking_memory_gap_offset(benchmark, experiment_context):
    """Section 4.2's closing remark: overclocking a memory-bound code is
    mostly eaten by the fixed-latency memory; a compute-bound one keeps
    most of the clock gain."""

    def study():
        return (
            run_overclocking_study(
                experiment_context, workload_by_name("Radix"), 2
            ),
            run_overclocking_study(
                experiment_context, workload_by_name("FMM"), 1
            ),
        )

    radix, fmm = benchmark.pedantic(study, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["app", "N", "f_oc (GHz)", "clock gain", "speedup gain", "gap offset"],
            [
                [
                    r.app,
                    r.n,
                    r.overclock_frequency_hz / 1e9,
                    r.clock_gain,
                    r.speedup_gain,
                    f"{r.gap_offset:.0%}",
                ]
                for r in (radix, fmm)
            ],
            title="Overclocking under the budget (memory stays at 75 ns)",
        )
    )
    assert radix.clock_gain > 1.1
    assert radix.gap_offset > 0.5
    if fmm.clock_gain > 1.0:
        assert fmm.gap_offset < radix.gap_offset


def test_online_governor_vs_offline_oracle(benchmark, experiment_context):
    """Online control versus the paper's offline profiling.

    The paper's Scenario II picks the budget-legal point from an offline
    profile (an oracle); a real chip uses an online governor.  Measure
    how much speedup the online ladder walk gives away while converging.
    """
    from repro.harness import PerformanceGovernor, run_governed, run_scenario2

    budget = 0.7 * experiment_context.calibration.max_operational_power_w
    model = workload_by_name("Cholesky")

    def study():
        oracle = run_scenario2(
            experiment_context, [model], core_counts=(8,), budget_w=budget
        )["Cholesky"][0]
        governed = run_governed(
            experiment_context,
            model,
            8,
            PerformanceGovernor.for_context(
                experiment_context, budget_w=budget, step_hz=600e6
            ),
        )
        return oracle, governed

    oracle, governed = benchmark.pedantic(study, rounds=1, iterations=1)
    trajectory = " ".join(f"{f / 1e9:.1f}" for f in governed.frequency_trajectory)
    print(
        f"\noffline oracle: f={oracle.frequency_hz / 1e9:.1f} GHz, "
        f"P={oracle.power_w:.1f} W (budget {budget:.1f} W)\n"
        f"online governor trajectory (GHz): {trajectory}; "
        f"avg power {governed.average_power_w:.1f} W"
    )
    # The governor ends in the oracle's neighbourhood.
    assert abs(governed.frequency_trajectory[-1] - oracle.frequency_hz) <= 1.3e9
    # Tail windows respect the budget (allowing controller ripple).
    assert governed.windows[-1].power_w <= budget * 1.35


def test_parallel_vs_multiprogrammed(benchmark, experiment_context):
    """The paper's framing, measured: a parallel application versus a
    multiprogrammed mix of the same program at equal core count.

    The mix has no parallel-efficiency loss (every core always computes)
    so it burns *more* power and runs hotter than the parallel code at
    iso-corecount — but the parallel code is the one that can trade its
    efficiency for power through Eq. 7, which is the paper's whole point.
    """
    from repro.sim.cmp import ChipMultiprocessor
    from repro.workloads import homogeneous_mix
    from repro.workloads.base import WorkloadModel

    model = WorkloadModel(
        workload_by_name("Water-Sp").spec.scaled(experiment_context.workload_scale)
    )
    n = 8

    def study():
        chip = ChipMultiprocessor(experiment_context.cmp_config)
        parallel = chip.run(
            [model.thread_ops(t, n) for t in range(n)],
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        mix = homogeneous_mix(model, n)
        mixed = ChipMultiprocessor(experiment_context.cmp_config).run(
            [mix.thread_ops(t, n) for t in range(n)],
            mix.core_timing(),
            warmup_barriers=mix.warmup_barriers,
        )
        return (
            (parallel, experiment_context.chip_power.evaluate(parallel)),
            (mixed, experiment_context.chip_power.evaluate(mixed)),
        )

    (parallel, p_power), (mixed, m_power) = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    print(
        f"\nWater-Sp @ {n} cores: parallel {p_power.total_w:.1f} W / "
        f"{p_power.average_temperature_c:.1f} C (sync share "
        f"{sum(s.sync_wait_ps for s in parallel.core_stats) / max(1, sum(s.total_active_ps + s.sync_wait_ps for s in parallel.core_stats)):.0%}); "
        f"mix {m_power.total_w:.1f} W / {m_power.average_temperature_c:.1f} C"
    )
    # The mix keeps every core busy: at least as much power and heat.
    assert m_power.total_w >= p_power.total_w * 0.95
    # And zero coherence interaction between its programs.
    assert mixed.coherence.cache_to_cache == 0


def test_thermal_transient_time_constant(benchmark, experiment_context):
    """The Scenario I down-shift's cool-down time constant."""

    def transient():
        return thermal_step_response(
            experiment_context.thermal,
            power_before={"core0": experiment_context.calibration.max_operational_power_w},
            power_after={f"core{i}": 1.0 for i in range(16)},
            duration_s=0.4,
            n_samples=20,
            dt_s=1e-3,
        )

    result = benchmark.pedantic(transient, rounds=1, iterations=1)
    tau = result.time_constant_s()
    print(
        f"\ncool-down from {result.start_c:.1f} C to {result.target_c:.1f} C: "
        f"time constant {tau * 1e3:.1f} ms, settled "
        f"{result.settled_fraction():.0%} after 400 ms"
    )
    assert result.target_c < result.start_c
    assert 1e-4 < tau < 0.4
    assert result.settled_fraction() > 0.8


def test_activity_migration(benchmark, experiment_context):
    """Rotating a hot thread across cores flattens the thermal peak.

    The thermal-management extension: silicon's RC time constant means
    hopping a single hot thread around idle cores spreads its heat in
    time, trading L1 warmth for peak temperature — the classic
    activity-migration result, measured end to end on the warm-session
    simulator plus the transient RC network.
    """
    from repro.harness import compare_migration

    pinned, rotated = benchmark.pedantic(
        lambda: compare_migration(
            experiment_context, workload_by_name("FMM"), rotation_set=4
        ),
        rounds=1,
        iterations=1,
    )
    print(
        "\nFMM, 1 thread on 4 candidate cores: pinned peak "
        f"{pinned.peak_temperature_c:.1f} C / {pinned.total_time_s * 1e6:.0f} us; "
        f"rotated peak {rotated.peak_temperature_c:.1f} C / "
        f"{rotated.total_time_s * 1e6:.0f} us "
        f"(miss rate {pinned.l1_miss_rate:.2f} -> {rotated.l1_miss_rate:.2f})"
    )
    assert rotated.peak_temperature_c < pinned.peak_temperature_c
    assert rotated.total_time_s >= pinned.total_time_s
