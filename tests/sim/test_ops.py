"""Tests for op-stream compilation and the compile cache."""

import pytest

from repro.sim.ops import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_CRITICAL,
    OP_LOAD,
    OP_STORE,
    CompiledProgram,
    OpStreamCache,
    compile_stream,
    compile_workload,
    stream_op_count,
)


class TestCompileStream:
    def test_non_compute_ops_pass_through(self):
        ops = [(OP_LOAD, 0x40), (OP_STORE, 0x80), (OP_BARRIER, 0),
               (OP_CRITICAL, 1, 5, 0x100)]
        assert compile_stream(ops) == ops

    def test_adjacent_computes_fuse(self):
        ops = [(OP_COMPUTE, 5), (OP_COMPUTE, 7), (OP_LOAD, 0x40)]
        assert compile_stream(ops) == [
            (OP_COMPUTE, 12, (5, 7)),
            (OP_LOAD, 0x40),
        ]

    def test_singleton_compute_stays_plain(self):
        ops = [(OP_COMPUTE, 5), (OP_LOAD, 0x40), (OP_COMPUTE, 7)]
        assert compile_stream(ops) == ops

    def test_trailing_run_flushes(self):
        ops = [(OP_LOAD, 0x40), (OP_COMPUTE, 1), (OP_COMPUTE, 2),
               (OP_COMPUTE, 3)]
        assert compile_stream(ops)[-1] == (OP_COMPUTE, 6, (1, 2, 3))

    def test_idempotent_on_compiled_input(self):
        ops = [(OP_COMPUTE, 5), (OP_COMPUTE, 7), (OP_LOAD, 0x40),
               (OP_COMPUTE, 3)]
        once = compile_stream(ops)
        assert compile_stream(once) == once

    def test_fused_input_merges_with_neighbours(self):
        ops = [(OP_COMPUTE, 12, (5, 7)), (OP_COMPUTE, 3)]
        assert compile_stream(ops) == [(OP_COMPUTE, 15, (5, 7, 3))]

    def test_empty_stream(self):
        assert compile_stream([]) == []


class TestStreamOpCount:
    def test_counts_source_ops(self):
        compiled = compile_stream(
            [(OP_COMPUTE, 1), (OP_COMPUTE, 2), (OP_LOAD, 0x40),
             (OP_BARRIER, 0)]
        )
        assert len(compiled) == 3
        assert stream_op_count(compiled) == 4

    def test_plain_stream_counts_length(self):
        ops = [(OP_LOAD, 0x40), (OP_STORE, 0x80)]
        assert stream_op_count(ops) == 2


class TestOpStreamCache:
    def _program(self):
        return CompiledProgram(streams=[[]], total_ops=0, compiled_ops=0)

    def test_miss_then_hit(self):
        cache = OpStreamCache()
        assert cache.get("k") is None
        assert cache.misses == 1
        program = self._program()
        cache.put("k", program)
        assert cache.get("k") is program
        assert cache.hits == 1

    def test_lru_eviction(self):
        cache = OpStreamCache(maxsize=2)
        a, b, c = self._program(), self._program(), self._program()
        cache.put("a", a)
        cache.put("b", b)
        cache.get("a")  # refresh: b becomes LRU
        cache.put("c", c)
        assert cache.get("b") is None
        assert cache.get("a") is a
        assert cache.get("c") is c

    def test_reput_refreshes_position(self):
        cache = OpStreamCache(maxsize=2)
        cache.put("a", self._program())
        cache.put("b", self._program())
        cache.put("a", self._program())  # refresh a: b is LRU
        cache.put("c", self._program())
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_clear(self):
        cache = OpStreamCache()
        cache.put("k", self._program())
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            OpStreamCache(maxsize=0)


class FakeModel:
    """Workload-protocol stub counting stream generations."""

    def __init__(self, key="fake"):
        self.generated = 0
        self._key = key

    def compile_key(self, n_threads):
        return (self._key, n_threads)

    def thread_ops(self, thread_id, n_threads):
        self.generated += 1
        yield (OP_COMPUTE, 10)
        yield (OP_COMPUTE, 20)
        yield (OP_LOAD, 0x40 * (thread_id + 1))


class KeylessModel:
    def thread_ops(self, thread_id, n_threads):
        yield (OP_COMPUTE, 1)


class TestCompileWorkload:
    def test_cold_compile_generates_and_fuses(self):
        model = FakeModel()
        out = compile_workload(model, 2, cache=OpStreamCache())
        assert not out.from_cache
        assert model.generated == 2
        assert out.program.n_threads == 2
        assert out.program.total_ops == 6
        assert out.program.compiled_ops == 4  # fused pairs
        assert out.program.streams[0][0] == (OP_COMPUTE, 30, (10, 20))

    def test_warm_compile_skips_generation(self):
        cache = OpStreamCache()
        model = FakeModel()
        cold = compile_workload(model, 2, cache=cache)
        warm = compile_workload(model, 2, cache=cache)
        assert warm.from_cache
        assert warm.seconds == 0.0
        assert warm.program is cold.program
        assert model.generated == 2  # nothing regenerated

    def test_thread_count_is_part_of_the_key(self):
        cache = OpStreamCache()
        model = FakeModel()
        compile_workload(model, 1, cache=cache)
        out = compile_workload(model, 2, cache=cache)
        assert not out.from_cache

    def test_model_without_key_always_compiles(self):
        cache = OpStreamCache()
        first = compile_workload(KeylessModel(), 1, cache=cache)
        second = compile_workload(KeylessModel(), 1, cache=cache)
        assert not first.from_cache and not second.from_cache

    def test_cache_none_always_compiles(self):
        model = FakeModel()
        compile_workload(model, 1, cache=None)
        out = compile_workload(model, 1, cache=None)
        assert not out.from_cache
        assert model.generated == 2
