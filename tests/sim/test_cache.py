"""Tests for the set-associative MESI cache arrays."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.cache import Cache, CacheConfig, EXCLUSIVE, MODIFIED, SHARED


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig(capacity_bytes=line * assoc * sets, line_bytes=line, associativity=assoc))


class TestCacheConfig:
    def test_table1_l1(self):
        config = CacheConfig(64 * 1024, 64, 2)
        assert config.n_sets == 512
        assert config.line_shift == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(0, 64, 2)
        with pytest.raises(ConfigurationError):
            CacheConfig(64 * 1024, 63, 2)  # not a power of two
        with pytest.raises(ConfigurationError):
            CacheConfig(1000, 64, 2)  # not divisible


class TestLookupInsert:
    def test_miss_then_hit(self):
        cache = small_cache()
        line = cache.line_address(0x1000)
        assert cache.lookup(line) is None
        cache.insert(line, EXCLUSIVE)
        assert cache.lookup(line) == EXCLUSIVE
        assert cache.hits == 1
        assert cache.misses == 1

    def test_line_granularity(self):
        cache = small_cache(line=64)
        a = cache.line_address(0x1000)
        b = cache.line_address(0x1004)
        assert a == b  # same 64 B line

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(1, SHARED)
        cache.insert(2, SHARED)
        cache.lookup(1)  # touch 1: now 2 is LRU
        victim = cache.insert(3, SHARED)
        assert victim == (2, SHARED)

    def test_dirty_eviction_counts_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(1, MODIFIED)
        victim = cache.insert(2, SHARED)
        assert victim == (1, MODIFIED)
        assert cache.writebacks == 1

    def test_reinsert_same_line_no_eviction(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(1, SHARED)
        assert cache.insert(1, MODIFIED) is None
        assert cache.probe(1) == MODIFIED

    def test_sets_isolated(self):
        cache = small_cache(assoc=1, sets=2)
        cache.insert(0, SHARED)  # set 0
        cache.insert(1, SHARED)  # set 1
        assert cache.resident_lines() == 2


class TestStateManagement:
    def test_set_state(self):
        cache = small_cache()
        cache.insert(5, EXCLUSIVE)
        cache.set_state(5, MODIFIED)
        assert cache.probe(5) == MODIFIED

    def test_set_state_missing_line_rejected(self):
        cache = small_cache()
        with pytest.raises(ConfigurationError):
            cache.set_state(99, SHARED)

    def test_invalidate(self):
        cache = small_cache()
        cache.insert(5, MODIFIED)
        assert cache.invalidate(5) == MODIFIED
        assert cache.probe(5) is None
        assert cache.invalidate(5) is None  # idempotent

    def test_probe_does_not_count(self):
        cache = small_cache()
        cache.probe(1)
        assert cache.accesses == 0


class TestStatistics:
    def test_miss_rate(self):
        cache = small_cache()
        assert cache.miss_rate() == 0.0
        cache.lookup(1)
        cache.insert(1, SHARED)
        cache.lookup(1)
        assert cache.miss_rate() == pytest.approx(0.5)

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=200
        )
    )
    @settings(max_examples=30)
    def test_occupancy_never_exceeds_capacity(self, addresses):
        cache = small_cache(assoc=2, sets=4)
        for addr in addresses:
            line = cache.line_address(addr)
            if cache.lookup(line) is None:
                cache.insert(line, SHARED)
        assert cache.resident_lines() <= 8

    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=200
        )
    )
    @settings(max_examples=30)
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = small_cache()
        for addr in addresses:
            line = cache.line_address(addr)
            if cache.lookup(line) is None:
                cache.insert(line, SHARED)
        assert cache.hits + cache.misses == len(addresses)


class TestEvictionEdgeCases:
    """LRU edges around insert/invalidate the full runs rarely hit."""

    def test_reinsert_refreshes_lru_position(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(1, SHARED)
        cache.insert(2, SHARED)
        cache.insert(1, SHARED)  # refresh 1: now 2 is LRU
        victim = cache.insert(3, SHARED)
        assert victim == (2, SHARED)

    def test_invalidate_frees_the_slot(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(1, MODIFIED)
        cache.invalidate(1)
        assert cache.insert(2, SHARED) is None  # no eviction needed
        assert cache.evictions == 0

    def test_invalidated_dirty_line_is_not_a_writeback(self):
        # Invalidation transfers responsibility (the requester or the L2
        # takes the data); only capacity evictions count writebacks.
        cache = small_cache(assoc=1, sets=1)
        cache.insert(1, MODIFIED)
        cache.invalidate(1)
        assert cache.writebacks == 0

    def test_clean_eviction_counts_no_writeback(self):
        cache = small_cache(assoc=1, sets=1)
        cache.insert(1, EXCLUSIVE)
        victim = cache.insert(2, SHARED)
        assert victim == (1, EXCLUSIVE)
        assert cache.evictions == 1
        assert cache.writebacks == 0

    def test_eviction_picks_oldest_of_full_set(self):
        cache = small_cache(assoc=4, sets=1)
        for line in (1, 2, 3, 4):
            cache.insert(line, SHARED)
        cache.lookup(1)
        cache.lookup(2)
        cache.lookup(3)
        victim = cache.insert(5, SHARED)
        assert victim == (4, SHARED)

    def test_invalidate_wrong_set_untouched(self):
        cache = small_cache(assoc=1, sets=2)
        cache.insert(0, SHARED)  # set 0
        assert cache.invalidate(1) is None  # set 1: absent
        assert cache.probe(0) == SHARED


class TestTouchHit:
    """touch_hit must equal lookup (+ set_state) on a resident line."""

    def test_counts_hit_and_moves_lru(self):
        cache = small_cache(assoc=2, sets=1)
        cache.insert(1, SHARED)
        cache.insert(2, SHARED)
        cache.touch_hit(1)
        assert cache.hits == 1
        victim = cache.insert(3, SHARED)
        assert victim == (2, SHARED)  # 1 was refreshed

    def test_state_rewrite_matches_upgrade(self):
        cache = small_cache()
        cache.insert(7, EXCLUSIVE)
        cache.touch_hit(7, MODIFIED)  # the silent E->M store upgrade
        assert cache.probe(7) == MODIFIED
        assert cache.hits == 1

    def test_matches_lookup_on_resident_line(self):
        a, b = small_cache(assoc=2, sets=1), small_cache(assoc=2, sets=1)
        for cache in (a, b):
            cache.insert(1, SHARED)
            cache.insert(2, SHARED)
        a.lookup(1)
        b.touch_hit(1)
        assert a.hits == b.hits
        assert a.entries() == b.entries()
