"""Tests for Scenario I: power optimization at iso-performance (Sec. 2.2)."""

import pytest

from repro.core import (
    AnalyticalChipModel,
    MeasuredEfficiency,
    PowerOptimizationScenario,
    SAMPLE_APPLICATION,
)
from repro.errors import InfeasibleOperatingPoint
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module", params=["130nm", "65nm"])
def scenario(request):
    node = {"130nm": NODE_130NM, "65nm": NODE_65NM}[request.param]
    return PowerOptimizationScenario(AnalyticalChipModel(node))


class TestSolve:
    def test_iso_performance_frequency(self, scenario):
        point = scenario.solve(4, 0.8)
        # Eq. 7: f = f1 / (N eps) = f1 / 3.2.
        assert point.frequency_hz == pytest.approx(
            scenario.chip.tech.f_nominal / 3.2
        )

    def test_overclock_region_infeasible(self, scenario):
        with pytest.raises(InfeasibleOperatingPoint):
            scenario.solve(2, 0.45)  # N * eps = 0.9 < 1

    def test_perfect_efficiency_saves_power(self, scenario):
        # The paper: all curves show savings beyond some efficiency.
        for n in (2, 4, 8, 16):
            point = scenario.solve(n, 1.0)
            assert point.normalized_power < 1.0, f"N={n}"

    def test_savings_grow_with_efficiency(self, scenario):
        # Figure 1: higher eps_n allows greater power savings at fixed N.
        powers = [scenario.solve(8, eps).normalized_power for eps in (0.4, 0.6, 0.8, 1.0)]
        assert all(b < a for a, b in zip(powers, powers[1:]))

    def test_voltage_clamped_to_legal_range(self, scenario):
        tech = scenario.chip.tech
        for n, eps in ((2, 0.6), (16, 1.0), (32, 1.0)):
            point = scenario.solve(n, eps)
            assert tech.v_min - 1e-9 <= point.voltage <= tech.vdd_nominal + 1e-9

    def test_voltage_floor_flag(self, scenario):
        # At very low target frequencies the voltage floor is reached and
        # frequency alone keeps scaling (Figure 1's curvature change).
        deep = scenario.solve(32, 1.0)
        assert deep.voltage == pytest.approx(scenario.chip.tech.v_min)
        assert deep.voltage_floored

    def test_temperature_decreases_with_cores_at_iso_performance(self, scenario):
        # More cores at equal performance -> lower V/f -> cooler die.
        temps = [scenario.solve(n, 1.0).temperature_celsius for n in (2, 4, 8)]
        assert all(b < a for a, b in zip(temps, temps[1:]))

    def test_temperature_floor_is_ambient(self, scenario):
        point = scenario.solve(32, 1.0)
        assert point.temperature_celsius >= scenario.chip.ambient_celsius - 1e-9


class TestFigure1Properties:
    def test_high_n_curves_above_low_n_at_high_efficiency(self, scenario):
        # The paper: high-N curves run above low-N ones at high
        # efficiency because static power of many cores dominates.
        p16 = scenario.solve(16, 1.0).normalized_power
        p32 = scenario.solve(32, 1.0).normalized_power
        assert p32 > p16

    def test_breakeven_lower_for_moderate_n(self, scenario):
        # Configurations with higher N reach breakeven at lower
        # efficiency... up to the point where static power reverses it.
        be2 = scenario.breakeven_efficiency(2)
        be8 = scenario.breakeven_efficiency(8)
        assert be8 < be2

    def test_breakeven_bounds(self, scenario):
        for n in (2, 4, 8, 16):
            be = scenario.breakeven_efficiency(n)
            assert be is None or 1.0 / n <= be <= 1.0

    def test_efficiency_sweep_skips_infeasible(self, scenario):
        points = scenario.efficiency_sweep(2, [0.1, 0.3, 0.8, 1.0])
        assert [p.eps_n for p in points] == [0.8, 1.0]

    def test_best_configuration_not_always_largest(self, scenario):
        # The paper's sample application: maximum savings is NOT at N=32.
        best = scenario.best_configuration(SAMPLE_APPLICATION, (2, 4, 8, 16, 32))
        assert best.n < 32

    def test_best_configuration_infeasible_application(self, scenario):
        terrible = MeasuredEfficiency({2: 0.2, 4: 0.1, 8: 0.05, 16: 0.02, 32: 0.01})
        with pytest.raises(InfeasibleOperatingPoint):
            scenario.best_configuration(terrible, (2, 4, 8, 16, 32))


class TestCrossTechnology:
    def test_reference_normalisation_is_one(self):
        for node in (NODE_130NM, NODE_65NM):
            scenario = PowerOptimizationScenario(AnalyticalChipModel(node))
            ref = scenario.reference
            assert ref.power.total_w == pytest.approx(
                scenario.chip.p1_watts, rel=1e-6
            )
