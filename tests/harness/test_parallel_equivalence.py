"""Serial/parallel equivalence: jobs=4 must be bitwise identical to jobs=1.

The executor's contract is that parallelism changes wall-clock time and
nothing else.  Each pipeline here runs three ways — the pre-existing
serial entry point (no executor argument), an explicit ``jobs=1``
executor, and a ``jobs=4`` executor — and the row lists must match
exactly (same order, same values, no tolerance).
"""

import pytest

from repro.core import (
    AnalyticalChipModel,
    PerformanceOptimizationScenario,
    PowerOptimizationScenario,
    figure1_rows,
    figure1_sweep,
    figure2_rows,
    figure2_sweep,
)
from repro.core.efficiency import ConstantEfficiency
from repro.harness import (
    ExperimentContext,
    SweepExecutor,
    run_scenario1,
    run_scenario2,
    sweep_design_parameter,
)
from repro.harness.designspace import bus_width_variants
from repro.tech import technology_by_name
from repro.workloads import workload_by_name

EFFICIENCY_POINTS = 31
CORE_COUNTS = (2, 4, 8)


@pytest.fixture(scope="module")
def chip():
    return AnalyticalChipModel(technology_by_name("65nm"))


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.04)


class TestAnalyticalEquivalence:
    def test_figure1_parallel_equals_serial(self, chip):
        serial = figure1_rows(
            chip, CORE_COUNTS, efficiency_points=EFFICIENCY_POINTS
        )
        parallel = figure1_rows(
            chip,
            CORE_COUNTS,
            efficiency_points=EFFICIENCY_POINTS,
            executor=SweepExecutor(jobs=4),
        )
        assert parallel == serial

    def test_figure1_matches_preexisting_solver_path(self, chip):
        """The fan-out grid reproduces ``efficiency_sweep`` bit for bit."""
        import numpy as np

        rows = figure1_rows(chip, CORE_COUNTS, efficiency_points=EFFICIENCY_POINTS)
        grid = [float(e) for e in np.linspace(0.01, 1.0, EFFICIENCY_POINTS)]
        scenario = PowerOptimizationScenario(chip)
        for n in CORE_COUNTS:
            legacy = scenario.efficiency_sweep(n, grid)
            ours = [r for r in rows if r.n == n]
            assert [r.eps_n for r in ours] == [p.eps_n for p in legacy]
            assert [r.normalized_power for r in ours] == [
                p.normalized_power for p in legacy
            ]

    def test_figure1_sweep_curves_identical(self, chip):
        serial = figure1_sweep(chip, CORE_COUNTS, efficiency_points=EFFICIENCY_POINTS)
        parallel = figure1_sweep(
            chip,
            CORE_COUNTS,
            efficiency_points=EFFICIENCY_POINTS,
            executor=SweepExecutor(jobs=4),
        )
        assert parallel == serial

    def test_figure2_parallel_equals_serial_and_solver(self, chip):
        counts = tuple(range(1, 17))
        serial = figure2_rows(chip, counts)
        parallel = figure2_rows(chip, counts, executor=SweepExecutor(jobs=4))
        assert parallel == serial
        legacy = PerformanceOptimizationScenario(chip).speedup_curve(
            ConstantEfficiency(1.0), counts
        )
        assert [r.speedup for r in serial] == [p.speedup for p in legacy]
        assert [r.regime for r in serial] == [p.regime for p in legacy]

    def test_figure2_sweep_curve_identical(self, chip):
        counts = tuple(range(1, 17))
        serial = figure2_sweep(chip, counts)
        parallel = figure2_sweep(chip, counts, executor=SweepExecutor(jobs=4))
        assert parallel == serial


class TestExperimentalEquivalence:
    def test_scenario1_parallel_equals_serial(self, context):
        models = [workload_by_name("FMM"), workload_by_name("Radix")]
        counts = (1, 2, 4)
        default = run_scenario1(context, models, counts)
        serial = run_scenario1(
            context, models, counts, executor=SweepExecutor(jobs=1)
        )
        parallel = run_scenario1(
            context, models, counts, executor=SweepExecutor(jobs=4)
        )
        assert serial == default
        assert parallel == default

    def test_scenario2_parallel_equals_serial(self, context):
        models = [workload_by_name("Radix")]
        counts = (1, 2, 4)
        default = run_scenario2(context, models, counts)
        parallel = run_scenario2(
            context, models, counts, executor=SweepExecutor(jobs=4)
        )
        assert parallel == default

    def test_designspace_parallel_equals_serial(self):
        model = workload_by_name("FMM")
        variants = bus_width_variants((2, 8))
        default = sweep_design_parameter(model, variants, n_threads=4)
        parallel = sweep_design_parameter(
            model, variants, n_threads=4, executor=SweepExecutor(jobs=4)
        )
        assert parallel == default
