"""Automatic workload calibration against a behavioural target.

The twelve shipped SPLASH-2 models were tuned so the simulator
reproduces each application's published signature.  Anyone adding a new
workload faces the same chore; this module automates it:

* :func:`measure_signature` — run a spec on the Table 1 machine and
  report the three headline metrics: nominal efficiency at the high
  core count, memory-stall fraction and L1 miss rate at one core;
* :func:`calibrate_workload` — coordinate descent over the spec's
  behavioural knobs (hot-set fraction, locality, imbalance, serial
  fraction) to minimise the weighted squared distance to a
  :class:`SignatureTarget`.

Each probe is two simulations, so calibration is minutes of work at
realistic scales; the knobs are monotone enough that a handful of
shrinking-step passes converges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.cmp import ChipMultiprocessor, CMPConfig
from repro.workloads.base import WorkloadModel, WorkloadSpec


@dataclass(frozen=True)
class Signature:
    """The three headline metrics of one workload on the Table 1 machine."""

    eps_high: float
    stall1: float
    l1_miss1: float


@dataclass(frozen=True)
class SignatureTarget:
    """Desired signature; ``None`` fields are unconstrained."""

    eps_high: Optional[float] = None
    stall1: Optional[float] = None
    l1_miss1: Optional[float] = None
    #: Relative weights of the three error terms.
    weights: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def loss(self, signature: Signature) -> float:
        """Weighted squared relative error against this target."""
        total = 0.0
        pairs = (
            (self.eps_high, signature.eps_high, self.weights[0]),
            (self.stall1, signature.stall1, self.weights[1]),
            (self.l1_miss1, signature.l1_miss1, self.weights[2]),
        )
        for target, measured, weight in pairs:
            if target is None:
                continue
            scale = max(abs(target), 1e-3)
            total += weight * ((measured - target) / scale) ** 2
        return total


def measure_signature(
    spec: WorkloadSpec,
    n_high: int = 16,
    scale: float = 0.25,
    config: Optional[CMPConfig] = None,
) -> Signature:
    """Measure a spec's signature (deterministic)."""
    model = WorkloadModel(spec.scaled(scale))
    config = config or CMPConfig()
    times = {}
    baseline = None
    for n in (1, n_high):
        chip = ChipMultiprocessor(config)
        result = chip.run(
            [model.thread_ops(t, n) for t in range(n)],
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        times[n] = result.execution_time_ps
        if n == 1:
            baseline = result
    return Signature(
        eps_high=times[1] / (n_high * times[n_high]),
        stall1=baseline.memory_stall_fraction(),
        l1_miss1=baseline.l1_miss_rate(),
    )


#: knob name -> (min, max, initial step)
_KNOBS: Dict[str, Tuple[float, float, float]] = {
    "hot_fraction": (0.0, 0.97, 0.10),
    "locality": (0.30, 0.99, 0.05),
    "imbalance": (0.0, 0.6, 0.08),
    "serial_fraction": (0.0, 0.3, 0.02),
}


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    spec: WorkloadSpec
    signature: Signature
    loss: float
    evaluations: int
    history: Tuple[float, ...]


def calibrate_workload(
    spec: WorkloadSpec,
    target: SignatureTarget,
    iterations: int = 4,
    n_high: int = 16,
    scale: float = 0.15,
    knobs: Optional[List[str]] = None,
) -> CalibrationResult:
    """Coordinate descent on the behavioural knobs toward ``target``.

    Returns the best spec found together with its measured signature and
    the loss trajectory.  Deterministic; each iteration probes each knob
    one step up and down and keeps the best move, halving the step when
    a full pass makes no progress.
    """
    if iterations < 1:
        raise ConfigurationError("need at least one iteration")
    knob_names = knobs or list(_KNOBS)
    for name in knob_names:
        if name not in _KNOBS:
            raise ConfigurationError(f"unknown calibration knob {name!r}")

    evaluations = 0

    def evaluate(candidate: WorkloadSpec) -> Tuple[float, Signature]:
        nonlocal evaluations
        evaluations += 1
        signature = measure_signature(candidate, n_high=n_high, scale=scale)
        return target.loss(signature), signature

    steps = {name: _KNOBS[name][2] for name in knob_names}
    best_spec = spec
    best_loss, best_signature = evaluate(spec)
    history = [best_loss]

    for _ in range(iterations):
        improved = False
        for name in knob_names:
            lo, hi, _ = _KNOBS[name]
            current = getattr(best_spec, name)
            for direction in (+1, -1):
                candidate_value = min(hi, max(lo, current + direction * steps[name]))
                if math.isclose(candidate_value, current):
                    continue
                candidate = replace(best_spec, **{name: candidate_value})
                loss, signature = evaluate(candidate)
                if loss < best_loss:
                    best_spec, best_loss, best_signature = (
                        candidate,
                        loss,
                        signature,
                    )
                    improved = True
                    break  # take the improving direction, move on
        history.append(best_loss)
        if not improved:
            steps = {name: step / 2 for name, step in steps.items()}

    return CalibrationResult(
        spec=best_spec,
        signature=best_signature,
        loss=best_loss,
        evaluations=evaluations,
        history=tuple(history),
    )
