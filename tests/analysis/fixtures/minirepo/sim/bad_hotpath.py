"""Seeded hot-path violations (analyzer fixture; never imported)."""


# repro: hot
def hot_loop(stream: list, registry: object) -> int:
    total = 0
    handler = lambda op: op + 1  # HOT-ALLOC (lambda closure)
    if hasattr(registry, "fallback"):  # HOT-GETATTR
        total += 1
    for op in stream:
        try:  # HOT-TRY (inside the per-op loop)
            total += handler(op)
        except ValueError:
            pass
        sizes = [len(str(x)) for x in (op,)]  # HOT-ALLOC (comprehension in loop)
        total += sizes[0]
        label = f"op-{op}"  # HOT-FORMAT
        total += len(label)
        dispatch = getattr(registry, "run")  # HOT-GETATTR
        total += int(bool(dispatch))

    def helper() -> int:  # HOT-ALLOC (nested def)
        return 1

    return total + helper()


# repro: hot
def hot_with_raise(value: int) -> int:
    if value < 0:
        raise ValueError(f"bad value {value}")  # exempt: inside raise
    return value
