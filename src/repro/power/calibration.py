"""The Wattch <-> HotSpot renormalisation of Section 3.3.

The paper's procedure, reproduced step by step:

1. Use HotSpot to determine the **maximum operational power** — the
   (dynamic + static) power on one core that yields the 100 C maximum
   operating temperature.
2. Split it into dynamic and static components using the
   static/dynamic-vs-temperature curve at 100 C.
3. Run the **compute-intensive microbenchmark** on one core at nominal
   V/f in the simulator and read Wattch's dynamic power.
4. The ratio between Wattch's number and HotSpot's dynamic component
   renormalises every subsequent Wattch wattage, making the two tools
   speak the same (relative) language.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, ConvergenceError
from repro.power.static import StaticPowerModel
from repro.power.wattch import WattchModel
from repro.sim.cmp import ChipMultiprocessor, CMPConfig
from repro.thermal.hotspot import HotSpotModel
from repro.units import celsius_to_kelvin
from repro.workloads.microbench import max_power_microbenchmark


@dataclass(frozen=True)
class PowerCalibration:
    """The renormalisation constants the experiments run with."""

    #: Power on one core that pins the die at the 100 C design point.
    max_operational_power_w: float
    #: Its dynamic component at 100 C.
    design_dynamic_w: float
    #: Wattch's (raw) dynamic power for the microbenchmark at nominal V/f.
    wattch_microbenchmark_w: float
    #: Divide every raw Wattch wattage by this to renormalise.
    wattch_to_hotspot_ratio: float

    def renormalise(self, raw_wattch_w: float) -> float:
        """Convert a raw Wattch wattage to the HotSpot-anchored scale."""
        return raw_wattch_w / self.wattch_to_hotspot_ratio


def _max_operational_power(
    thermal: HotSpotModel, block: str, peak_celsius: float
) -> float:
    """Bisect the single-block power that reaches ``peak_celsius``."""
    target_k = celsius_to_kelvin(peak_celsius)

    def peak(power_w: float) -> float:
        return thermal.solve({block: power_w}).peak_k

    lo, hi = 0.0, 1.0
    while peak(hi) < target_k:
        hi *= 2.0
        if hi > 1e6:
            raise ConvergenceError("thermal model never reaches the design point")
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if peak(mid) < target_k:
            lo = mid
        else:
            hi = mid
    return hi


def calibrate_power_model(
    cmp_config: CMPConfig,
    thermal: HotSpotModel,
    wattch: WattchModel,
    static_model: StaticPowerModel,
    design_celsius: float = 100.0,
    hot_block: str = "core0",
) -> PowerCalibration:
    """Run the Section 3.3 renormalisation and return its constants."""
    if cmp_config.n_cores < 1:
        raise ConfigurationError("need at least one core")

    max_power = _max_operational_power(thermal, hot_block, design_celsius)
    design_dynamic, _design_static = static_model.split_total(
        max_power, design_celsius
    )

    ubench = max_power_microbenchmark()
    chip = ChipMultiprocessor(cmp_config)
    result = chip.run(
        [ubench.thread_ops(0, 1)],
        ubench.core_timing(),
        warmup_barriers=ubench.warmup_barriers,
    )
    raw_dynamic = wattch.total_dynamic_power_w(result)

    return PowerCalibration(
        max_operational_power_w=max_power,
        design_dynamic_w=design_dynamic,
        wattch_microbenchmark_w=raw_dynamic,
        wattch_to_hotspot_ratio=raw_dynamic / design_dynamic,
    )
