"""Cross-process telemetry through the executor's outcome channel."""

import os
from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.harness.executor import ResultCache, SweepExecutor
from repro.harness.profiling import KernelAggregate, SimPointRow
from repro.telemetry.record import (
    KernelRecord,
    PointTelemetry,
    capturing,
    record_kernel,
)


@dataclass
class FakeKernelStats:
    """KernelStats-shaped object for feeding the capture buffer."""

    mode: str = "fast"
    total_ops: int = 100
    fast_path_ops: int = 80
    slow_path_ops: int = 15
    barrier_ops: int = 5
    sim_wall_s: float = 0.01
    compile_s: float = 0.002
    compile_cache_hit: bool = True
    subsystem_s: Dict[str, float] = field(default_factory=lambda: {"memory": 0.004})


def recording_row_point(point):
    """Picklable evaluator that deposits one kernel record per call."""
    record_kernel(FakeKernelStats(total_ops=100 * (point + 1)))
    return SimPointRow(
        app=f"app-{point}",
        n=point,
        frequency_hz=3.2e9,
        voltage=1.1,
        execution_time_ps=1000 * (point + 1),
        total_power_w=float(point),
        core_power_density_w_m2=1.0,
        average_temperature_c=45.0,
        average_cpi=1.0,
        l1_miss_rate=0.01,
        memory_stall_fraction=0.1,
        bus_utilisation=0.2,
    )


def key_configs(points):
    return [{"kind": "telemetry-test", "point": p} for p in points]


class TestInlineTelemetry:
    def test_every_outcome_carries_point_telemetry(self):
        executor = SweepExecutor(jobs=1)
        outcomes = executor.map(recording_row_point, [0, 1])
        for outcome in outcomes:
            telemetry = outcome.telemetry
            assert isinstance(telemetry, PointTelemetry)
            assert telemetry.pid == os.getpid()
            assert telemetry.wall_s >= 0
            assert telemetry.start_us > 0
            assert len(telemetry.kernels) == 1
            assert isinstance(telemetry.kernels[0], KernelRecord)
        assert outcomes[0].telemetry.total_ops == 100
        assert outcomes[1].telemetry.total_ops == 200

    def test_capture_window_closes_after_each_point(self):
        executor = SweepExecutor(jobs=1)
        executor.map(recording_row_point, [0])
        assert not capturing()
        record_kernel(FakeKernelStats())  # must be a no-op now
        outcomes = executor.map(recording_row_point, [1])
        assert len(outcomes[0].telemetry.kernels) == 1

    def test_inline_records_do_not_double_count_in_fold(self):
        executor = SweepExecutor(jobs=1)
        executor.map(recording_row_point, [0, 1])
        aggregate = KernelAggregate()
        executor.fold_telemetry_into(aggregate)
        # Inline evaluations already reached the context's own log; the
        # fold must skip them (same pid, not cached).
        assert aggregate.runs == 0 and aggregate.cached_runs == 0


class TestWorkerTelemetry:
    def test_worker_records_travel_back_and_fold_as_runs(self):
        executor = SweepExecutor(jobs=2, chunksize=1)
        outcomes = executor.map(recording_row_point, [0, 1, 2, 3])
        pids = {o.telemetry.pid for o in outcomes}
        assert os.getpid() not in pids
        assert sum(o.telemetry.total_ops for o in outcomes) == 1000
        aggregate = KernelAggregate()
        executor.fold_telemetry_into(aggregate)
        assert aggregate.runs == 4
        assert aggregate.cached_runs == 0
        assert aggregate.total_ops == 1000
        assert aggregate.subsystem_s == pytest.approx({"memory": 0.016})
        # Drained: a second fold adds nothing.
        executor.fold_telemetry_into(aggregate)
        assert aggregate.runs == 4


class TestCachedTelemetry:
    def test_cache_replays_telemetry_without_spans(self, tmp_path):
        points = [0, 1]
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold_outcomes = cold.map(
            recording_row_point, points, key_configs=key_configs(points)
        )

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm_outcomes = warm.map(
            recording_row_point, points, key_configs=key_configs(points)
        )
        assert warm.stats.evaluated == 0
        for cold_outcome, warm_outcome in zip(cold_outcomes, warm_outcomes):
            assert warm_outcome.cached
            assert warm_outcome.telemetry is not None
            assert warm_outcome.telemetry.spans == ()
            assert (
                warm_outcome.telemetry.kernels == cold_outcome.telemetry.kernels
            )

    def test_cached_points_fold_as_cached_runs(self, tmp_path):
        points = [0, 1]
        cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        cold.map(recording_row_point, points, key_configs=key_configs(points))

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm.map(recording_row_point, points, key_configs=key_configs(points))
        aggregate = KernelAggregate()
        warm.fold_telemetry_into(aggregate)
        assert aggregate.runs == 0
        assert aggregate.cached_runs == 2
        assert aggregate.total_ops == 300
        assert "(+2 cached)" in aggregate.summary()

    def test_warm_cache_op_totals_match_the_cold_run(self, tmp_path):
        points = [0, 1, 2]
        cold = SweepExecutor(jobs=2, chunksize=1, cache=ResultCache(tmp_path))
        cold.map(recording_row_point, points, key_configs=key_configs(points))
        cold_aggregate = KernelAggregate()
        cold.fold_telemetry_into(cold_aggregate)

        warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        warm.map(recording_row_point, points, key_configs=key_configs(points))
        warm_aggregate = KernelAggregate()
        warm.fold_telemetry_into(warm_aggregate)

        assert warm_aggregate.total_ops == cold_aggregate.total_ops == 600
        assert (cold_aggregate.runs, cold_aggregate.cached_runs) == (3, 0)
        assert (warm_aggregate.runs, warm_aggregate.cached_runs) == (0, 3)


class TestStatsSummaries:
    def test_executor_summary_line(self):
        executor = SweepExecutor(jobs=1)
        executor.map(recording_row_point, [0, 1])
        assert executor.stats.summary() == (
            "[executor] 2 evaluated, 0 cache hits, 0 failures"
        )

    def test_cache_summary_line(self, tmp_path):
        points = [0, 1]
        executor = SweepExecutor(jobs=1, cache=ResultCache(tmp_path))
        executor.map(recording_row_point, points, key_configs=key_configs(points))
        executor.map(recording_row_point, points, key_configs=key_configs(points))
        assert executor.cache.stats.summary() == (
            "[cache] 2 hits, 2 misses, 2 stores"
        )
