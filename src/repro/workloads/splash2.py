"""The twelve SPLASH-2 application models (Table 2).

Each spec encodes one application's published behavioural signature at
the paper's problem sizes.  The salient targets, taken from the SPLASH-2
characterisation [41] and the paper's own observations:

* **FMM, Water-Sp, Water-Nsq, Barnes** scale well (eps_n ~ 0.8-0.9 at 16
  cores); FMM is the most compute-intensive/power-hungry (Section 4.2).
* **Cholesky, Volrend, Raytrace, Radiosity** have limited scalability —
  serial sections, task imbalance, and lock contention.
* **Ocean, FFT, Radix** are memory-bound: footprints beyond the L2 and
  scatter/transpose access patterns.  Radix is the power-thrifty extreme
  (Section 4.2: stalls keep it far from the power budget), yet its
  *nominal* efficiency is good.
* **LU** combines excellent blocked locality (high power, with FMM the
  biggest temperature drops in Figure 3) with pivot-induced imbalance at
  high core counts.

``total_instructions`` values are scaled-down synthetic run lengths —
large enough for cache behaviour to reach steady state, small enough
that the full Figure 3 pipeline runs in minutes of host time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.workloads.base import WorkloadModel, WorkloadSpec

KB = 1024
MB = 1024 * 1024

_SPECS = (
    WorkloadSpec(
        name="Barnes",
        problem_size="16K particles",
        total_instructions=400_000,
        mem_ratio=0.24,
        write_fraction=0.25,
        total_private_bytes=800 * KB,
        shared_bytes=512 * KB,
        shared_fraction=0.15,
        locality=0.96,
        hot_fraction=0.8,
        sharing_pattern="uniform",
        n_phases=8,
        serial_fraction=0.010,
        imbalance=0.06,
        critical_sections_per_phase=8,
        n_locks=32,
        base_cpi=0.80,
        memory_parallelism=2.0,
        seed=101,
    ),
    WorkloadSpec(
        name="Cholesky",
        problem_size="tk15.O",
        total_instructions=400_000,
        mem_ratio=0.28,
        write_fraction=0.30,
        total_private_bytes=1 * MB,
        shared_bytes=1 * MB,
        shared_fraction=0.22,
        locality=0.96,
        hot_fraction=0.76,
        sharing_pattern="uniform",
        n_phases=10,
        serial_fraction=0.060,
        imbalance=0.25,
        critical_sections_per_phase=12,
        n_locks=8,
        base_cpi=0.70,
        memory_parallelism=2.0,
        seed=102,
    ),
    WorkloadSpec(
        name="FFT",
        problem_size="64K points",
        total_instructions=400_000,
        mem_ratio=0.30,
        write_fraction=0.35,
        total_private_bytes=1 * MB,
        shared_bytes=2 * MB,
        shared_fraction=0.4,
        locality=0.92,
        hot_fraction=0.62,
        sharing_pattern="uniform",
        n_phases=6,
        serial_fraction=0.010,
        imbalance=0.02,
        base_cpi=0.75,
        memory_parallelism=2.2,
        power_of_two_only=True,
        seed=103,
    ),
    WorkloadSpec(
        name="FMM",
        problem_size="16K particles",
        total_instructions=400_000,
        mem_ratio=0.12,
        write_fraction=0.20,
        total_private_bytes=600 * KB,
        shared_bytes=512 * KB,
        shared_fraction=0.12,
        locality=0.98,
        hot_fraction=0.94,
        sharing_pattern="uniform",
        n_phases=8,
        serial_fraction=0.008,
        imbalance=0.06,
        critical_sections_per_phase=4,
        n_locks=32,
        base_cpi=0.50,
        memory_parallelism=2.4,
        seed=104,
    ),
    WorkloadSpec(
        name="LU",
        problem_size="512x512 matrix, 16x16 blocks",
        total_instructions=400_000,
        mem_ratio=0.30,
        write_fraction=0.30,
        total_private_bytes=2 * MB,
        shared_bytes=512 * KB,
        shared_fraction=0.1,
        locality=0.975,
        hot_fraction=0.86,
        sharing_pattern="blocked",
        n_phases=12,
        serial_fraction=0.015,
        imbalance=0.16,
        base_cpi=0.55,
        memory_parallelism=2.2,
        seed=105,
    ),
    WorkloadSpec(
        name="Ocean",
        problem_size="514x514 ocean",
        total_instructions=400_000,
        mem_ratio=0.35,
        write_fraction=0.30,
        total_private_bytes=3 * MB,
        shared_bytes=3 * MB,
        shared_fraction=0.22,
        locality=0.92,
        hot_fraction=0.62,
        sharing_pattern="blocked",
        n_phases=10,
        serial_fraction=0.015,
        imbalance=0.05,
        base_cpi=0.90,
        memory_parallelism=2.2,
        power_of_two_only=True,
        seed=106,
    ),
    WorkloadSpec(
        name="Radiosity",
        problem_size="room -ae 5000.0 -en 0.05 -bf 0.1",
        total_instructions=400_000,
        mem_ratio=0.25,
        write_fraction=0.30,
        total_private_bytes=800 * KB,
        shared_bytes=1 * MB,
        shared_fraction=0.2,
        locality=0.95,
        hot_fraction=0.76,
        sharing_pattern="uniform",
        n_phases=8,
        serial_fraction=0.030,
        imbalance=0.15,
        critical_sections_per_phase=30,
        n_locks=8,
        base_cpi=0.80,
        memory_parallelism=2.0,
        seed=107,
    ),
    WorkloadSpec(
        name="Radix",
        problem_size="1M integers, radix 1024",
        total_instructions=400_000,
        mem_ratio=0.25,
        write_fraction=0.45,
        total_private_bytes=4 * MB,
        shared_bytes=4 * MB,
        shared_fraction=0.5,
        locality=0.8,
        hot_fraction=0.3,
        sharing_pattern="uniform",
        n_phases=6,
        serial_fraction=0.008,
        imbalance=0.03,
        base_cpi=0.75,
        memory_parallelism=2.4,
        power_of_two_only=True,
        seed=108,
    ),
    WorkloadSpec(
        name="Raytrace",
        problem_size="car",
        total_instructions=400_000,
        mem_ratio=0.25,
        write_fraction=0.20,
        total_private_bytes=1 * MB,
        shared_bytes=1 * MB,
        shared_fraction=0.15,
        locality=0.95,
        hot_fraction=0.76,
        sharing_pattern="uniform",
        n_phases=8,
        serial_fraction=0.020,
        imbalance=0.20,
        critical_sections_per_phase=20,
        n_locks=4,
        base_cpi=0.85,
        memory_parallelism=2.0,
        seed=109,
    ),
    WorkloadSpec(
        name="Volrend",
        problem_size="head",
        total_instructions=400_000,
        mem_ratio=0.22,
        write_fraction=0.20,
        total_private_bytes=800 * KB,
        shared_bytes=1 * MB,
        shared_fraction=0.15,
        locality=0.96,
        hot_fraction=0.8,
        sharing_pattern="uniform",
        n_phases=10,
        serial_fraction=0.040,
        imbalance=0.30,
        critical_sections_per_phase=15,
        n_locks=8,
        base_cpi=0.80,
        memory_parallelism=2.0,
        seed=110,
    ),
    WorkloadSpec(
        name="Water-Nsq",
        problem_size="512 molecules",
        total_instructions=400_000,
        mem_ratio=0.18,
        write_fraction=0.25,
        total_private_bytes=300 * KB,
        shared_bytes=256 * KB,
        shared_fraction=0.12,
        locality=0.97,
        hot_fraction=0.9,
        sharing_pattern="uniform",
        n_phases=8,
        serial_fraction=0.010,
        imbalance=0.05,
        critical_sections_per_phase=4,
        n_locks=64,
        base_cpi=0.65,
        memory_parallelism=2.2,
        seed=111,
    ),
    WorkloadSpec(
        name="Water-Sp",
        problem_size="512 molecules",
        total_instructions=400_000,
        mem_ratio=0.16,
        write_fraction=0.25,
        total_private_bytes=300 * KB,
        shared_bytes=256 * KB,
        shared_fraction=0.08,
        locality=0.975,
        hot_fraction=0.92,
        sharing_pattern="blocked",
        n_phases=8,
        serial_fraction=0.005,
        imbalance=0.03,
        critical_sections_per_phase=2,
        n_locks=64,
        base_cpi=0.65,
        memory_parallelism=2.2,
        seed=112,
    ),
)

#: The suite, in the paper's Table 2 order.
SPLASH2: List[WorkloadModel] = [WorkloadModel(spec) for spec in _SPECS]

_BY_NAME: Dict[str, WorkloadModel] = {model.name: model for model in SPLASH2}


def workload_by_name(name: str) -> WorkloadModel:
    """Look up one of the twelve applications by (case-insensitive) name."""
    for key, model in _BY_NAME.items():
        if key.lower() == name.lower():
            return model
    raise ConfigurationError(
        f"unknown workload {name!r}; known: {sorted(_BY_NAME)}"
    )
