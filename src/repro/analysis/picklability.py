"""Picklability checker for the executor outcome channel.

The sweep executor (:mod:`repro.harness.executor`) ships results
between processes with :mod:`pickle`, and the
:class:`~repro.harness.cache.ResultCache` persists the same objects to
disk.  Anything reachable from those payloads must therefore be
pickle-friendly *forever*: module-level classes (pickle stores a
qualified name, not code), stable attribute layout (``__slots__`` or a
dataclass — pickled blobs survive refactors only when the field set is
explicit), and no lambdas anywhere in field defaults (lambdas cannot
be pickled at all).

Reachability starts from the configured root class names
(:data:`PICKLE_ROOTS`) — the row types registered with the result
store, the outcome/failure channel types, and the telemetry records —
and follows dataclass field annotations transitively, resolving bare
class names against the tree index.  String forward references are
parsed and followed.

Rules:

* ``PICK-NESTED`` (error) — a reachable class defined inside a
  function or another class; pickle cannot import it by name.
* ``PICK-SLOTS`` (warning) — a reachable class that is neither a
  dataclass nor defines ``__slots__``; its layout is implicit and
  will drift.
* ``PICK-LAMBDA`` (error) — a ``lambda`` in a reachable class's field
  default or ``default_factory``; unpicklable.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.index import ClassInfo, TreeIndex

#: Class names whose instances cross the process/persistence boundary.
#: Kept in sync with ``repro.harness.store._ROW_TYPES`` plus the
#: executor outcome channel and telemetry record types (the meta-test
#: in tests/analysis asserts the store registry is covered).
PICKLE_ROOTS: Tuple[str, ...] = (
    # harness/store.py row registry
    "Scenario1Row",
    "Scenario2Row",
    "OverclockRow",
    "PerCoreDVFSResult",
    "DesignPoint",
    "DesignRunRow",
    "SimPointRow",
    "Figure1Row",
    "Figure2Row",
    "OptimizerRow",
    "FailedPointRow",
    # executor outcome channel
    "PointOutcome",
    "SweepFailure",
    "SimPointTask",
    "WorkloadSpec",
    # the task wrapper shipped to workers, and the fault plan it carries
    "_PointCall",
    "FaultPlan",
    "FaultSpec",
    # journal entries (persisted as JSONL, rebuilt as dataclasses)
    "JournalEntry",
    # telemetry records attached to outcomes
    "KernelRecord",
    "PointTelemetry",
    "SpanRecord",
    "SampleRecord",
    # alert-rule rows persisted into manifests
    "AlertRule",
    "AlertFinding",
)


def _annotation_names(annotation: ast.expr) -> Set[str]:
    """Every bare identifier mentioned by an annotation expression.

    ``List[KernelRecord]`` yields ``{"List", "KernelRecord"}``; string
    forward references are parsed and recursed into.
    """
    names: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            names |= _annotation_names(parsed.body)
    return names


def reachable_classes(index: TreeIndex) -> Dict[str, List[ClassInfo]]:
    """Classes reachable from :data:`PICKLE_ROOTS` via field annotations.

    Keyed by bare class name; a name maps to every definition the tree
    holds (normally one).  Unresolvable names are simply absent — this
    checker only judges code it can see.
    """
    reachable: Dict[str, List[ClassInfo]] = {}
    queue: List[str] = [name for name in PICKLE_ROOTS]
    seen: Set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        definitions = index.classes.get(name, [])
        if not definitions:
            continue
        reachable[name] = definitions
        for definition in definitions:
            for _, annotation in definition.field_annotations:
                for referenced in sorted(_annotation_names(annotation)):
                    if referenced not in seen:
                        queue.append(referenced)
    return reachable


def check(index: TreeIndex) -> List[Finding]:
    """Run the PICK-* rules over the reachable closure."""
    findings: List[Finding] = []
    for name, definitions in sorted(reachable_classes(index).items()):
        for info in definitions:
            _check_class(name, info, findings)
    findings.sort()
    return findings


def _check_class(name: str, info: ClassInfo, findings: List[Finding]) -> None:
    line = info.node.lineno
    if not info.module_level:
        findings.append(
            Finding(
                path=info.file.rel,
                line=line,
                rule="PICK-NESTED",
                severity="error",
                message=(
                    f"pickled class `{info.qualname}` is not module-level; "
                    "pickle imports classes by qualified name"
                ),
                snippet=info.file.snippet(line),
            )
        )
    if not info.is_dataclass and not info.has_slots:
        findings.append(
            Finding(
                path=info.file.rel,
                line=line,
                rule="PICK-SLOTS",
                severity="warning",
                message=(
                    f"pickled class `{name}` is neither a dataclass nor "
                    "defines __slots__; its field layout is implicit"
                ),
                snippet=info.file.snippet(line),
            )
        )
    for stmt in info.node.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Lambda):
                at = node.lineno
                findings.append(
                    Finding(
                        path=info.file.rel,
                        line=at,
                        rule="PICK-LAMBDA",
                        severity="error",
                        message=(
                            f"lambda in pickled class `{name}`; lambdas "
                            "cannot be pickled — use a module-level function"
                        ),
                        snippet=info.file.snippet(at),
                    )
                )
