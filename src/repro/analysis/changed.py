"""Incremental gating: restrict findings to lines changed since a ref.

``repro check --changed[=REF]`` keeps the full-tree analysis (the
interprocedural passes *need* the whole tree — a diff-only parse would
miss the call graph) but gates the exit code on findings whose anchor
line was added or edited since ``REF`` (default ``HEAD``).  Pre-commit
hooks and PR checks stay fast to act on without letting the author of
an unrelated line inherit the whole backlog.

The changed-line map comes from ``git diff --unified=0 --relative``
run inside the analyzed root, parsed from the unified-diff headers:
``+++ b/<path>`` names the post-image file, each ``@@ -a,b +c,d @@``
hunk contributes new-side lines ``[c, c+d)``.  Added files are wholly
covered by their single hunk.  Parse *errors* in changed files always
gate — a file that stopped parsing cannot be line-attributed.
"""

from __future__ import annotations

import re
import subprocess
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.source import SourceError

#: ``git diff`` hunk header: ``@@ -a[,b] +c[,d] @@``.
_HUNK_RE = re.compile(r"^@@ -\d+(?:,\d+)? \+(?P<start>\d+)(?:,(?P<count>\d+))? @@")


class ChangedLinesError(RuntimeError):
    """``git diff`` could not produce a changed-line map."""


def parse_diff(diff_text: str) -> Dict[str, Set[int]]:
    """``path → changed new-side lines`` from ``-U0`` unified diff text."""
    changed: Dict[str, Set[int]] = {}
    current: Optional[str] = None
    for line in diff_text.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":
                current = None  # deletion: nothing on the new side
                continue
            if target.startswith("b/"):
                target = target[2:]
            current = target
            changed.setdefault(current, set())
            continue
        if current is None:
            continue
        match = _HUNK_RE.match(line)
        if match is None:
            continue
        start = int(match.group("start"))
        count = int(match.group("count") or "1")
        changed[current].update(range(start, start + count))
    # Pure-deletion hunks leave empty sets; the file still changed (a
    # finding elsewhere in it is not *new*, but a parse error is).
    return changed


def changed_lines(root: Path, ref: str) -> Dict[str, Set[int]]:
    """Changed-line map of the tree under ``root`` since ``ref``.

    Paths are relative to ``root`` (``--relative``), matching finding
    paths.  Raises :class:`ChangedLinesError` outside a git work tree
    or on an unknown ref.
    """
    command = [
        "git",
        "-C",
        str(root),
        "diff",
        "--unified=0",
        "--no-color",
        "--relative",
        ref,
        "--",
        ".",
    ]
    try:
        process = subprocess.run(
            command,
            capture_output=True,
            text=True,
            timeout=60,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise ChangedLinesError(f"git diff failed: {exc}") from exc
    if process.returncode != 0:
        detail = process.stderr.strip() or f"exit code {process.returncode}"
        raise ChangedLinesError(f"git diff failed: {detail}")
    return parse_diff(process.stdout)


def gate_findings(
    findings: Sequence[Finding],
    errors: Sequence[SourceError],
    changed: Dict[str, Set[int]],
) -> Tuple[List[Finding], List[SourceError]]:
    """``(gated findings, gated errors)`` — what ``--changed`` fails on.

    A finding gates when its anchor line is in the changed set of its
    file; a parse error gates when its file changed at all.
    """
    gated = [
        finding
        for finding in findings
        if finding.line in changed.get(finding.path, frozenset())
    ]
    gated_errors = [error for error in errors if error.rel in changed]
    return gated, gated_errors
