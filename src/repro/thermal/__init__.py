"""Compact thermal modelling (the HotSpot [38] stand-in).

The paper uses HotSpot twice:

* in the **analytical** study (Section 2.2) to approximate the operating
  temperature of each (N, V, f) configuration so the leakage term of Eq. 8
  can respond to temperature, and
* in the **experimental** study (Section 3.3) to estimate block and
  average die temperatures from the simulator's power map.

HotSpot itself is a compact RC thermal network over a floorplan; this
subpackage implements the same idea from scratch:

* :mod:`~repro.thermal.floorplan` — rectangular block floorplans, with
  ready-made EV6-like core and CMP die layouts,
* :mod:`~repro.thermal.rcnetwork` — the RC network builder plus
  steady-state (linear solve) and transient (implicit Euler) solvers,
* :mod:`~repro.thermal.hotspot` — the :class:`HotSpotModel` facade that
  turns a power map into block temperatures, including the calibration
  hook that pins the max-power design point at 100 C,
* :mod:`~repro.thermal.compact` — a two-parameter lumped model used by
  the analytical scenarios, where only the average die temperature matters.
"""

from repro.thermal.floorplan import (
    Block,
    Floorplan,
    ev6_core_floorplan,
    cmp_floorplan,
)
from repro.thermal.rcnetwork import ThermalRCNetwork
from repro.thermal.hotspot import HotSpotModel, ThermalResult
from repro.thermal.compact import CompactThermalModel

__all__ = [
    "Block",
    "Floorplan",
    "ev6_core_floorplan",
    "cmp_floorplan",
    "ThermalRCNetwork",
    "HotSpotModel",
    "ThermalResult",
    "CompactThermalModel",
]
