"""Tests for floorplan geometry."""


import pytest

from repro.errors import ConfigurationError
from repro.thermal import Block, Floorplan, cmp_floorplan, ev6_core_floorplan


class TestBlock:
    def test_area_and_edges(self):
        block = Block("b", x=1.0, y=2.0, width=3.0, height=4.0)
        assert block.area == 12.0
        assert block.x2 == 4.0
        assert block.y2 == 6.0
        assert block.center() == (2.5, 4.0)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Block("b", 0, 0, 0.0, 1.0)

    def test_shared_edge_side_by_side(self):
        a = Block("a", 0, 0, 1, 2)
        b = Block("b", 1, 0.5, 1, 2)
        assert a.shared_edge_length(b) == pytest.approx(1.5)
        assert b.shared_edge_length(a) == pytest.approx(1.5)

    def test_shared_edge_stacked(self):
        a = Block("a", 0, 0, 2, 1)
        b = Block("b", 0.5, 1, 2, 1)
        assert a.shared_edge_length(b) == pytest.approx(1.5)

    def test_no_shared_edge_when_separated(self):
        a = Block("a", 0, 0, 1, 1)
        b = Block("b", 2, 0, 1, 1)
        assert a.shared_edge_length(b) == 0.0

    def test_corner_touch_is_not_adjacency(self):
        a = Block("a", 0, 0, 1, 1)
        b = Block("b", 1, 1, 1, 1)
        assert a.shared_edge_length(b) == 0.0


class TestFloorplan:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan(blocks=(Block("a", 0, 0, 1, 1), Block("a", 1, 0, 1, 1)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Floorplan(blocks=())

    def test_block_lookup(self):
        fp = Floorplan(blocks=(Block("a", 0, 0, 1, 1),))
        assert fp.block("a").name == "a"
        with pytest.raises(ConfigurationError):
            fp.block("missing")

    def test_adjacency_of_2x1_grid(self):
        fp = Floorplan(blocks=(Block("a", 0, 0, 1, 1), Block("b", 1, 0, 1, 1)))
        adjacency = fp.adjacency()
        assert adjacency == {("a", "b"): pytest.approx(1.0)}


class TestEV6Floorplan:
    def test_total_area_preserved(self):
        area = 12.0e-6
        fp = ev6_core_floorplan(area)
        assert fp.total_area == pytest.approx(area)

    def test_sixteen_blocks(self):
        fp = ev6_core_floorplan()
        assert len(fp.blocks) == 16
        assert "icache" in fp.names
        assert "intexec" in fp.names

    def test_blocks_tile_without_overlap(self):
        fp = ev6_core_floorplan()
        # Pairwise non-overlap: intersection area must be ~0.
        for i, a in enumerate(fp.blocks):
            for b in fp.blocks[i + 1 :]:
                dx = min(a.x2, b.x2) - max(a.x, b.x)
                dy = min(a.y2, b.y2) - max(a.y, b.y)
                assert dx <= 1e-9 or dy <= 1e-9

    def test_every_block_has_a_neighbour(self):
        fp = ev6_core_floorplan()
        adjacency = fp.adjacency()
        touched = {name for pair in adjacency for name in pair}
        assert touched == set(fp.names)

    def test_invalid_area_rejected(self):
        with pytest.raises(ConfigurationError):
            ev6_core_floorplan(-1.0)


class TestCMPFloorplan:
    def test_paper_die(self):
        # Table 1: 16 cores, 15.6 mm x 15.6 mm.
        fp = cmp_floorplan(16, die_side=15.6e-3)
        assert len(fp.blocks) == 17  # 16 cores + l2
        assert fp.total_area == pytest.approx((15.6e-3) ** 2)

    def test_core_names(self):
        fp = cmp_floorplan(4)
        assert {"core0", "core1", "core2", "core3", "l2"} == set(fp.names)

    def test_l2_fraction(self):
        fp = cmp_floorplan(16, die_side=1.0, l2_fraction=0.25)
        assert fp.block("l2").area == pytest.approx(0.25)

    def test_single_core(self):
        fp = cmp_floorplan(1)
        assert set(fp.names) == {"core0", "l2"}

    def test_non_square_counts(self):
        fp = cmp_floorplan(6)
        assert len([n for n in fp.names if n.startswith("core")]) == 6

    def test_zero_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            cmp_floorplan(0)

    def test_cores_adjacent_to_l2_row(self):
        fp = cmp_floorplan(16)
        adjacency = fp.adjacency()
        l2_neighbours = {a if b == "l2" else b for a, b in adjacency if "l2" in (a, b)}
        # The bottom row of cores touches the L2 slab.
        assert len(l2_neighbours) >= 4
