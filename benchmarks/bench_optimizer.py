"""Simulation-count benchmark of the adaptive optimizer vs exhaustive.

Run directly (not collected by pytest, which only looks in ``tests/``)::

    PYTHONPATH=src python benchmarks/bench_optimizer.py \
        [--quick] [--output BENCH_optimizer.json] [--check BASELINE.json]

For each boundary objective (``speedup-budget`` and ``power-iso``) the
benchmark runs the full exhaustive reference campaign and then the
adaptive campaign over the same applications and core counts, sharing
one :class:`~repro.harness.executor.ResultCache` so the adaptive pass
re-reads the exhaustive pass's simulations instead of re-running them.
Two things are recorded per objective:

* **equivalence** — every adaptive optimum must be bitwise identical to
  the exhaustive pick (frequency, voltage, time, power, speedup,
  metric, feasibility); any divergence fails the run outright;
* **evaluation_ratio** — adaptive grid evaluations over exhaustive grid
  evaluations.  Grid-point counts are deterministic (they depend only
  on the search logic, never on host speed), so the ratio is a
  machine-independent CI gate.

``--check BASELINE.json`` fails when a shared objective's ratio grew by
more than ``--tolerance`` (absolute, default 0.05) over the committed
baseline, or exceeds the hard ``--max-ratio`` ceiling (default 0.50 —
the issue's "materially fewer simulations" bar).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile

from repro.harness import ExperimentContext, ResultCache, SweepExecutor, run_optimizer
from repro.workloads import SPLASH2, workload_by_name

SCHEMA = "bench-optimizer-v1"
OBJECTIVES = ("speedup-budget", "power-iso")
FULL_APPS = tuple(model.name for model in SPLASH2)
FULL_CORE_COUNTS = (1, 2, 4, 8, 16)
QUICK_APPS = ("FMM", "Cholesky", "Radix")
QUICK_CORE_COUNTS = (1, 16)


def _optimum(row) -> tuple:
    """Everything the equivalence check compares, bitwise."""
    return (
        row.app,
        row.n,
        row.frequency_hz,
        row.voltage,
        row.execution_time_ps,
        row.total_power_w,
        row.speedup,
        row.metric,
        row.feasible,
    )


def bench_objective(context, models, core_counts, objective: str) -> dict:
    """One objective: exhaustive reference, then the adaptive search."""
    with tempfile.TemporaryDirectory(prefix="bench-optimizer-") as root:
        executor = SweepExecutor(cache=ResultCache(root))
        exhaustive = run_optimizer(
            context,
            models,
            objective,
            core_counts=core_counts,
            executor=executor,
            exhaustive=True,
        )
        adaptive = run_optimizer(
            context,
            models,
            objective,
            core_counts=core_counts,
            executor=executor,
        )
    equivalent = [_optimum(r) for r in adaptive.rows] == [
        _optimum(r) for r in exhaustive.rows
    ]
    return {
        "objective": objective,
        "searches": len(adaptive.rows),
        "grid_points": adaptive.rows[0].grid_points if adaptive.rows else 0,
        "equivalent": equivalent,
        "exhaustive_evaluations": exhaustive.evaluations,
        "adaptive_evaluations": adaptive.evaluations,
        "adaptive_cold_evaluations": adaptive.cold_evaluations,
        "simulations_saved": adaptive.simulations_saved,
        "evaluation_ratio": round(adaptive.evaluation_ratio, 4),
        "rounds": adaptive.rounds,
    }


def run_benchmark(args) -> dict:
    apps = QUICK_APPS if args.quick else FULL_APPS
    core_counts = QUICK_CORE_COUNTS if args.quick else FULL_CORE_COUNTS
    context = ExperimentContext(workload_scale=args.scale)
    models = [workload_by_name(app) for app in apps]
    points = []
    for objective in OBJECTIVES:
        point = bench_objective(context, models, core_counts, objective)
        points.append(point)
        print(
            f"{objective:15s}: {point['adaptive_evaluations']:4d} of "
            f"{point['exhaustive_evaluations']:4d} grid evaluations "
            f"(ratio {point['evaluation_ratio']:.3f}, "
            f"{point['rounds']} round(s), "
            f"equivalent={'yes' if point['equivalent'] else 'NO'})"
        )
    ratios = [p["evaluation_ratio"] for p in points]
    return {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {
            "scale": args.scale,
            "quick": args.quick,
            "apps": list(apps),
            "core_counts": list(core_counts),
        },
        "points": points,
        "summary": {
            "all_equivalent": all(p["equivalent"] for p in points),
            "max_evaluation_ratio": max(ratios),
            "total_simulations_saved": sum(
                p["simulations_saved"] for p in points
            ),
        },
    }


def check_regression(
    report: dict, baseline_path: str, tolerance: float, max_ratio: float
) -> int:
    """Exit 1 on lost equivalence or an evaluation-ratio regression."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    reference = {p["objective"]: p for p in baseline.get("points", [])}
    failures = []
    compared = 0
    for point in report["points"]:
        name = point["objective"]
        if not point["equivalent"]:
            failures.append(f"{name}: adaptive diverged from exhaustive")
        if point["evaluation_ratio"] > max_ratio:
            failures.append(
                f"{name}: evaluation ratio {point['evaluation_ratio']:.3f} "
                f"exceeds the hard {max_ratio:.2f} ceiling"
            )
        old = reference.get(name)
        if old is None:
            continue
        compared += 1
        ceiling = old["evaluation_ratio"] + tolerance
        if point["evaluation_ratio"] > ceiling:
            failures.append(
                f"{name}: evaluation ratio {point['evaluation_ratio']:.3f} > "
                f"{ceiling:.3f} (baseline {old['evaluation_ratio']:.3f} "
                f"+ {tolerance:.2f})"
            )
    if not compared:
        print(f"[check] no comparable points in {baseline_path}", file=sys.stderr)
        return 1
    if failures:
        for line in failures:
            print(f"[check] REGRESSION: {line}", file=sys.stderr)
        return 1
    print(
        f"[check] {compared} objectives equivalent and within "
        f"+{tolerance:.2f} of baseline ratios"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small app/core-count set for local smoke runs",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="workload scale (default: 0.05 — counts, not wall-clock, "
        "are what this benchmark gates)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSON report to PATH",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail on lost equivalence or a ratio regression vs BASELINE",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed absolute evaluation-ratio growth for --check "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=0.50,
        help="hard ceiling on any objective's evaluation ratio "
        "(default: 0.50)",
    )
    args = parser.parse_args()

    report = run_benchmark(args)
    summary = report["summary"]
    print(
        f"equivalent: {'yes' if summary['all_equivalent'] else 'NO'}, "
        f"max ratio {summary['max_evaluation_ratio']:.3f}, "
        f"saved {summary['total_simulations_saved']} simulations"
    )
    if not summary["all_equivalent"]:
        print(
            "[check] REGRESSION: adaptive diverged from exhaustive",
            file=sys.stderr,
        )
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        return check_regression(
            report, args.check, args.tolerance, args.max_ratio
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
