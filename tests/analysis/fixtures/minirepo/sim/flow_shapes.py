"""Call-graph shape fixtures: cycles, dispatch, modern syntax.

Analyzer fixture; never imported.  Everything here is determinism- and
hotpath-clean — the file exists so the call-graph tests have known
shapes to assert against.
"""


def countdown(n: int) -> int:
    # Direct recursion: a one-node cycle.
    if n <= 0:
        return 0
    return countdown(n - 1)


def ping(n: int) -> int:
    # Mutual recursion: a two-node cycle.
    if n <= 0:
        return 0
    return pong(n - 1)


def pong(n: int) -> int:
    if n <= 0:
        return 1
    return ping(n - 1)


async def async_step(budget: int) -> int:
    # async def functions are ordinary call-graph nodes.
    if (remaining := budget - 1) > 0:  # walrus inside an async body
        return await async_step(remaining)
    return countdown(budget)


def dispatch_shape(kind: str) -> int:
    # match statements are walked like any other compound statement.
    match kind:
        case "ping":
            return ping(3)
        case "pong":
            return pong(3)
        case _:
            return countdown(3)


class AluPort:
    def issue(self, op: int) -> int:
        return op + 1


class MemPort:
    def issue(self, op: int) -> int:
        return op + 2


def dynamic_dispatch(port, op: int) -> int:
    # `port.issue` resolves to BOTH definitions above — the
    # conservative fallback links every same-name candidate.
    return port.issue(op)


def escape_reference() -> object:
    # `countdown` escapes as a value: a "ref" edge, not a "call" edge.
    return countdown
