"""Experimental Scenario II: best speedup under a power budget (Sec. 4.2).

The budget is the maximum nominal power of a single core, derived by
microbenchmarking (Section 3.3's calibration).  For each (application, N)
the pipeline:

1. profiles power on the paper's frequency ladder (200 MHz .. 3.0 GHz
   in 200 MHz steps plus nominal), probing the grid with a binary
   search so only O(log) points simulate;
2. picks the highest grid frequency whose measured power fits the
   budget, with the voltage from the V/f table — the chosen point is
   always *on* the grid here; the paper's "linearly scaling between the
   two" bracketing profiled points is implemented by the adaptive
   optimizer (:mod:`repro.harness.optimizer`), which reports the
   interpolated budget boundary as ``f_interpolated_hz`` metadata
   alongside the same grid pick;
3. re-simulates at the chosen point — the "real speedup" run — and
   reports actual versus nominal speedup (Figure 4).

Memory-bound applications benefit twice, as the paper observes: their
nominal power is far below the budget (no throttling needed until high
N), and when throttling does kick in, the fixed-latency memory narrows
the processor-memory gap.

The campaign runs through a
:class:`~repro.harness.executor.SweepExecutor` in two fan-outs: the
nominal profiles of all applications, then one chunky task per
(application, N) that performs the whole budget search plus the final
re-simulation inside the worker.  Each task's outcome is memoized, so a
warm re-run simulates nothing.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.harness.context import ExperimentContext
from repro.harness.executor import SweepExecutor
from repro.harness.profiling import (
    SimPointTask,
    precompile_hook,
    profile_application,
    sim_point_key,
    simulate_point,
)
from repro.workloads.base import WorkloadModel, WorkloadSpec


@dataclass(frozen=True)
class Scenario2Row:
    """One (application, N) outcome — one pair of points in Figure 4."""

    app: str
    n: int
    nominal_speedup: float
    actual_speedup: float
    frequency_hz: float
    voltage: float
    power_w: float
    budget_w: float
    #: The context's nominal frequency, carried so derived properties
    #: work on any technology node.  The default is the historical
    #: 65 nm value, which migrates rows stored before the field existed.
    f_nominal_hz: float = 3.2e9

    @property
    def runs_at_nominal(self) -> bool:
        """Whether the configuration fit the budget without throttling."""
        return self.frequency_hz >= self.f_nominal_hz - 1e6


@dataclass(frozen=True)
class Scenario2Task:
    """One (application, N) budget search plus its final re-simulation."""

    spec: WorkloadSpec
    n: int
    budget_w: float
    t1_ps: int
    nominal_speedup: float


def _scenario2_point(context: ExperimentContext, task: Scenario2Task) -> Scenario2Row:
    """Worker: find the best budget-legal frequency, then measure there."""
    model = WorkloadModel(task.spec)
    frequency = _best_frequency_under_budget(context, model, task.n, task.budget_w)
    result, power = context.run(model, task.n, frequency)
    return Scenario2Row(
        app=task.spec.name,
        n=task.n,
        nominal_speedup=task.nominal_speedup,
        actual_speedup=task.t1_ps / result.execution_time_ps,
        frequency_hz=frequency,
        voltage=context.vf_table.voltage_for_frequency(frequency),
        power_w=power.total_w,
        budget_w=task.budget_w,
        f_nominal_hz=context.f_nominal,
    )


def run_scenario2(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    core_counts: Sequence[int] = tuple(range(1, 17)),
    budget_w: Optional[float] = None,
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, List[Scenario2Row]]:
    """The Figure 4 experiment for a set of applications.

    Points that fail with a library error are recorded by the executor
    as typed failures and omitted from the rows; the campaign carries
    on.  Under a retrying executor the same applies to quarantined
    profile points: an application whose 1-core nominal baseline is
    missing cannot be normalised, so it is skipped with a
    ``[quarantine]`` notice (its failure stays in ``executor.failed``
    for ``failedpoint`` persistence) instead of crashing the campaign.
    """
    budget = budget_w if budget_w is not None else (
        context.calibration.max_operational_power_w
    )
    executor = executor if executor is not None else SweepExecutor()

    # Stage 1: nominal profiles for every application, one flat fan-out.
    profile_tasks: List[SimPointTask] = []
    supported: Dict[str, List[int]] = {}
    for model in models:
        counts = model.supported_thread_counts(core_counts)
        supported[model.name] = counts
        profile_tasks.extend(
            SimPointTask(spec=model.spec, n=n) for n in sorted({1, *counts})
        )
    profile_outcomes = executor.map(
        partial(simulate_point, context),
        profile_tasks,
        key_configs=[sim_point_key(context, task) for task in profile_tasks],
        precompile=precompile_hook(context),
    )
    times: Dict[str, Dict[int, int]] = {m.name: {} for m in models}
    for task, outcome in zip(profile_tasks, profile_outcomes):
        if outcome.ok:
            times[task.spec.name][task.n] = outcome.value.execution_time_ps

    # Stage 2: one chunky budget-search task per (application, N).
    tasks: List[Scenario2Task] = []
    for model in models:
        app_times = times[model.name]
        if 1 not in app_times:
            print(
                f"[quarantine] {model.name}: the 1-core nominal profile "
                "failed; skipping the application",
                file=sys.stderr,
            )
            continue
        t1 = app_times[1]
        tasks.extend(
            Scenario2Task(
                spec=model.spec,
                n=n,
                budget_w=budget,
                t1_ps=t1,
                nominal_speedup=t1 / app_times[n],
            )
            for n in supported[model.name]
            if n in app_times
        )
    outcomes = executor.map(
        partial(_scenario2_point, context),
        tasks,
        key_configs=[
            {"kind": "scenario2", "context": context.fingerprint(), "task": task}
            for task in tasks
        ],
        precompile=precompile_hook(context),
    )
    results: Dict[str, List[Scenario2Row]] = {m.name: [] for m in models}
    for task, outcome in zip(tasks, outcomes):
        if outcome.ok:
            results[task.spec.name].append(outcome.value)
    return results


@dataclass(frozen=True)
class OverclockRow:
    """One overclocked configuration versus its nominal-cap baseline.

    The paper's Section 4.2 closing remark: power-thrifty memory-bound
    codes at low N leave budget headroom one could spend on
    *overclocking* — but since the memory subsystem keeps its 75 ns
    latency, the widening processor-memory gap offsets part of the gain.
    """

    app: str
    n: int
    baseline_speedup: float
    overclocked_speedup: float
    overclock_frequency_hz: float
    power_w: float
    budget_w: float
    #: The context's nominal frequency, carried so derived properties
    #: work on any technology node.  The default is the historical
    #: 65 nm value, which migrates rows stored before the field existed.
    f_nominal_hz: float = 3.2e9

    @property
    def clock_gain(self) -> float:
        """Overclock frequency relative to nominal (e.g. 1.25 = +25 %)."""
        return self.overclock_frequency_hz / self.f_nominal_hz

    @property
    def speedup_gain(self) -> float:
        """Realised speedup relative to the nominal-frequency baseline."""
        return self.overclocked_speedup / self.baseline_speedup

    @property
    def gap_offset(self) -> float:
        """Fraction of the clock gain eaten by the fixed-latency memory.

        1.0 means overclocking bought nothing; 0.0 means the full clock
        gain was realised.
        """
        clock = self.clock_gain
        if clock <= 1.0:
            return 0.0
        return (clock - self.speedup_gain) / (clock - 1.0)


def run_overclocking_study(
    context: ExperimentContext,
    model: WorkloadModel,
    n_threads: int,
    budget_w: Optional[float] = None,
    f_boost_max_hz: float = 4.4e9,
    step_hz: float = 200e6,
) -> OverclockRow:
    """Spend leftover budget headroom on overclocking one configuration.

    Voltage above the nominal bin is extrapolated from the V/f table's
    top slope, as an enthusiast datasheet would.  The chip (not the
    memory) is overclocked, so memory stalls grow in relative terms —
    the offset the paper predicts.
    """
    budget = budget_w if budget_w is not None else (
        context.calibration.max_operational_power_w
    )
    profile = profile_application(context, model, sorted({1, n_threads}))
    t1 = profile.entries[1].execution_time_ps
    baseline, baseline_power = context.run(model, n_threads, context.f_nominal)
    baseline_speedup = t1 / baseline.execution_time_ps

    # Extrapolate voltage linearly beyond the table's top bin.
    table = context.vf_table
    f_hi = table.f_max
    f_lo = f_hi - step_hz
    slope = (
        table.voltage_for_frequency(f_hi) - table.voltage_for_frequency(f_lo)
    ) / step_hz

    def boosted_voltage(f_hz: float) -> float:
        return table.voltage_for_frequency(f_hi) + slope * (f_hz - f_hi)

    def run_at(f_hz: float):
        return _run_boosted(context, model, n_threads, f_hz, boosted_voltage(f_hz))

    best_f = context.f_nominal
    best_result, best_power = baseline, baseline_power
    f = context.f_nominal + step_hz
    while f <= f_boost_max_hz + 1e6:
        result, power = run_at(f)
        if power.total_w > budget:
            break
        best_f, best_result, best_power = f, result, power
        f += step_hz

    return OverclockRow(
        app=model.name,
        n=n_threads,
        baseline_speedup=baseline_speedup,
        overclocked_speedup=t1 / best_result.execution_time_ps,
        overclock_frequency_hz=best_f,
        power_w=best_power.total_w,
        budget_w=budget,
        f_nominal_hz=context.f_nominal,
    )


def _run_boosted(
    context: ExperimentContext,
    model: WorkloadModel,
    n_threads: int,
    f_hz: float,
    voltage: float,
):
    """Run above the nominal bin (bypasses the context's clamp)."""
    config = context.cmp_config.with_operating_point(f_hz, voltage)
    scaled = model
    if context.workload_scale != 1.0:
        scaled = WorkloadModel(model.spec.scaled(context.workload_scale))
    from repro.sim.cmp import ChipMultiprocessor
    from repro.sim.ops import compile_workload

    compiled = compile_workload(scaled, n_threads)
    chip = ChipMultiprocessor(
        config, fast_path=context.fast_path, profile=context.profile
    )
    result = chip.run(
        compiled.program,
        scaled.core_timing(),
        warmup_barriers=scaled.warmup_barriers,
    )
    if result.kernel is not None:
        result.kernel.compile_s = compiled.seconds
        result.kernel.compile_cache_hit = compiled.from_cache
        context.kernel_log.add(result.kernel)
    return result, context.chip_power.evaluate(result)


def _grid(context: ExperimentContext) -> List[float]:
    """The paper's profiling ladder: 200 MHz steps up to nominal."""
    step = 200e6
    points = []
    f = context.f_min
    while f < context.f_nominal - 1e6:
        points.append(f)
        f += step
    points.append(context.f_nominal)
    return points


def _best_frequency_under_budget(
    context: ExperimentContext,
    model: WorkloadModel,
    n: int,
    budget_w: float,
) -> float:
    """Highest ladder frequency whose measured power fits the budget.

    Power is monotone in frequency for a fixed workload, so a binary
    search over the ladder needs only O(log) profiling simulations
    instead of the paper's full sweep.
    """
    grid = _grid(context)

    def power_at(f_hz: float) -> float:
        _result, power = context.run(model, n, f_hz)
        return power.total_w

    if power_at(grid[-1]) <= budget_w:
        return grid[-1]
    if power_at(grid[0]) > budget_w:
        # Even the floor frequency exceeds the budget; the floor is the
        # best the chip can do (the paper's range stops at 200 MHz).
        return grid[0]
    lo, hi = 0, len(grid) - 1  # power_at(lo) <= budget < power_at(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if power_at(grid[mid]) <= budget_w:
            lo = mid
        else:
            hi = mid
    return grid[lo]
