"""Shared fixtures for the analyzer tests."""

from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisOptions,
    AnalysisReport,
    TreeIndex,
    analyze_tree,
    build_index,
)
from repro.analysis.flow import CallGraph, build_call_graph

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "minirepo"
LIVE_ROOT = Path(__file__).resolve().parent.parent.parent / "src" / "repro"
BASELINE_PATH = (
    Path(__file__).resolve().parent.parent.parent / "analysis" / "baseline.json"
)


@pytest.fixture(scope="session")
def fixture_report() -> AnalysisReport:
    """One full analysis of the seeded fixture tree, shared per session."""
    return analyze_tree(AnalysisOptions(root=FIXTURE_ROOT))


@pytest.fixture(scope="session")
def live_report() -> AnalysisReport:
    """One full analysis of the shipped source tree, shared per session."""
    return analyze_tree(AnalysisOptions(root=LIVE_ROOT))


@pytest.fixture(scope="session")
def fixture_index() -> TreeIndex:
    """The parsed fixture tree, shared per session."""
    return build_index(FIXTURE_ROOT, None)


@pytest.fixture(scope="session")
def fixture_graph(fixture_index: TreeIndex) -> CallGraph:
    """The fixture tree's call graph, shared per session."""
    return build_call_graph(fixture_index)


def findings_for(report: AnalysisReport, rule: str, path: str = ""):
    """The report's findings for one rule (optionally one file)."""
    return [
        f
        for f in report.findings
        if f.rule == rule and (not path or f.path == path)
    ]
