"""The shared snooping bus connecting L1s, the L2, and the memory port.

All cores share one split-transaction bus (Section 3.1).  The simulator
models it as a single serially-reusable resource: a transaction asks for
the bus at its issue time and is granted it no earlier than the bus's
previous release.  Because the scheduler advances cores in global time
order, first-come-first-served reservations are consistent.

Occupancy is charged in *chip cycles* (the bus lives in the chip's clock
domain and scales with DVFS), so bus contention — a major component of
parallel-efficiency loss at high core counts — shrinks in wall-clock
terms as the chip slows down, exactly like the real system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain


@dataclass(frozen=True)
class BusConfig:
    """Bus occupancy parameters, in chip cycles.

    ``address_cycles`` covers arbitration plus the address/snoop phase
    that every transaction performs; ``data_cycles`` is the transfer time
    of one L2 line (128 B over a 32 B-wide data path = 4 cycles).
    """

    address_cycles: int = 2
    data_cycles: int = 4

    def __post_init__(self) -> None:
        if self.address_cycles < 1 or self.data_cycles < 0:
            raise ConfigurationError("bus cycle counts must be positive")


class SharedBus:
    """FIFO-occupancy model of the shared bus."""

    def __init__(self, config: BusConfig, clock: ClockDomain) -> None:
        self.config = config
        self.clock = clock
        self._free_at_ps = 0
        self.transactions = 0
        self.data_transfers = 0
        self.busy_ps = 0
        self.wait_ps = 0

    def set_clock(self, clock: ClockDomain) -> None:
        """Switch clock domain (DVFS); occupancy cycles stay the same."""
        self.clock = clock

    def acquire(self, now_ps: int, with_data: bool, route: int = 0) -> tuple:
        """Reserve the bus for one transaction starting at ``now_ps``.

        Returns ``(grant_ps, release_ps)``: the requester owns the bus
        from grant to release.  ``with_data`` adds the data-phase
        occupancy (cache fills, writebacks); address-only transactions
        (upgrades/invalidations) occupy just the address phase.
        ``route`` is ignored — a bus is one shared medium (the banked
        crossbar uses it to select a channel).
        """
        cycles = self.config.address_cycles
        if with_data:
            cycles += self.config.data_cycles
            self.data_transfers += 1
        duration = self.clock.cycles_to_ps(cycles)
        grant = max(now_ps, self._free_at_ps)
        release = grant + duration
        self._free_at_ps = release
        self.transactions += 1
        self.busy_ps += duration
        self.wait_ps += grant - now_ps
        return grant, release

    def utilisation(self, total_ps: int) -> float:
        """Fraction of elapsed time the bus was occupied."""
        return self.busy_ps / total_ps if total_ps > 0 else 0.0

    def wait_fraction(self, total_ps: int) -> float:
        """Arbitration wait accumulated per unit of elapsed time.

        Unlike :meth:`utilisation` this can exceed 1.0 — several cores
        can be queued on the same medium simultaneously — which is what
        makes it the sharper saturation signal for the sampled
        ``sim.bus_wait_fraction`` channel.
        """
        return self.wait_ps / total_ps if total_ps > 0 else 0.0

    def reset_timing(self) -> None:
        """Clear the reservation state (between simulation runs)."""
        self._free_at_ps = 0


class BankedCrossbar(SharedBus):
    """A banked point-to-point interconnect (extension).

    The paper's bus is the classic small-CMP choice; larger CMPs moved
    to crossbars and NoCs precisely because a single medium saturates.
    This model keeps the bus's address/data occupancy per transaction
    but provides ``n_channels`` independent channels, selected by the
    request's route (the L2 line address), so disjoint traffic proceeds
    in parallel.  Snoop ordering is preserved per line because a line
    always maps to the same channel.

    A ``port_cycles`` overhead models the crossbar's setup cost relative
    to the bus (arbitration across the switch).
    """

    def __init__(
        self,
        config: BusConfig,
        clock: ClockDomain,
        n_channels: int = 4,
        port_cycles: int = 1,
    ) -> None:
        if n_channels < 1:
            raise ConfigurationError("need at least one channel")
        if port_cycles < 0:
            raise ConfigurationError("port_cycles must be >= 0")
        super().__init__(config, clock)
        self.n_channels = n_channels
        self.port_cycles = port_cycles
        self._channel_free_ps = [0] * n_channels

    def acquire(self, now_ps: int, with_data: bool, route: int = 0) -> tuple:
        """Reserve one channel; disjoint routes do not contend."""
        cycles = self.config.address_cycles + self.port_cycles
        if with_data:
            cycles += self.config.data_cycles
            self.data_transfers += 1
        duration = self.clock.cycles_to_ps(cycles)
        channel = route % self.n_channels
        grant = max(now_ps, self._channel_free_ps[channel])
        release = grant + duration
        self._channel_free_ps[channel] = release
        self.transactions += 1
        self.busy_ps += duration
        self.wait_ps += grant - now_ps
        return grant, release

    def utilisation(self, total_ps: int) -> float:
        """Average occupancy across channels."""
        if total_ps <= 0:
            return 0.0
        return self.busy_ps / (total_ps * self.n_channels)

    def reset_timing(self) -> None:
        """Clear all channel reservations."""
        self._channel_free_ps = [0] * self.n_channels
