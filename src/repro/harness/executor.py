"""Parallel sweep execution with a memoizing, content-addressed cache.

Every figure in the paper is a sweep — over core count, nominal
efficiency, technology node, or workload — and every point in such a
sweep is independent of the others.  :class:`SweepExecutor` exploits
that: it fans point evaluations out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (the simulator is pure
Python, so processes, not threads, are what buys wall-clock time) and
memoizes completed points in a content-addressed on-disk cache so that
re-running a campaign only evaluates points whose configuration changed.

Three guarantees the experiment pipelines rely on:

* **Determinism** — results come back in input order with input indices,
  regardless of process completion order, and a serial run (``jobs=1``)
  executes the exact same evaluation function, so parallel and serial
  campaigns are bitwise identical.
* **Per-point error capture** — a :class:`~repro.errors.ReproError`
  raised by one point (most commonly
  :class:`~repro.errors.InfeasibleOperatingPoint`) does not kill the
  campaign; it is recorded as a typed :class:`SweepFailure` row in that
  point's :class:`PointOutcome`.  Non-library exceptions still
  propagate — they indicate bugs, not infeasible physics.
* **Cache safety** — cache keys are SHA-256 digests of the point's
  canonicalised configuration plus the store's
  :data:`~repro.harness.schema.SCHEMA_VERSION`, so mutating a point's
  config or bumping the schema invalidates exactly the affected entries;
  a corrupted or truncated cache file is quarantined (renamed aside) and
  the point recomputed, never a crash.

The cache persists one JSON document per point, the same
schema-tagged layout as :mod:`repro.harness.store` uses for whole
campaigns; values must be flat (possibly nested) dataclasses of
JSON-representable leaves, which all the harness row types are.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, ReproError
from repro.harness.schema import SCHEMA_VERSION
from repro.telemetry.record import (
    PointTelemetry,
    begin_point_capture,
    end_point_capture,
)
from repro.telemetry.trace import get_tracer, now_us

PathLike = Union[str, Path]

#: Marker key of the executor's JSON value encoding.
_KIND = "__repro__"


# ---------------------------------------------------------------------------
# Value codec: dataclasses / tuples / dicts <-> plain JSON.
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode a result value into plain JSON-serialisable data.

    Supports JSON scalars, lists, tuples, string-keyed dicts, and
    dataclass instances (recursively).  Dataclasses are tagged with
    their importable dotted path so :func:`decode_value` can rebuild
    them without a central registry.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _KIND: "dataclass",
            "type": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(cls)
            },
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        items = []
        for key, entry in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cannot cache dict with non-string key {key!r}"
                )
            items.append([key, encode_value(entry)])
        return {_KIND: "dict", "items": items}
    raise ConfigurationError(f"cannot cache value of type {type(value).__name__}")


def _resolve_dataclass(dotted: str) -> type:
    """Import the dataclass named by an encoded ``module.QualName`` path."""
    if not isinstance(dotted, str) or not dotted.startswith("repro."):
        raise ConfigurationError(f"refusing to import cached type {dotted!r}")
    module_name, _, qualname = dotted.rpartition(".")
    # Qualnames may nest (``Outer.Inner``); walk from the module down.
    parts = qualname.split(".")
    while True:
        try:
            obj: Any = importlib.import_module(module_name)
            break
        except ModuleNotFoundError:
            module_name, _, head = module_name.rpartition(".")
            if not module_name:
                raise ConfigurationError(f"unknown cached type {dotted!r}")
            parts.insert(0, head)
    for part in parts:
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise ConfigurationError(f"cached type {dotted!r} is not a dataclass")
    return obj


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [decode_value(v) for v in encoded]
    if isinstance(encoded, dict):
        kind = encoded.get(_KIND)
        if kind == "tuple":
            return tuple(decode_value(v) for v in encoded["items"])
        if kind == "dict":
            return {key: decode_value(v) for key, v in encoded["items"]}
        if kind == "dataclass":
            cls = _resolve_dataclass(encoded["type"])
            fields = encoded["fields"]
            names = {f.name for f in dataclasses.fields(cls)}
            if set(fields) != names:
                raise ConfigurationError(
                    f"cached {encoded['type']} fields {sorted(fields)} do not "
                    "match the current dataclass"
                )
            return cls(**{name: decode_value(v) for name, v in fields.items()})
        raise ConfigurationError(f"malformed cache value: {encoded!r}")
    raise ConfigurationError(f"malformed cache value: {encoded!r}")


def _canonical(value: Any) -> Any:
    """Like :func:`encode_value` but order-normalised for stable hashing."""
    encoded = encode_value(value)

    def normalise(node: Any) -> Any:
        if isinstance(node, dict):
            if node.get(_KIND) == "dict":
                return {
                    _KIND: "dict",
                    "items": sorted(
                        [[k, normalise(v)] for k, v in node["items"]]
                    ),
                }
            return {key: normalise(v) for key, v in node.items()}
        if isinstance(node, list):
            return [normalise(v) for v in node]
        return node

    return normalise(encoded)


def config_key(config: Any, schema_version: Optional[int] = None) -> str:
    """Stable content hash of a point configuration.

    The digest covers the canonicalised config (dataclass type names,
    field names, and values — floats via their shortest ``repr``) plus
    the schema version, so either kind of change yields a new key.
    """
    version = SCHEMA_VERSION if schema_version is None else schema_version
    document = {"schema": version, "config": _canonical(config)}
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Outcomes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepFailure:
    """A typed per-point failure (the campaign itself carries on)."""

    error_type: str
    message: str

    def to_exception(self) -> ReproError:
        """Rebuild the original library exception (best effort)."""
        import repro.errors as errors_module

        cls = getattr(errors_module, self.error_type, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            return cls(self.message)
        return ReproError(f"{self.error_type}: {self.message}")


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's result: its value or its typed failure."""

    index: int
    key: Optional[str]
    value: Any
    failure: Optional[SweepFailure] = None
    cached: bool = False
    #: What the evaluation reported about itself: evaluating pid, wall
    #: time, per-run kernel stats, span trees.  For cached outcomes this
    #: is the *original* evaluation's telemetry, replayed from the cache.
    telemetry: Optional[PointTelemetry] = None

    @property
    def ok(self) -> bool:
        """Whether the point evaluated successfully."""
        return self.failure is None

    def unwrap(self) -> Any:
        """The value; re-raises the point's library error if it failed."""
        if self.failure is not None:
            raise self.failure.to_exception()
        return self.value


# ---------------------------------------------------------------------------
# The content-addressed cache.
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters one :class:`ResultCache` accumulates over its lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0

    def summary(self) -> str:
        """One human-readable line (printed under ``--profile``)."""
        line = (
            f"[cache] {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores"
        )
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        return line


@dataclass(frozen=True)
class _CachedResult:
    value: Any
    failure: Optional[SweepFailure]
    telemetry: Optional[PointTelemetry] = None


class ResultCache:
    """One-JSON-file-per-point persistence keyed by content hash.

    The layout is flat: ``<root>/<sha256>.json``, each file a
    schema-tagged document like the campaign store's.  Files that fail
    to parse or validate are *quarantined* — renamed to
    ``*.quarantined`` so the evidence survives — and treated as misses.
    """

    def __init__(
        self, root: PathLike, schema_version: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.root} as a cache directory: {exc}"
            ) from exc
        self.schema_version = (
            SCHEMA_VERSION if schema_version is None else schema_version
        )
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk location of one cache entry."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[_CachedResult]:
        """Look one key up; ``None`` on miss (including quarantined files)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return None
        try:
            document = json.loads(text)
            if not isinstance(document, dict):
                raise ConfigurationError(f"{path}: not a cache document")
            if document.get("schema") != self.schema_version:
                raise ConfigurationError(
                    f"{path}: schema {document.get('schema')!r} != "
                    f"supported {self.schema_version}"
                )
            if document.get("key") != key:
                raise ConfigurationError(f"{path}: key mismatch")
            telemetry = None
            if "telemetry" in document:
                telemetry = decode_value(document["telemetry"])
                if telemetry is not None and not isinstance(
                    telemetry, PointTelemetry
                ):
                    raise ConfigurationError(f"{path}: malformed telemetry")
            status = document.get("status")
            if status == "ok":
                result = _CachedResult(
                    value=decode_value(document["value"]),
                    failure=None,
                    telemetry=telemetry,
                )
            elif status == "error":
                error = document["error"]
                result = _CachedResult(
                    value=None,
                    failure=SweepFailure(
                        error_type=str(error["type"]),
                        message=str(error["message"]),
                    ),
                    telemetry=telemetry,
                )
            else:
                raise ConfigurationError(f"{path}: unknown status {status!r}")
        except (ConfigurationError, ValueError, KeyError, TypeError,
                AttributeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, outcome: PointOutcome) -> None:
        """Persist one evaluated point (success or typed failure).

        The point's :class:`~repro.telemetry.record.PointTelemetry`
        rides along, so a warm-cache rerun can still account for the
        original evaluation's kernel stats.
        """
        document = {"schema": self.schema_version, "key": key}
        if outcome.failure is None:
            document["status"] = "ok"
            document["value"] = encode_value(outcome.value)
        else:
            document["status"] = "error"
            document["error"] = {
                "type": outcome.failure.error_type,
                "message": outcome.failure.message,
            }
        if outcome.telemetry is not None:
            # Spans are stripped: replaying stale span timestamps into a
            # later run's trace would be misleading; kernel records are
            # what warm-cache profile accounting needs.
            document["telemetry"] = encode_value(
                dataclasses.replace(outcome.telemetry, spans=())
            )
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1

    def _quarantine(self, path: Path) -> None:
        try:
            path.rename(path.with_name(path.name + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.quarantined += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# The executor.
# ---------------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Counters one :class:`SweepExecutor` accumulates across ``map`` calls."""

    evaluated: int = 0
    cache_hits: int = 0
    failures: int = 0
    uncacheable: int = 0

    def summary(self) -> str:
        """One human-readable line (printed under ``--profile``)."""
        line = (
            f"[executor] {self.evaluated} evaluated, "
            f"{self.cache_hits} cache hits, {self.failures} failures"
        )
        if self.uncacheable:
            line += f", {self.uncacheable} uncacheable"
        return line


@dataclass(frozen=True)
class _PointCall:
    """Picklable wrapper that turns library errors into typed results.

    Each call is bracketed by a telemetry capture window: the kernel
    stats of every simulation the point runs, plus any span trees the
    evaluating process completed, come back with the status tuple as a
    :class:`~repro.telemetry.record.PointTelemetry` — the outcome
    channel that makes worker- and cache-side profiling visible to the
    coordinator.
    """

    fn: Callable[[Any], Any]

    def __call__(self, point: Any):
        begin_point_capture()
        start_us = now_us()
        start = time.perf_counter()
        try:
            status = ("ok", self.fn(point))
        except ReproError as exc:
            status = ("error", type(exc).__name__, str(exc))
        wall_s = time.perf_counter() - start
        telemetry = PointTelemetry(
            pid=os.getpid(),
            start_us=start_us,
            wall_s=wall_s,
            kernels=end_point_capture(),
            spans=tuple(get_tracer().drain_records()),
        )
        return status + (telemetry,)


class SweepExecutor:
    """Evaluate independent sweep points, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) evaluates inline in the
        calling process — no pool, no pickling — which is also the
        reference semantics the parallel path must match bitwise.
    cache:
        Optional :class:`ResultCache`.  Points are only memoized when the
        caller also supplies ``key_configs`` (it alone knows which inputs
        determine a point's value).
    chunksize:
        Points per pickled work batch; defaults to roughly four batches
        per worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize
        self.stats = ExecutorStats()
        #: Optional :class:`~repro.telemetry.manifest.TelemetryRun`; when
        #: set, every outcome is logged to its events/spans JSONL files.
        self.telemetry_run = None
        #: Per-point telemetry awaiting :meth:`fold_telemetry_into`
        #: (``(telemetry, cached)`` pairs, accumulated across ``map`` calls).
        self._telemetry_log: List[Tuple[PointTelemetry, bool]] = []

    def map(
        self,
        fn: Callable[[Any], Any],
        points: Iterable[Any],
        key_configs: Optional[Iterable[Any]] = None,
    ) -> List[PointOutcome]:
        """Evaluate ``fn`` over ``points``; outcomes in input order.

        ``fn`` must be picklable for ``jobs > 1`` (a module-level
        function or a :func:`functools.partial` of one).  ``key_configs``
        — one hashable config per point — opts the call into the cache.
        """
        point_list = list(points)
        keys: List[Optional[str]] = [None] * len(point_list)
        use_cache = self.cache is not None and key_configs is not None
        if key_configs is not None:
            config_list = list(key_configs)
            if len(config_list) != len(point_list):
                raise ConfigurationError(
                    f"{len(config_list)} key configs for "
                    f"{len(point_list)} points"
                )
            if use_cache:
                keys = [
                    config_key(config, self.cache.schema_version)
                    for config in config_list
                ]

        outcomes: List[Optional[PointOutcome]] = [None] * len(point_list)
        pending: List[int] = []
        for index in range(len(point_list)):
            if use_cache:
                entry = self.cache.get(keys[index])
                if entry is not None:
                    outcomes[index] = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=entry.value,
                        failure=entry.failure,
                        cached=True,
                        telemetry=entry.telemetry,
                    )
                    self.stats.cache_hits += 1
                    if entry.failure is not None:
                        self.stats.failures += 1
                    if entry.telemetry is not None:
                        self._telemetry_log.append((entry.telemetry, True))
                    continue
            pending.append(index)

        if pending:
            call = _PointCall(fn)
            todo = [point_list[i] for i in pending]
            if self.jobs == 1 or len(pending) == 1:
                raw = [call(point) for point in todo]
            else:
                workers = min(self.jobs, len(pending))
                chunk = self.chunksize or max(
                    1, len(pending) // (workers * 4)
                )
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    raw = list(pool.map(call, todo, chunksize=chunk))
            for index, result in zip(pending, raw):
                self.stats.evaluated += 1
                telemetry = result[-1]
                if result[0] == "ok":
                    outcome = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=result[1],
                        telemetry=telemetry,
                    )
                else:
                    outcome = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=None,
                        failure=SweepFailure(
                            error_type=result[1], message=result[2]
                        ),
                        telemetry=telemetry,
                    )
                    self.stats.failures += 1
                if telemetry is not None:
                    self._telemetry_log.append((telemetry, False))
                if use_cache:
                    try:
                        self.cache.put(keys[index], outcome)
                    except ConfigurationError:
                        self.stats.uncacheable += 1
                outcomes[index] = outcome
        if self.telemetry_run is not None:
            for outcome in outcomes:
                self.telemetry_run.record_point(outcome)
        return outcomes  # type: ignore[return-value]

    def fold_telemetry_into(self, aggregate) -> None:
        """Fold collected kernel records into a ``KernelAggregate``.

        The coordinator's :class:`~repro.harness.context.ExperimentContext`
        already logs simulations it ran in-process, so this folds only
        the two sources it cannot see — worker-process evaluations and
        cache replays (added as *cached runs*) — and drains the log so
        repeated calls never double-count.
        """
        own_pid = os.getpid()
        drained, self._telemetry_log = self._telemetry_log, []
        for telemetry, cached in drained:
            if cached:
                for kernel in telemetry.kernels:
                    aggregate.add_record(kernel, cached=True)
            elif telemetry.pid != own_pid:
                for kernel in telemetry.kernels:
                    aggregate.add_record(kernel)

    def map_values(
        self,
        fn: Callable[[Any], Any],
        points: Iterable[Any],
        key_configs: Optional[Iterable[Any]] = None,
    ) -> List[Any]:
        """Like :meth:`map` but unwraps values, re-raising any failure."""
        return [o.unwrap() for o in self.map(fn, points, key_configs)]
