"""Process-technology nodes and the alpha-power-law DVFS relation.

The paper's analytical model (Section 2.1) rests on Eq. 1, the alpha-power
law [Sakurai-Newton, via Mudge 31]::

    f_max(V) = k * (V - Vth)^alpha / V

with ``alpha`` and ``k`` experimentally derived constants.  We use
``alpha = 1.5`` (the value commonly attributed to [31]) and calibrate ``k``
so that the nominal supply voltage yields the node's nominal frequency.

Node constants follow the paper where it quotes them (Table 1 gives the
65 nm point: 1.1 V nominal, 0.18 V threshold, 3.2 GHz) and ITRS-typical
values elsewhere.  The key *relative* property the paper leans on is that
the 65 nm node attributes a substantially larger fraction of total power to
static (leakage) power than the 130 nm node does [19]; that fraction is
captured by :attr:`TechnologyNode.static_fraction_nominal`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError, InfeasibleOperatingPoint
from repro.units import GIGA


@dataclass(frozen=True)
class TechnologyNode:
    """Constants describing one CMOS process technology node.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"65nm"``.
    feature_nm:
        Feature size in nanometres.
    vdd_nominal:
        Nominal supply voltage ``V1`` (volts).
    vth:
        Threshold voltage (volts).
    f_nominal:
        Nominal (maximum) clock frequency at ``vdd_nominal`` (hertz).
    alpha:
        Velocity-saturation exponent of the alpha-power law.
    static_fraction_nominal:
        Fraction of *total* chip power that is static at nominal V/f and
        the 100 C design-point temperature.  ITRS data gives roughly 0.15
        at 130 nm and 0.35 at 65 nm; the paper's Fig. 2 discussion hinges
        on 65 nm having the higher static share.
    noise_margin_factor:
        The supply voltage may not scale below
        ``noise_margin_factor * vth`` (the paper cites ITRS noise-margin
        guidance; 2x the threshold voltage is the conventional floor).
    """

    name: str
    feature_nm: float
    vdd_nominal: float
    vth: float
    f_nominal: float
    alpha: float = 1.5
    static_fraction_nominal: float = 0.25
    noise_margin_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.vth <= 0 or self.vdd_nominal <= self.vth:
            raise ConfigurationError(
                f"{self.name}: need 0 < vth < vdd_nominal, got "
                f"vth={self.vth}, vdd={self.vdd_nominal}"
            )
        if self.v_min >= self.vdd_nominal:
            raise ConfigurationError(
                f"{self.name}: voltage floor {self.v_min:.3f} V is not below "
                f"nominal {self.vdd_nominal:.3f} V"
            )
        if not 0.0 < self.static_fraction_nominal < 1.0:
            raise ConfigurationError(
                f"{self.name}: static_fraction_nominal must be in (0, 1)"
            )

    @property
    def v_min(self) -> float:
        """Lowest legal supply voltage (noise-margin floor)."""
        return self.noise_margin_factor * self.vth

    @property
    def _alpha_law_k(self) -> float:
        """Calibration constant of Eq. 1 so f_max(V1) = f1."""
        v1 = self.vdd_nominal
        return self.f_nominal * v1 / (v1 - self.vth) ** self.alpha

    def fmax(self, v: float) -> float:
        """Maximum operating frequency at supply voltage ``v`` (Eq. 1)."""
        if v <= self.vth:
            raise InfeasibleOperatingPoint(
                f"{self.name}: supply {v:.3f} V is at or below threshold "
                f"{self.vth:.3f} V"
            )
        return self._alpha_law_k * (v - self.vth) ** self.alpha / v

    def frequency_scale(self, v: float) -> float:
        """``f_max(v) / f_nominal`` — the Eq. 10 frequency ratio."""
        return self.fmax(v) / self.f_nominal

    def voltage_for_frequency(self, f: float, *, allow_floor: bool = True) -> float:
        """Invert Eq. 1: minimum supply voltage able to sustain ``f``.

        ``f`` must not exceed the nominal frequency (the models never
        overclock).  If ``f`` is sustainable at the voltage floor, the floor
        is returned when ``allow_floor`` is true; otherwise the exact
        (lower) solution would violate the noise margin and
        :class:`InfeasibleOperatingPoint` is raised.
        """
        if f <= 0:
            raise InfeasibleOperatingPoint(f"frequency must be positive, got {f}")
        if f > self.f_nominal * (1 + 1e-12):
            raise InfeasibleOperatingPoint(
                f"{self.name}: {f / GIGA:.3f} GHz exceeds nominal "
                f"{self.f_nominal / GIGA:.3f} GHz"
            )
        if f >= self.fmax(self.v_min):
            # Bisection on the monotonically increasing f_max(V).
            lo, hi = self.v_min, self.vdd_nominal
            for _ in range(200):
                mid = 0.5 * (lo + hi)
                if self.fmax(mid) < f:
                    lo = mid
                else:
                    hi = mid
            return hi
        if allow_floor:
            return self.v_min
        raise InfeasibleOperatingPoint(
            f"{self.name}: {f / GIGA:.3f} GHz is sustainable below the "
            f"{self.v_min:.3f} V noise-margin floor"
        )

    def legal_voltage(self, v: float) -> bool:
        """Whether ``v`` lies within [v_min, vdd_nominal]."""
        return self.v_min - 1e-12 <= v <= self.vdd_nominal + 1e-12


@dataclass(frozen=True)
class VFTable:
    """A discrete table of (frequency, voltage) operating points.

    The experimental study (Section 3.1) extrapolates supply voltages from
    the Intel Pentium M datasheet [18] rather than the closed-form alpha-power
    law; this class plays that role.  ``points`` must be sorted by frequency.
    Lookups between grid points interpolate linearly, matching the paper's
    "configuration values that fall between any two profiled values are
    approximated by linearly scaling between the two".
    """

    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigurationError("VFTable needs at least two points")
        freqs = [f for f, _ in self.points]
        volts = [v for _, v in self.points]
        if sorted(freqs) != freqs or len(set(freqs)) != len(freqs):
            raise ConfigurationError("VFTable frequencies must be strictly increasing")
        if any(v2 < v1 - 1e-12 for v1, v2 in zip(volts, volts[1:])):
            raise ConfigurationError("VFTable voltages must be non-decreasing")

    @property
    def f_min(self) -> float:
        """Lowest frequency in the table."""
        return self.points[0][0]

    @property
    def f_max(self) -> float:
        """Highest frequency in the table."""
        return self.points[-1][0]

    def voltage_for_frequency(self, f: float) -> float:
        """Supply voltage for frequency ``f``, linearly interpolated."""
        if not self.f_min - 1e-6 <= f <= self.f_max * (1 + 1e-12):
            raise InfeasibleOperatingPoint(
                f"{f / GIGA:.3f} GHz outside table range "
                f"[{self.f_min / GIGA:.3f}, {self.f_max / GIGA:.3f}] GHz"
            )
        freqs = [p[0] for p in self.points]
        idx = bisect.bisect_left(freqs, f)
        if idx == 0:
            return self.points[0][1]
        if idx >= len(self.points):
            return self.points[-1][1]
        f_lo, v_lo = self.points[idx - 1]
        f_hi, v_hi = self.points[idx]
        if math.isclose(f, f_hi):
            return v_hi
        t = (f - f_lo) / (f_hi - f_lo)
        return v_lo + t * (v_hi - v_lo)

    @classmethod
    def from_technology(
        cls,
        tech: TechnologyNode,
        *,
        f_min: float,
        f_max: float,
        step: float,
    ) -> "VFTable":
        """Synthesise a datasheet-style table from the alpha-power law.

        Frequencies run from ``f_min`` to ``f_max`` in increments of
        ``step``; each voltage is the minimum legal supply for that
        frequency (clamped at the noise-margin floor, like real datasheet
        tables that bottom out at a minimum VID).
        """
        if step <= 0 or f_min <= 0 or f_max < f_min:
            raise ConfigurationError("need 0 < f_min <= f_max and step > 0")
        points = []
        f = f_min
        while f <= f_max * (1 + 1e-9):
            points.append((min(f, f_max), tech.voltage_for_frequency(min(f, f_max))))
            f += step
        if points[-1][0] < f_max * (1 - 1e-9):
            points.append((f_max, tech.voltage_for_frequency(f_max)))
        return cls(points=tuple(points))

    @classmethod
    def linear(
        cls,
        tech: TechnologyNode,
        *,
        f_min: float,
        f_max: float,
        step: float,
    ) -> "VFTable":
        """A datasheet-style table with voltage linear in frequency.

        Real operating-point tables (the Pentium M datasheet [18] the
        paper extrapolates from) run the VID roughly linearly from a
        minimum voltage at the lowest ratio to nominal at the top bin —
        much steeper at mid frequencies than the alpha-power-law minimum.
        The minimum voltage is the technology's noise-margin floor.
        """
        if step <= 0 or f_min <= 0 or f_max < f_min:
            raise ConfigurationError("need 0 < f_min <= f_max and step > 0")
        v_lo, v_hi = tech.v_min, tech.vdd_nominal
        points = []
        f = f_min
        while f <= f_max * (1 + 1e-9):
            f_point = min(f, f_max)
            t = (f_point - f_min) / (f_max - f_min) if f_max > f_min else 1.0
            points.append((f_point, v_lo + t * (v_hi - v_lo)))
            f += step
        if points[-1][0] < f_max * (1 - 1e-9):
            points.append((f_max, v_hi))
        return cls(points=tuple(points))


#: The 130 nm node of Figures 1-2 (ITRS-typical constants; 1.6 GHz keeps the
#: EV6 frequency-scaling rule of Section 3.1 consistent across nodes).
#: The 0.32 V threshold narrows the voltage-scaling range enough that the
#: Scenario II speedup peaks "a little over 4", as the paper reports.
NODE_130NM = TechnologyNode(
    name="130nm",
    feature_nm=130.0,
    vdd_nominal=1.3,
    vth=0.32,
    f_nominal=1.6e9,
    static_fraction_nominal=0.25,
)

#: The 65 nm node of Table 1: 1.1 V / 0.18 V / 3.2 GHz.  ITRS attributes a
#: larger static share at this node (Section 2.3), and its short-channel
#: devices need a proportionally higher noise-margin floor (~0.6 V, about
#: half the nominal supply, as in contemporary low-voltage datasheets);
#: together these make its budget-constrained speedup peak lower and
#: collapse earlier than 130 nm's, as in Figure 2.
NODE_65NM = TechnologyNode(
    name="65nm",
    feature_nm=65.0,
    vdd_nominal=1.1,
    vth=0.18,
    f_nominal=3.2e9,
    static_fraction_nominal=0.35,
    noise_margin_factor=3.4,
)

#: A projected 32 nm node used only by the ablation benchmarks (the paper
#: stops at 65 nm); leakage share keeps growing with scaling, and the
#: minimum operating voltage stops scaling with Vth (SRAM Vmin holds near
#: 0.6 V), so the usable voltage range collapses — the dark-silicon trend
#: the paper foreshadows.
NODE_32NM_PROJECTED = TechnologyNode(
    name="32nm",
    feature_nm=32.0,
    vdd_nominal=0.9,
    vth=0.15,
    f_nominal=4.8e9,
    static_fraction_nominal=0.55,
    noise_margin_factor=4.0,
)

_NODES = {node.name: node for node in (NODE_130NM, NODE_65NM, NODE_32NM_PROJECTED)}


def technology_by_name(name: str) -> TechnologyNode:
    """Look up one of the built-in technology nodes by name."""
    try:
        return _NODES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown technology {name!r}; known: {sorted(_NODES)}"
        ) from None
