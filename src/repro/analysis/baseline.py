"""Committed finding baseline: the analyzer's ratchet.

The gate is *zero findings beyond the baseline*, not zero findings: a
finding can be suppressed inline (``# repro: allow[...]``) where the
code is right and the rule is wrong, or recorded here where the debt
is real but not this PR's job.  The baseline is committed
(``analysis/baseline.json``) so the debt is visible in review, and
``repro check --update-baseline`` rewrites it from the current tree —
CI runs that and fails on drift, so the file can never go stale
silently.

Identity is the finding's :attr:`~repro.analysis.findings.Finding.key`
(rule + path + message — deliberately line-insensitive, so unrelated
edits that shift code do not invalidate entries) with a per-key count:
three baselined ``DET-SET-ORDER`` findings in one file allow exactly
three; a fourth is new.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.analysis.findings import Finding
from repro.errors import ConfigurationError

BASELINE_SCHEMA = "repro-analysis-baseline-v1"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding identity with its allowed count."""

    key: str
    count: int
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "count": self.count, "reason": self.reason}


@dataclass(frozen=True)
class Baseline:
    """The committed set of accepted findings."""

    entries: Tuple[BaselineEntry, ...] = ()

    def allowance(self) -> Dict[str, int]:
        """Allowed occurrence count per finding key."""
        allowed: Dict[str, int] = {}
        for entry in self.entries:
            allowed[entry.key] = allowed.get(entry.key, 0) + entry.count
        return allowed

    def reasons(self) -> Dict[str, str]:
        """Recorded reason per key (first non-empty wins)."""
        reasons: Dict[str, str] = {}
        for entry in self.entries:
            if entry.key not in reasons or not reasons[entry.key]:
                reasons[entry.key] = entry.reason
        return reasons

    def new_findings(self, findings: Iterable[Finding]) -> List[Finding]:
        """Findings beyond this baseline's allowance, sorted.

        For each key the first ``count`` occurrences (in sorted order)
        are absorbed; the rest are new.
        """
        allowed = self.allowance()
        new: List[Finding] = []
        for finding in sorted(findings):
            remaining = allowed.get(finding.key, 0)
            if remaining > 0:
                allowed[finding.key] = remaining - 1
            else:
                new.append(finding)
        return new

    def stale_keys(self, findings: Iterable[Finding]) -> List[str]:
        """Baseline keys no longer matched by any live finding, sorted.

        Stale entries mean the debt was paid; ``--update-baseline``
        removes them, and CI's drift check makes sure that happens.
        """
        live: Dict[str, int] = {}
        for finding in findings:
            live[finding.key] = live.get(finding.key, 0) + 1
        stale: List[str] = []
        for key, count in sorted(self.allowance().items()):
            if live.get(key, 0) < count:
                stale.append(key)
        return stale


def baseline_from_findings(
    findings: Iterable[Finding], previous: "Baseline" = Baseline()
) -> Baseline:
    """A fresh baseline covering exactly ``findings``.

    Reasons recorded in ``previous`` carry over for keys that survive;
    new keys get an empty reason for a human to fill in.
    """
    reasons = previous.reasons()
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.key] = counts.get(finding.key, 0) + 1
    entries = tuple(
        BaselineEntry(key=key, count=count, reason=reasons.get(key, ""))
        for key, count in sorted(counts.items())
    )
    return Baseline(entries=entries)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"unreadable baseline {path}: {exc}") from exc
    return baseline_from_document(document, source=str(path))


def baseline_from_document(
    document: Mapping[str, Any], source: str = "<document>"
) -> Baseline:
    """Parse the JSON document form produced by :func:`save_baseline`."""
    if not isinstance(document, Mapping):
        raise ConfigurationError(f"{source}: baseline must be a JSON object")
    schema = document.get("schema")
    if schema != BASELINE_SCHEMA:
        raise ConfigurationError(
            f"{source}: unknown baseline schema {schema!r} "
            f"(expected {BASELINE_SCHEMA!r})"
        )
    raw_entries = document.get("entries", [])
    if not isinstance(raw_entries, list):
        raise ConfigurationError(f"{source}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for raw in raw_entries:
        try:
            entry = BaselineEntry(
                key=str(raw["key"]),
                count=int(raw["count"]),
                reason=str(raw.get("reason", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{source}: malformed baseline entry {raw!r}"
            ) from exc
        if entry.count < 1:
            raise ConfigurationError(
                f"{source}: entry {entry.key!r} has non-positive count"
            )
        entries.append(entry)
    return Baseline(entries=tuple(sorted(entries, key=lambda e: e.key)))


def save_baseline(baseline: Baseline, path: Path) -> None:
    """Write ``baseline`` as deterministic, diff-friendly JSON."""
    document = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            entry.to_dict()
            for entry in sorted(baseline.entries, key=lambda e: e.key)
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
