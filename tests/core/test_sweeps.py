"""Tests for the Figure 1 / Figure 2 sweep helpers."""

import pytest

from repro.core import AnalyticalChipModel, figure1_sweep, figure2_sweep
from repro.core.sweeps import FIGURE1_CORE_COUNTS
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module")
def chip_130():
    return AnalyticalChipModel(NODE_130NM)


@pytest.fixture(scope="module")
def chip_65():
    return AnalyticalChipModel(NODE_65NM)


@pytest.fixture(scope="module")
def fig1_130(chip_130):
    return figure1_sweep(chip_130, efficiency_points=21)


class TestFigure1Sweep:
    def test_one_curve_per_core_count(self, fig1_130):
        assert [c.n for c in fig1_130] == list(FIGURE1_CORE_COUNTS)

    def test_infeasible_left_edge_blank(self, fig1_130):
        for curve in fig1_130:
            # Feasible efficiencies satisfy N * eps >= 1.
            assert all(curve.n * eps >= 1.0 - 1e-9 for eps in curve.efficiencies)

    def test_curves_decreasing_in_efficiency(self, fig1_130):
        for curve in fig1_130:
            powers = curve.normalized_power
            assert all(b <= a + 1e-9 for a, b in zip(powers, powers[1:])), curve.n

    def test_sample_marks_present_for_feasible_n(self, fig1_130):
        # The sample app has N*eps >= 1 for every Figure-1 N:
        # 2*0.9, 4*0.8, 8*0.65, 16*0.5, 32*extrapolated.
        marked = [c.n for c in fig1_130 if c.sample_mark is not None]
        assert set(marked) >= {2, 4, 8, 16}

    def test_sample_marks_lie_near_curves(self, fig1_130):
        for curve in fig1_130:
            if curve.sample_mark is None:
                continue
            eps, power = curve.sample_mark
            assert 0 < eps <= 1.0
            assert power > 0

    def test_technology_label(self, fig1_130):
        assert all(c.technology == "130nm" for c in fig1_130)


class TestFigure2Sweep:
    def test_interior_peak(self, chip_130):
        curve = figure2_sweep(chip_130)
        n_peak, s_peak = curve.peak()
        assert 1 < n_peak < max(curve.core_counts)
        assert s_peak > 1.0

    def test_65nm_curve_below_130nm_beyond_peak(self, chip_130, chip_65):
        c130 = figure2_sweep(chip_130)
        c65 = figure2_sweep(chip_65)
        map130 = dict(zip(c130.core_counts, c130.speedups))
        map65 = dict(zip(c65.core_counts, c65.speedups))
        for n in (10, 12, 16):
            assert map65[n] < map130[n]

    def test_regimes_ordered(self, chip_130):
        curve = figure2_sweep(chip_130)
        order = {"nominal": 0, "voltage-scaling": 1, "frequency-only": 2}
        ranks = [order[r] for r in curve.regimes]
        assert ranks == sorted(ranks)

    def test_starts_at_one_core_unity(self, chip_130):
        curve = figure2_sweep(chip_130)
        assert curve.core_counts[0] == 1
        assert curve.speedups[0] == pytest.approx(1.0)
