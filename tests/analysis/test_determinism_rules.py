"""DET-* rules: positives in the seeded fixtures, negatives in the ok ones."""

from repro.analysis.determinism import DEFAULT_SCOPE, in_scope

from tests.analysis.conftest import findings_for

BAD = "sim/bad_determinism.py"
OK = "sim/ok_determinism.py"


def test_wallclock_reads_flagged(fixture_report):
    found = findings_for(fixture_report, "DET-WALLCLOCK", BAD)
    assert len(found) == 3
    assert {f.severity for f in found} == {"error"}
    messages = " ".join(f.message for f in found)
    assert "time" in messages and "perf_counter" in messages


def test_random_draws_flagged(fixture_report):
    found = findings_for(fixture_report, "DET-RANDOM", BAD)
    assert len(found) == 2
    assert any("random.random" in f.message for f in found)
    assert any("unseeded random.Random()" in f.message for f in found)


def test_set_iteration_flagged(fixture_report):
    found = findings_for(fixture_report, "DET-SET-ORDER", BAD)
    assert len(found) == 2  # annotated parameter + set-literal local


def test_float_sums_flagged(fixture_report):
    found = findings_for(fixture_report, "DET-FLOAT-SUM", BAD)
    assert len(found) == 2
    reasons = " ".join(f.message for f in found)
    assert "a set" in reasons and "dict view" in reasons


def test_clean_idioms_not_flagged(fixture_report):
    assert not [f for f in fixture_report.findings if f.path == OK]


def test_telemetry_is_out_of_scope(fixture_report):
    assert not [
        f for f in fixture_report.findings if f.path.startswith("telemetry/")
    ]


def test_scope_predicate():
    assert in_scope("sim/cpu.py")
    assert in_scope("power/wattch.py")
    assert in_scope("thermal/hotspot.py")
    assert in_scope("workloads/trace.py")
    assert not in_scope("harness/executor.py")
    assert not in_scope("telemetry/trace.py")
    assert not in_scope("harness/profiling.py")
    assert DEFAULT_SCOPE == ("sim/", "power/", "thermal/", "workloads/")


def test_findings_carry_locations(fixture_report):
    for finding in findings_for(fixture_report, "DET-WALLCLOCK", BAD):
        assert finding.line > 0
        assert finding.location == f"{BAD}:{finding.line}"
        assert finding.snippet  # the offending source line travels along
