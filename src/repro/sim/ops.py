"""Operation encoding shared between workload models and the simulator.

Workload threads are lazy streams of tuples; the first element selects
the kind:

* ``(OP_COMPUTE, n_instructions)`` — a burst of ALU/branch work,
* ``(OP_LOAD, byte_address)`` — one data-cache read,
* ``(OP_STORE, byte_address)`` — one data-cache write,
* ``(OP_BARRIER, barrier_index)`` — global barrier (indices must be
  issued in the same order by every thread),
* ``(OP_CRITICAL, lock_id, n_instructions, byte_address)`` — a critical
  section: acquire the lock, run the burst, read-modify-write the
  protected address, release.

Plain tuples (rather than dataclasses) keep the per-op cost low — the
simulator consumes hundreds of thousands of these per run.

Compiled op streams
-------------------
Generating a stream is itself expensive (the synthetic models draw from
seeded RNGs per op; traces parse text), and a V/f sweep re-simulates the
*same* stream at every operating point.  :func:`compile_stream`
materializes a stream once into a flat list, run-length-merging runs of
adjacent ``OP_COMPUTE`` bursts into a single *fused* op

    ``(OP_COMPUTE, total_instructions, (n1, n2, ...))``

that the simulator dispatches in one step.  Fusion is bitwise-exact: the
executor charges a fused burst the *sum of the per-segment rounded
durations*, which is precisely what interpreting the segments one by one
would cost, for any clock and core timing (see
:meth:`repro.sim.cpu.Core` and the fast-path invariant in
docs/MODEL.md).

:func:`compile_workload` compiles every thread of a workload model and
memoizes the result in a process-wide :class:`OpStreamCache` keyed by
the model's ``compile_key(n_threads)`` (workload identity x thread
count), so repeated simulations of one workload at different V/f points
skip generation and parsing entirely.  Streams are clock-independent,
which is what makes the cache key V/f-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.trace import get_tracer

OP_COMPUTE = 0
OP_LOAD = 1
OP_STORE = 2
OP_BARRIER = 3
OP_CRITICAL = 4


# repro: hot
def compile_stream(ops: Iterable[tuple]) -> List[tuple]:
    """Materialize one thread's op stream, fusing adjacent compute bursts.

    Runs of consecutive ``OP_COMPUTE`` ops become one fused 3-tuple
    ``(OP_COMPUTE, total, segments)``; singletons stay plain 2-tuples.
    Already-fused input ops are re-fused (compilation is idempotent).
    All other ops pass through unchanged.
    """
    compiled: List[tuple] = []
    append = compiled.append
    segments: List[int] = []

    # repro: allow[HOT-ALLOC] one closure per stream compile, not per op
    def flush() -> None:
        if not segments:
            return
        if len(segments) == 1:
            append((OP_COMPUTE, segments[0]))
        else:
            append((OP_COMPUTE, sum(segments), tuple(segments)))
        segments.clear()

    for op in ops:
        if op[0] == OP_COMPUTE:
            if len(op) >= 3:
                segments.extend(op[2])
            else:
                segments.append(op[1])
        else:
            flush()
            append(op)
    flush()
    return compiled


# repro: hot
def classify_private_lines(
    streams: Sequence[List[tuple]], line_shift: int
) -> List[FrozenSet[int]]:
    """Per-thread sets of *provably private* line addresses.

    A line is private to thread ``t`` iff every data access to it —
    loads, stores, and critical-section read-modify-writes — across the
    whole workload comes from ``t``.  The fast path may resolve L1 hits
    on private lines inline regardless of the scheduler horizon: no
    other core ever demand-accesses the line, so no peer transaction
    can invalidate, downgrade, or observe it (the proof obligation is
    spelled out in docs/MODEL.md §3.2).  Anything double-counted —
    including false-sharing-style overlap where threads touch different
    bytes of one line — is shared-visible for every thread.

    Classification is at line granularity, so it depends on the L1's
    ``line_shift``; :meth:`CompiledProgram.private_lines` memoizes per
    shift.
    """
    owner: Dict[int, int] = {}
    for tid, stream in enumerate(streams):
        for op in stream:
            kind = op[0]
            if kind == OP_LOAD or kind == OP_STORE:
                line = op[1] >> line_shift
            elif kind == OP_CRITICAL:
                line = op[3] >> line_shift
            else:
                continue
            prev = owner.get(line)
            if prev is None:
                owner[line] = tid
            elif prev != tid:
                owner[line] = -1
    private: List[set] = [set() for _ in streams]
    for line, tid in owner.items():
        if tid >= 0:
            private[tid].add(line)
    return [frozenset(s) for s in private]


# repro: hot
def resolve_address_streams(
    streams: Sequence[List[tuple]],
    line_shift: int,
    n_sets: int,
    way_shift: int,
) -> List[List[tuple]]:
    """Geometry-resolved copies of ``streams`` for the fast-path kernel.

    Loads and stores gain their L1 line address and flat set base,
    precomputed once per cache geometry —
    ``(kind, byte_address, line, set_base)`` — so the hot loop indexes
    the flat tag array directly instead of doing shift/mod arithmetic
    per op.  Every other op kind passes through unchanged, and the byte
    address stays at index 1, which is all the slow-path replay reads.
    """
    resolved = []
    for ops in streams:
        out = []
        append = out.append
        for op in ops:
            kind = op[0]
            if kind == OP_LOAD or kind == OP_STORE:
                line = op[1] >> line_shift
                append((kind, op[1], line, (line % n_sets) << way_shift))
            else:
                append(op)
        resolved.append(out)
    return resolved


# repro: hot
def stream_op_count(stream: List[tuple]) -> int:
    """Number of *source* ops a compiled stream represents.

    Fused compute bursts count one op per original segment, so the count
    matches what the reference interpreter would execute.
    """
    count = 0
    for op in stream:
        if op[0] == OP_COMPUTE and len(op) >= 3:
            count += len(op[2])
        else:
            count += 1
    return count


@dataclass
class CompiledProgram:
    """Every thread of one workload, compiled to flat op lists."""

    streams: List[List[tuple]]
    #: Source-op count across all threads (fused segments counted
    #: individually, matching the reference interpreter's op count).
    total_ops: int
    #: Compiled (post-fusion) op count across all threads.
    compiled_ops: int
    #: Per-``line_shift`` memo of :func:`classify_private_lines` (the
    #: shift is machine-dependent while compiled streams are not, so the
    #: memo lives beside the streams rather than in the cache key).
    _private_lines: Dict[int, List[FrozenSet[int]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Per-geometry memo of :func:`resolve_address_streams`.  One entry
    #: per distinct L1 geometry — DVFS sweeps share it, since operating
    #: points change clocks, never cache geometry.
    _resolved: Dict[Tuple[int, int, int], List[List[tuple]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def n_threads(self) -> int:
        """Number of per-thread streams."""
        return len(self.streams)

    def private_lines(self, line_shift: int) -> List[FrozenSet[int]]:
        """Per-thread provably-private line sets at ``line_shift``."""
        cached = self._private_lines.get(line_shift)
        if cached is None:
            cached = classify_private_lines(self.streams, line_shift)
            self._private_lines[line_shift] = cached
        return cached

    def resolved_streams(
        self, line_shift: int, n_sets: int, way_shift: int
    ) -> List[List[tuple]]:
        """Geometry-resolved streams (memoized per L1 geometry)."""
        key = (line_shift, n_sets, way_shift)
        cached = self._resolved.get(key)
        if cached is None:
            cached = resolve_address_streams(
                self.streams, line_shift, n_sets, way_shift
            )
            self._resolved[key] = cached
        return cached


@dataclass
class CompileOutcome:
    """One :func:`compile_workload` call's result and provenance."""

    program: CompiledProgram
    #: True when the program came from the cache (warm compile).
    from_cache: bool
    #: Wall-clock seconds this call spent compiling (0 on a cache hit).
    seconds: float
    #: True when storing this program evicted another cached one (the
    #: bounded cache was full) — the telemetry signal that a campaign's
    #: working set exceeds ``OpStreamCache.maxsize``.
    evicted: bool = False


class OpStreamCache:
    """Bounded in-memory LRU cache of compiled programs.

    Keys are whatever a workload's ``compile_key(n_threads)`` returns —
    any hashable value that changes iff the generated streams change.
    Compiled programs are immutable by convention (the simulator never
    mutates a stream), so one cached program may back many concurrent
    simulations in a process.

    The cache is bounded (LRU eviction at ``maxsize`` entries) so long
    ``characterize`` campaigns cannot grow the process-wide cache
    without limit, and instrumented: ``hits``/``misses``/``evictions``
    count over the cache's lifetime and are surfaced per run through
    :class:`repro.sim.cmp.KernelStats`.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._programs: Dict[Hashable, CompiledProgram] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._programs)

    def get(self, key: Hashable) -> Optional[CompiledProgram]:
        """The cached program for ``key``, refreshing its LRU position."""
        program = self._programs.get(key)
        if program is None:
            self.misses += 1
            return None
        self.hits += 1
        del self._programs[key]
        self._programs[key] = program
        return program

    def put(self, key: Hashable, program: CompiledProgram) -> bool:
        """Insert a program, evicting the least recently used if full.

        Returns True when an older program was evicted to make room.
        """
        evicted = False
        if key in self._programs:
            del self._programs[key]
        elif len(self._programs) >= self.maxsize:
            del self._programs[next(iter(self._programs))]
            self.evictions += 1
            evicted = True
        self._programs[key] = program
        return evicted

    def seed(self, key: Hashable, program: CompiledProgram) -> None:
        """Insert without counting: executor warm-up of worker caches."""
        self.put(key, program)

    def export_entries(self) -> List[tuple]:
        """``(key, program)`` pairs, LRU first (executor warm-up)."""
        return list(self._programs.items())

    def stats(self) -> Dict[str, int]:
        """Lifetime counters and current occupancy (one dict, for logs)."""
        return {
            "size": len(self._programs),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop every cached program (keeps hit/miss counters)."""
        self._programs.clear()


#: The process-wide compile cache :func:`compile_workload` consults.
stream_cache = OpStreamCache()


def compile_workload(
    model,
    n_threads: int,
    cache: Optional[OpStreamCache] = stream_cache,
) -> CompileOutcome:
    """Compile (or fetch) every thread stream of ``model`` at ``n_threads``.

    ``model`` follows the informal workload protocol
    (``thread_ops(tid, n)``); if it also provides ``compile_key(n)``
    returning a hashable key, the compiled program is memoized in
    ``cache``.  Models without a key (or ``cache=None``) compile fresh
    on every call.
    """
    key = None
    if cache is not None and hasattr(model, "compile_key"):
        key = model.compile_key(n_threads)
    if key is not None:
        program = cache.get(key)
        if program is not None:
            return CompileOutcome(program=program, from_cache=True, seconds=0.0)

    with get_tracer().span(
        "workload.compile",
        workload=getattr(model, "name", type(model).__name__),
        threads=n_threads,
    ) as span:
        # repro: allow[DET-WALLCLOCK] compile-time span timing; never feeds simulated state
        start = time.perf_counter()
        streams = [
            compile_stream(model.thread_ops(t, n_threads))
            for t in range(n_threads)
        ]
        program = CompiledProgram(
            streams=streams,
            total_ops=sum(stream_op_count(s) for s in streams),
            compiled_ops=sum(len(s) for s in streams),
        )
        # repro: allow[DET-WALLCLOCK] compile-time span timing; never feeds simulated state
        seconds = time.perf_counter() - start
        span.set(ops=program.total_ops, compiled_ops=program.compiled_ops)
    evicted = False
    if key is not None:
        evicted = cache.put(key, program)
    return CompileOutcome(
        program=program, from_cache=False, seconds=seconds, evicted=evicted
    )
