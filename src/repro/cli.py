"""Command-line interface: regenerate the paper's figures from a shell.

Installed behaviours (also reachable via ``python -m repro``):

* ``repro fig1 [--tech 130nm|65nm]`` — analytical Scenario I sweep,
* ``repro fig2 [--tech ...]`` — analytical Scenario II speedup curve,
* ``repro fig3 [--apps ...] [--scale X]`` — experimental Scenario I,
* ``repro fig4 [--apps ...] [--scale X]`` — experimental Scenario II,
* ``repro optimize [--objective ...]`` — adaptive coarse-to-fine search
  over the (N, frequency) design space (see docs/MODEL.md); ``fig3``
  and ``fig4`` accept ``--adaptive`` to route through the same engine,
* ``repro characterize [--scale X]`` — workload-model signatures,
* ``repro info`` — machine configuration (Table 1) and suite (Table 2).

The experimental commands accept ``--scale`` to trade run length for
fidelity (1.0 = the calibrated default run length).

The sweep-shaped commands (``fig1``–``fig4``, ``characterize``) also
accept ``--jobs N`` to fan independent sweep points out over N worker
processes, and ``--cache DIR`` to memoize completed points on disk so a
re-run only simulates points whose configuration changed
(``--no-cache`` disables a configured cache for one invocation).

They are also fault tolerant: ``--max-retries N`` re-attempts points
whose failure was transient (a crashed worker, a timeout, an escaped
exception) with exponential backoff before quarantining them,
``--point-timeout S`` bounds each attempt's wall clock, and a cached
sweep journals its progress so ``--resume RUN_ID`` (or ``--resume
latest``) picks an interrupted campaign back up, replaying finished
points from the cache and re-attempting only quarantined or missing
ones — bitwise identical to an uninterrupted run.  See
docs/OBSERVABILITY.md for the failure model.

Every sweep accepts ``--profile`` to print executor/cache statistics
(and, for the experimental sweeps, how the simulation kernel performed:
ops/sec, fast-path hit ratio, per-subsystem slow-path time) and
``--telemetry-dir DIR`` to record a structured run manifest, per-point
JSONL events, and span traces under ``DIR/<run_id>/`` (see
docs/OBSERVABILITY.md).  ``repro trace export|metrics|validate`` reads
those artifacts back: ``export`` writes Chrome ``trace_event`` JSON for
chrome://tracing / Perfetto, ``metrics`` prints a per-phase wall-time
table, ``validate`` checks a run against the manifest schema.

``repro check`` runs the static invariant analyzer over the source tree
(determinism, SI units, hot-path discipline, picklability — see
docs/ANALYSIS.md) and exits non-zero on findings beyond the committed
baseline; ``--update-baseline`` rewrites ``analysis/baseline.json``
from the current tree.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core import AnalyticalChipModel, figure1_sweep, figure2_sweep
from repro.harness import render_table
from repro.tech import technology_by_name
from repro.units import GIGA


def _add_tech_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tech",
        default="65nm",
        choices=("130nm", "65nm", "32nm"),
        help="process technology node (default: 65nm)",
    )


def _add_scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload run-length scale, 1.0 = full (default: 0.25)",
    )


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for independent sweep points (default: 1)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="memoize completed sweep points in DIR (default: no cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache for this invocation (recompute everything)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help=(
            "resume an interrupted sweep: replay the journalled points "
            "of RUN_ID from the cache and evaluate only the rest "
            "(requires --cache; 'latest' picks the newest journal)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help=(
            "re-attempt a point whose failure is transient (worker "
            "crash, timeout, escaped exception) up to N times with "
            "exponential backoff, then quarantine it (default: 0)"
        ),
    )
    parser.add_argument(
        "--point-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-point wall-clock deadline; an attempt exceeding it is "
            "killed and counts as a transient failure (default: none)"
        ),
    )
    parser.add_argument(
        "--inject-faults",
        default=None,
        metavar="SPEC",
        # Hidden: the deterministic chaos plane exists for tests and CI
        # rehearsals, not everyday sweeps.
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        metavar="DIR",
        help=(
            "record a run manifest, per-point events, and span traces "
            "under DIR/<run_id>/ (default: no telemetry)"
        ),
    )


def _executor_from_args(args, telemetry_run=None, command: str = "sweep"):
    from repro.errors import ConfigurationError
    from repro.harness.executor import ResultCache, RetryPolicy, SweepExecutor
    from repro.harness.faults import parse_fault_plan
    from repro.harness.journal import SweepJournal, list_run_ids

    cache = None
    if args.cache and not args.no_cache:
        cache = ResultCache(args.cache)

    resume_id = getattr(args, "resume", None)
    if resume_id is not None and cache is None:
        print(
            f"{command}: --resume requires --cache (the cache holds the "
            "completed points a resumed run replays)",
            file=sys.stderr,
        )
        raise SystemExit(2)

    retry = None
    if args.max_retries or args.point_timeout is not None:
        retry = RetryPolicy(
            max_retries=args.max_retries, point_timeout_s=args.point_timeout
        )
    fault_plan = None
    if getattr(args, "inject_faults", None):
        try:
            fault_plan = parse_fault_plan(args.inject_faults)
        except ConfigurationError as exc:
            print(f"{command}: --inject-faults: {exc}", file=sys.stderr)
            raise SystemExit(2)
        if retry is None:
            # Injection without an explicit budget still gets retries —
            # a chaos rehearsal that aborts on its first fault tests
            # nothing.
            retry = RetryPolicy(max_retries=2)

    journal = None
    if cache is not None:
        try:
            if resume_id is not None:
                if resume_id == "latest":
                    known = list_run_ids(cache.root)
                    if not known:
                        print(
                            f"{command}: --resume latest: no journalled "
                            f"runs under {cache.root}",
                            file=sys.stderr,
                        )
                        raise SystemExit(2)
                    resume_id = known[-1]
                journal = SweepJournal(
                    cache.root, resume_id, command=command, resume=True
                )
                done = journal.counts()
                print(
                    f"[journal] resuming run {journal.run_id}: "
                    f"{done['ok']} ok, {done['failed']} failed points "
                    "journalled",
                    file=sys.stderr,
                )
                if telemetry_run is not None:
                    telemetry_run.set_resume(
                        journal.run_id, len(journal.completed)
                    )
            else:
                run_id = telemetry_run.run_id if telemetry_run else None
                journal = SweepJournal(cache.root, run_id, command=command)
                print(
                    f"[journal] run {journal.run_id} "
                    f"(resume with --resume {journal.run_id})",
                    file=sys.stderr,
                )
        except ConfigurationError as exc:
            print(f"{command}: {exc}", file=sys.stderr)
            raise SystemExit(2)

    if telemetry_run is not None and fault_plan is not None:
        telemetry_run.set_fault_plan(fault_plan.describe())

    executor = SweepExecutor(
        jobs=args.jobs,
        cache=cache,
        retry=retry,
        fault_plan=fault_plan,
        journal=journal,
    )
    executor.telemetry_run = telemetry_run
    return executor


def _telemetry_run_from_args(args, command: str):
    """Enable tracing and open a run directory when ``--telemetry-dir`` is set.

    Tracing and counter sampling must be on before the worker pool forks
    so the children inherit the enabled tracer and sampler (and with
    them the shared wall-clock anchor).
    """
    if not getattr(args, "telemetry_dir", None):
        return None
    from repro.telemetry import TelemetryRun, enable_sampling, enable_tracing

    enable_tracing()
    enable_sampling()
    return TelemetryRun(
        args.telemetry_dir, command=command, argv=list(sys.argv[1:])
    )


def _finalize_telemetry(telemetry_run, executor) -> None:
    if telemetry_run is None:
        return
    telemetry_run.finalize(executor=executor)
    print(f"[telemetry] run {telemetry_run.run_id}: {telemetry_run.directory}")


def _print_executor_summary(executor, args=None) -> None:
    stats = executor.stats
    if getattr(args, "profile", False):
        print(stats.summary())
        if executor.cache is not None:
            print(executor.cache.stats.summary())
    elif executor.cache is not None or stats.failures:
        print(
            f"[executor] {stats.evaluated} evaluated, "
            f"{stats.cache_hits} cache hits, {stats.failures} failures"
        )
    quarantined = getattr(stats, "quarantined", 0)
    if quarantined:
        # Degraded mode: the sweep completed, but some points exhausted
        # their retry budget.  Say which, and how to pick them back up.
        journal = getattr(executor, "journal", None)
        hint = (
            f"rerun with --resume {journal.run_id} to retry them"
            if journal is not None
            else "rerun with --cache and --resume to retry them"
        )
        print(f"[quarantine] {quarantined} point(s) failed after retries; {hint}")
        for outcome in executor.failed:
            failure = outcome.failure
            if failure is not None and failure.retryable:
                print(
                    f"  point {outcome.index}: {failure.error_type}: "
                    f"{failure.message} ({outcome.attempts} attempts)"
                )


def _close_journal(executor) -> None:
    journal = getattr(executor, "journal", None)
    if journal is not None:
        journal.close()


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print simulation-kernel profiling (ops/sec, fast-path hit "
            "ratio, per-subsystem time) after the sweep"
        ),
    )


def _print_kernel_summary(context, args, executor=None) -> None:
    if getattr(args, "profile", False):
        if executor is not None:
            # Pull worker-process and cache-replay kernel records into
            # the context's aggregate so the summary covers parallel and
            # warm-cache sweeps, not just in-process simulations.
            executor.fold_telemetry_into(context.kernel_log)
        print(context.kernel_log.summary())


def _add_apps_argument(parser: argparse.ArgumentParser, default: Sequence[str]) -> None:
    parser.add_argument(
        "--apps",
        nargs="+",
        default=list(default),
        help=f"applications to run (default: {' '.join(default)})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Li & Martinez, 'Power-Performance Implications "
            "of Thread-level Parallelism on Chip Multiprocessors' (ISPASS 2005)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    fig1 = commands.add_parser("fig1", help="analytical Figure 1")
    _add_tech_argument(fig1)
    _add_executor_arguments(fig1)
    _add_profile_argument(fig1)

    fig2 = commands.add_parser("fig2", help="analytical Figure 2")
    _add_tech_argument(fig2)
    _add_executor_arguments(fig2)
    _add_profile_argument(fig2)

    fig3 = commands.add_parser("fig3", help="experimental Figure 3")
    _add_apps_argument(fig3, ("FMM", "LU", "Ocean", "Cholesky", "Radix"))
    _add_scale_argument(fig3)
    fig3.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "search each (app, N) operating point with the coarse-to-fine "
            "optimizer (measured min-power at iso-performance) instead of "
            "the Eq. 7 formula"
        ),
    )
    _add_executor_arguments(fig3)
    _add_profile_argument(fig3)

    fig4 = commands.add_parser("fig4", help="experimental Figure 4")
    _add_apps_argument(fig4, ("FMM", "Cholesky", "Radix"))
    _add_scale_argument(fig4)
    fig4.add_argument(
        "--adaptive",
        action="store_true",
        help=(
            "locate each (app, N) budget point with the coarse-to-fine "
            "optimizer (same grid optimum, fewer simulations, plus the "
            "interpolated budget boundary)"
        ),
    )
    _add_executor_arguments(fig4)
    _add_profile_argument(fig4)

    optimize = commands.add_parser(
        "optimize", help="adaptive (N, f) design-space search"
    )
    _add_apps_argument(optimize, ("FMM", "Cholesky", "Radix"))
    optimize.add_argument(
        "--objective",
        default="speedup-budget",
        choices=("edp", "ed2p", "power-iso", "speedup-budget"),
        help=(
            "what to optimize per (app, N): min power at iso-performance, "
            "max speedup under the power budget, or min EDP/ED2P "
            "(default: speedup-budget)"
        ),
    )
    optimize.add_argument(
        "--budget",
        type=_positive_float,
        default=None,
        metavar="WATTS",
        help=(
            "power budget for speedup-budget (default: the calibrated "
            "1-core maximum operational power)"
        ),
    )
    optimize.add_argument(
        "--cores",
        nargs="+",
        type=_positive_int,
        default=[1, 2, 4, 8, 16],
        metavar="N",
        help="core counts to search (default: 1 2 4 8 16)",
    )
    optimize.add_argument(
        "--exhaustive",
        action="store_true",
        help=(
            "evaluate the full frequency ladder instead of refining — "
            "the reference the adaptive search provably matches"
        ),
    )
    optimize.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help="save the chosen rows as an 'optimizer' group in FILE",
    )
    _add_scale_argument(optimize)
    _add_executor_arguments(optimize)
    _add_profile_argument(optimize)

    characterize = commands.add_parser(
        "characterize", help="workload-model signatures"
    )
    _add_scale_argument(characterize)
    _add_executor_arguments(characterize)
    _add_profile_argument(characterize)

    commands.add_parser("info", help="machine and suite summary")

    trace = commands.add_parser(
        "trace", help="inspect recorded telemetry runs"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    for name, help_text in (
        ("export", "write Chrome trace_event JSON for chrome://tracing"),
        ("metrics", "print per-phase span counts and wall time"),
        ("timeline", "render sampled counter channels as sparklines"),
        ("validate", "check a run directory against the manifest schema"),
    ):
        sub = trace_commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--telemetry-dir",
            required=True,
            metavar="DIR",
            help="telemetry directory a sweep wrote runs into",
        )
        sub.add_argument(
            "--run",
            default=None,
            metavar="RUN_ID",
            help="run to read (default: the newest run in DIR)",
        )
        if name == "export":
            sub.add_argument(
                "--output",
                default="trace.json",
                help="output file (default: trace.json)",
            )
        if name == "timeline":
            sub.add_argument(
                "--channel",
                action="append",
                default=None,
                metavar="NAME",
                help="channel to render (repeatable; default: all sampled)",
            )
            sub.add_argument(
                "--width",
                type=int,
                default=60,
                help="sparkline width in characters (default: 60)",
            )

    report = commands.add_parser(
        "report", help="run everything and write a markdown report"
    )
    _add_scale_argument(report)
    report.add_argument(
        "--output",
        default="repro_report.md",
        help="output file (default: repro_report.md)",
    )
    report.add_argument(
        "--analytical-only",
        action="store_true",
        help="skip the (slower) experimental pipelines",
    )

    check = commands.add_parser(
        "check", help="static invariant analysis (see docs/ANALYSIS.md)"
    )
    check.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="source tree to analyze (default: the installed repro package)",
    )
    check.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    check.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "gate only findings on lines changed since REF "
            "(default ref: HEAD); analysis still covers the whole tree"
        ),
    )
    check.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    check.add_argument(
        "--rule",
        action="append",
        default=[],
        metavar="RULE-ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    check.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file (default: analysis/baseline.json next to src/)",
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding is new",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id with its severity and summary",
    )

    verify = commands.add_parser(
        "verify", help="self-check the reproduction's claims"
    )
    verify.add_argument(
        "--analytical-only",
        action="store_true",
        help="skip the (slower) experimental checks",
    )
    verify.add_argument(
        "--scale",
        type=float,
        default=0.15,
        help="workload scale for the experimental checks (default: 0.15)",
    )
    return parser


def _cmd_fig1(args) -> int:
    chip = AnalyticalChipModel(technology_by_name(args.tech))
    telemetry_run = _telemetry_run_from_args(args, "fig1")
    executor = _executor_from_args(args, telemetry_run, "fig1")
    try:
        curves = figure1_sweep(chip, efficiency_points=41, executor=executor)
        rows = []
        for curve in curves:
            pairs = list(zip(curve.efficiencies, curve.normalized_power))
            for eps, power in pairs:
                if round(eps * 100) % 10 == 0:  # print a decile grid
                    rows.append([curve.n, eps, power])
        print(
            render_table(
                ["N", "eps_n", "P_N / P_1"],
                rows,
                title=f"Figure 1 ({args.tech}): normalized power at iso-performance",
            )
        )
        _print_executor_summary(executor, args)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _cmd_fig2(args) -> int:
    chip = AnalyticalChipModel(technology_by_name(args.tech))
    telemetry_run = _telemetry_run_from_args(args, "fig2")
    executor = _executor_from_args(args, telemetry_run, "fig2")
    try:
        curve = figure2_sweep(chip, executor=executor)
        print(
            render_table(
                ["N", "speedup", "regime"],
                list(zip(curve.core_counts, curve.speedups, curve.regimes)),
                title=f"Figure 2 ({args.tech}): speedup under the 1-core power budget",
            )
        )
        n_peak, s_peak = curve.peak()
        print(f"peak: {s_peak:.2f}x at N = {n_peak}")
        _print_executor_summary(executor, args)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _experimental_context(scale: float, profile: bool = False):
    from repro.harness import ExperimentContext

    print("building experiment context (calibration microbenchmark)...")
    return ExperimentContext(workload_scale=scale, profile=profile)


def _set_context_fingerprint(telemetry_run, context) -> None:
    if telemetry_run is None:
        return
    from repro.harness.executor import config_key

    telemetry_run.set_context_fingerprint(config_key(context.fingerprint()))


def _cmd_fig3(args) -> int:
    from repro.harness import run_scenario1
    from repro.workloads import workload_by_name

    telemetry_run = _telemetry_run_from_args(args, "fig3")
    context = _experimental_context(args.scale, args.profile)
    _set_context_fingerprint(telemetry_run, context)
    executor = _executor_from_args(args, telemetry_run, "fig3")
    try:
        models = [workload_by_name(app) for app in args.apps]
        if args.adaptive:
            return _adaptive_figure(
                args,
                context,
                executor,
                models,
                objective="power-iso",
                core_counts=(1, 2, 4, 8, 16),
                title="Figure 3 (adaptive): min power at iso-performance",
            )
        results = run_scenario1(context, models, executor=executor)
        rows = [
            [
                app,
                r.n,
                r.nominal_efficiency,
                r.actual_speedup,
                r.normalized_power,
                r.normalized_power_density,
                r.average_temperature_c,
            ]
            for app, app_rows in results.items()
            for r in app_rows
        ]
        print(
            render_table(
                ["app", "N", "eps_n", "speedup", "norm-P", "norm-dens", "T (C)"],
                rows,
                title="Figure 3: experimental Scenario I",
            )
        )
        _print_executor_summary(executor, args)
        _print_kernel_summary(context, args, executor)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _cmd_fig4(args) -> int:
    from repro.harness import run_scenario2
    from repro.workloads import workload_by_name

    telemetry_run = _telemetry_run_from_args(args, "fig4")
    context = _experimental_context(args.scale, args.profile)
    _set_context_fingerprint(telemetry_run, context)
    executor = _executor_from_args(args, telemetry_run, "fig4")
    try:
        models = [workload_by_name(app) for app in args.apps]
        if args.adaptive:
            return _adaptive_figure(
                args,
                context,
                executor,
                models,
                objective="speedup-budget",
                core_counts=(1, 2, 4, 8, 12, 16),
                title="Figure 4 (adaptive): speedup under the 1-core power budget",
            )
        results = run_scenario2(
            context, models, core_counts=(1, 2, 4, 8, 12, 16), executor=executor
        )
        rows = [
            [app, r.n, r.nominal_speedup, r.actual_speedup, r.frequency_hz / GIGA, r.power_w]
            for app, app_rows in results.items()
            for r in app_rows
        ]
        print(
            render_table(
                ["app", "N", "nominal", "actual", "f (GHz)", "P (W)"],
                rows,
                title="Figure 4: speedup under the 1-core power budget",
            )
        )
        _print_executor_summary(executor, args)
        _print_kernel_summary(context, args, executor)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _adaptive_figure(
    args, context, executor, models, objective, core_counts, title
) -> int:
    """Shared ``--adaptive`` path of fig3/fig4: optimize, then render.

    The chosen (N, frequency) points match the default pipelines'
    bitwise; the table adds the interpolated constraint boundary and
    the search prints its simulation accounting.
    """
    from repro.harness import run_optimizer

    campaign = run_optimizer(
        context,
        models,
        objective,
        core_counts=core_counts,
        executor=executor,
    )
    rows = [
        [
            r.app,
            r.n,
            r.frequency_hz / GIGA,
            r.f_interpolated_hz / GIGA,
            r.voltage,
            r.total_power_w,
            r.speedup,
            "yes" if r.feasible else "no",
        ]
        for r in campaign.rows
    ]
    print(
        render_table(
            ["app", "N", "f (GHz)", "f~ (GHz)", "V", "P (W)", "speedup", "feasible"],
            rows,
            title=title,
        )
    )
    print(campaign.summary())
    _print_skipped_searches(campaign)
    _print_executor_summary(executor, args)
    _print_kernel_summary(context, args, executor)
    return 0


def _print_skipped_searches(campaign) -> None:
    if campaign.skipped:
        skipped = ", ".join(f"{app}@N={n}" for app, n in campaign.skipped)
        print(f"[quarantine] skipped searches: {skipped}", file=sys.stderr)


def _cmd_optimize(args) -> int:
    from repro.harness import run_optimizer, save_results
    from repro.workloads import workload_by_name

    telemetry_run = _telemetry_run_from_args(args, "optimize")
    context = _experimental_context(args.scale, args.profile)
    _set_context_fingerprint(telemetry_run, context)
    executor = _executor_from_args(args, telemetry_run, "optimize")
    try:
        models = [workload_by_name(app) for app in args.apps]
        campaign = run_optimizer(
            context,
            models,
            args.objective,
            core_counts=tuple(args.cores),
            budget_w=args.budget,
            executor=executor,
            exhaustive=args.exhaustive,
        )
        rows = [
            [
                r.app,
                r.n,
                r.frequency_hz / GIGA,
                r.f_interpolated_hz / GIGA,
                r.voltage,
                r.total_power_w,
                r.speedup,
                r.metric,
                "yes" if r.feasible else "no",
            ]
            for r in campaign.rows
        ]
        print(
            render_table(
                [
                    "app",
                    "N",
                    "f (GHz)",
                    "f~ (GHz)",
                    "V",
                    "P (W)",
                    "speedup",
                    "metric",
                    "feasible",
                ],
                rows,
                title=f"Optimal (N, f) per application — objective {args.objective}",
            )
        )
        print(campaign.summary())
        _print_skipped_searches(campaign)
        if args.store:
            save_results({"optimizer": campaign.rows}, args.store)
            print(f"wrote {args.store} ({len(campaign.rows)} rows)")
        _print_executor_summary(executor, args)
        _print_kernel_summary(context, args, executor)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _cmd_characterize(args) -> int:
    from functools import partial

    from repro.harness.profiling import SimPointTask, sim_point_key, simulate_point
    from repro.workloads import SPLASH2

    telemetry_run = _telemetry_run_from_args(args, "characterize")
    context = _experimental_context(args.scale, args.profile)
    _set_context_fingerprint(telemetry_run, context)
    executor = _executor_from_args(args, telemetry_run, "characterize")
    try:
        # One flat fan-out over every (application, N) profiling point.
        tasks = [
            SimPointTask(spec=model.spec, n=n)
            for model in SPLASH2
            for n in (1, 16)
        ]
        points = executor.map_values(
            partial(simulate_point, context),
            tasks,
            key_configs=[sim_point_key(context, task) for task in tasks],
        )
        rows = []
        for index, model in enumerate(SPLASH2):
            one, sixteen = points[2 * index], points[2 * index + 1]
            rows.append(
                [
                    model.name,
                    one.average_cpi,
                    one.l1_miss_rate,
                    one.memory_stall_fraction,
                    one.execution_time_ps / (16 * sixteen.execution_time_ps),
                    one.total_power_w,
                ]
            )
        print(
            render_table(
                ["app", "CPI", "L1 miss", "mem-stall", "eps_n(16)", "P1 (W)"],
                rows,
                title="SPLASH-2 workload models at nominal V/f",
            )
        )
        _print_executor_summary(executor, args)
        _print_kernel_summary(context, args, executor)
        return 0
    finally:
        _close_journal(executor)
        _finalize_telemetry(telemetry_run, executor)


def _cmd_info(_args) -> int:
    from repro.area import CMPAreaModel
    from repro.workloads import SPLASH2

    area = CMPAreaModel()
    print(
        render_table(
            ["parameter", "value"],
            [
                ["CMP", "16-way EV6-class, 65 nm, 3.2 GHz, 1.1 V"],
                ["die", f"{area.die_area_mm2():.1f} mm^2"],
                ["L1", "64 KB / 64 B / 2-way, 2-cycle RT"],
                ["L2", "4 MB shared / 128 B / 8-way, 12-cycle RT"],
                ["memory", "75 ns RT, DVFS-independent"],
            ],
            title="Table 1 machine",
        )
    )
    print()
    print(
        render_table(
            ["application", "problem size"],
            [[m.name, m.spec.problem_size] for m in SPLASH2],
            title="Table 2 applications",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.errors import ConfigurationError
    from repro.telemetry import (
        export_chrome_trace,
        metrics_table,
        resolve_run_dir,
        validate_run_dir,
    )

    try:
        run_dir = resolve_run_dir(args.telemetry_dir, args.run)
        if args.trace_command == "export":
            document = export_chrome_trace(run_dir, args.output)
            print(
                f"wrote {args.output} "
                f"({len(document['traceEvents'])} trace events from {run_dir})"
            )
        elif args.trace_command == "metrics":
            print(metrics_table(run_dir))
        elif args.trace_command == "timeline":
            print(_render_timeline(run_dir, args.channel, args.width))
        else:  # validate
            summary = validate_run_dir(run_dir)
            line = (
                f"{run_dir}: OK — status {summary['manifest']['status']!r}, "
                f"{summary['points']} point events, {summary['spans']} spans, "
                f"{summary['samples']} timeline samples"
            )
            if summary["torn_samples"]:
                line += f" ({summary['torn_samples']} torn lines skipped)"
            print(line)
    except ConfigurationError as exc:
        print(f"trace {args.trace_command}: {exc}", file=sys.stderr)
        return 1
    return 0


def _render_timeline(run_dir, channels, width: int) -> str:
    """Sparklines plus alert findings for one run's sampled timeline."""
    from repro.errors import ConfigurationError
    from repro.harness.asciichart import sparkline
    from repro.telemetry import (
        evaluate_rules,
        load_manifest,
        load_timeline,
        stats_from_samples,
    )
    from repro.telemetry.timeseries import SampleRecord

    entries, torn = load_timeline(run_dir)
    samples = [
        SampleRecord.from_dict(entry)
        for entry in entries
        if isinstance(entry.get("channel"), str)
    ]
    if not samples:
        return f"{run_dir}: no timeline samples (was sampling enabled?)"
    grouped: dict = {}
    for record in samples:
        grouped.setdefault(record.channel, []).append(record.value)
    if channels:
        missing = [name for name in channels if name not in grouped]
        if missing:
            raise ConfigurationError(
                f"{run_dir}: no samples for channel(s) {', '.join(missing)}; "
                f"sampled: {', '.join(sorted(grouped))}"
            )
        grouped = {name: grouped[name] for name in channels}
    label_width = max(len(name) for name in grouped)
    lines = []
    for name in sorted(grouped):
        values = grouped[name]
        lines.append(
            f"{name.ljust(label_width)}  {sparkline(values, width=width)}  "
            f"[{min(values):.4g} .. {max(values):.4g}] n={len(values)}"
        )
    if torn:
        lines.append(f"({torn} torn timeline lines skipped)")

    manifest = load_manifest(run_dir)
    dropped = 0
    declared = manifest.get("timeline")
    if isinstance(declared, dict) and isinstance(declared.get("dropped"), int):
        dropped = declared["dropped"]
    findings = evaluate_rules(stats_from_samples(samples), dropped=dropped)
    if findings:
        lines.append("")
        lines.append("alerts:")
        for finding in findings:
            where = f" on {finding.channel}" if finding.channel else ""
            lines.append(
                f"  [{finding.rule}]{where}: {finding.message} "
                f"(observed {finding.value:.4g}, threshold {finding.threshold:.4g})"
            )
    else:
        lines.append("")
        lines.append("alerts: none fired")
    return "\n".join(lines)


def _cmd_report(args) -> int:
    from repro.harness.report import ReportOptions, generate_report

    options = ReportOptions(
        include_experimental=not args.analytical_only,
        workload_scale=args.scale,
    )
    document = generate_report(options)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(document)
    print(f"wrote {args.output} ({len(document.splitlines())} lines)")
    return 0


def _cmd_verify(args) -> int:
    from repro.validation import run_verification

    results = run_verification(
        include_experimental=not args.analytical_only, scale=args.scale
    )
    rows = [
        [
            "PASS" if r.passed else "FAIL",
            r.name,
            f"{r.seconds:.1f}s",
            r.detail,
        ]
        for r in results
    ]
    print(render_table(["status", "check", "time", "detail"], rows))
    failed = [r for r in results if not r.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} checks passed"
        + ("" if not failed else f"; FAILED: {', '.join(r.name for r in failed)}")
    )
    return 1 if failed else 0


def _cmd_check(args) -> int:
    # Imported lazily: the analyzer is a dev-facing subsystem and the
    # figure commands should not pay for it.
    import json
    from pathlib import Path

    from repro import analysis

    if args.list_rules:
        rows = [
            [rule.id, rule.family, rule.severity, rule.summary]
            for rule in analysis.RULES
        ]
        print(render_table(["rule", "family", "severity", "summary"], rows))
        return 0

    if args.root is not None:
        root = Path(args.root)
    else:
        root = Path(__file__).resolve().parent
    if not root.is_dir():
        print(f"error: analysis root {root} is not a directory", file=sys.stderr)
        return 2

    report = analysis.analyze_tree(
        analysis.AnalysisOptions(
            root=root, rules=tuple(r.upper() for r in args.rule)
        )
    )

    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = analysis.default_baseline_path(root)

    if args.update_baseline:
        previous = analysis.load_baseline(baseline_path)
        updated = analysis.baseline_from_findings(report.findings, previous)
        analysis.save_baseline(updated, baseline_path)
        print(
            f"wrote {baseline_path} ({len(updated.entries)} entries, "
            f"{len(report.findings)} findings)"
        )
        return 0

    if args.no_baseline:
        baseline = analysis.Baseline()
    else:
        baseline = analysis.load_baseline(baseline_path)
    new = baseline.new_findings(report.findings)
    stale = baseline.stale_keys(report.findings)

    gating_findings = list(new)
    gating_errors = list(report.errors)
    if args.changed is not None:
        try:
            changed = analysis.changed_lines(root, args.changed)
        except analysis.ChangedLinesError as exc:
            print(f"error: --changed: {exc}", file=sys.stderr)
            return 2
        gating_findings, gating_errors = analysis.gate_findings(
            new, report.errors, changed
        )

    def emit(text: str) -> None:
        if args.output is not None:
            Path(args.output).write_text(text, encoding="utf-8")
        else:
            print(text, end="" if text.endswith("\n") else "\n")

    if args.format == "json":
        document = report.to_document()
        document["new_count"] = len(new)
        document["new"] = [finding.to_dict() for finding in new]
        document["stale_baseline_keys"] = stale
        if args.changed is not None:
            document["changed_ref"] = args.changed
            document["gated_count"] = len(gating_findings)
            document["gated"] = [f.to_dict() for f in gating_findings]
        emit(json.dumps(document, indent=2, sort_keys=True) + "\n")
    elif args.format == "sarif":
        uri_prefix = ""
        try:
            uri_prefix = str(root.resolve().relative_to(Path.cwd().resolve()))
        except ValueError:
            pass
        if uri_prefix == ".":
            uri_prefix = ""
        document = analysis.to_sarif(report, new, uri_prefix=uri_prefix)
        emit(json.dumps(document, indent=2, sort_keys=True) + "\n")
    else:
        lines = analysis.format_text(report, new)
        extra: List[str] = []
        for key in stale:
            extra.append(
                f"stale baseline entry (debt paid — run --update-baseline): {key}"
            )
        if args.changed is not None:
            extra.append(
                f"--changed={args.changed}: {len(gating_findings)} gating "
                f"finding(s), {len(gating_errors)} parse error(s) on "
                "changed lines"
            )
        emit(lines + ("\n".join(extra) + "\n" if extra else ""))

    failed = bool(gating_findings) or bool(gating_errors)
    return 1 if failed else 0


_COMMANDS = {
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "optimize": _cmd_optimize,
    "characterize": _cmd_characterize,
    "info": _cmd_info,
    "trace": _cmd_trace,
    "check": _cmd_check,
    "report": _cmd_report,
    "verify": _cmd_verify,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
