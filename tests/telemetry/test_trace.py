"""Tests for the span/tracer core: nesting, timing, no-op, bounds."""

import time

import pytest

from repro.telemetry.trace import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    now_us,
    set_tracer,
    span,
)


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed process-wide, restored after."""
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


class TestDisabledTracer:
    def test_disabled_tracer_hands_out_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is NULL_SPAN and second is NULL_SPAN
        assert tracer.recorded == 0

    def test_null_span_is_inert(self):
        with NULL_SPAN as opened:
            opened.set(anything=1)
        assert opened is NULL_SPAN

    def test_module_tracer_is_disabled_by_default(self):
        assert span("anything") is NULL_SPAN

    def test_aggregate_on_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.aggregate("hot", 0.5, count=100)
        assert tracer.roots == [] and tracer.recorded == 0


class TestNesting:
    def test_spans_nest_into_a_tree(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        roots = tracer.take_roots()
        assert [r.name for r in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner.a", "inner.b"]
        assert outer.children == roots[0].children

    def test_sibling_roots_accumulate_in_order(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.take_roots()] == ["first", "second"]
        assert tracer.take_roots() == []  # drained

    def test_span_survives_exceptions_and_still_closes(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        (root,) = tracer.take_roots()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.end_ns >= root.start_ns


class TestTiming:
    def test_durations_are_monotone_and_contain_children(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                time.sleep(0.002)
        (outer,) = tracer.take_roots()
        (inner,) = outer.children
        assert inner.duration_s >= 0.002
        assert outer.duration_s >= inner.duration_s
        assert outer.start_ns <= inner.start_ns
        assert inner.end_ns <= outer.end_ns

    def test_now_us_tracks_the_wall_clock(self):
        assert abs(now_us() / 1e6 - time.time()) < 5.0

    def test_records_share_the_absolute_timebase(self, tracer):
        before = now_us()
        with tracer.span("timed"):
            pass
        after = now_us()
        (record,) = tracer.drain_records()
        assert before <= record.start_us <= after


class TestRecords:
    def test_record_flattens_args_and_children(self, tracer):
        with tracer.span("outer", mode="fast") as outer:
            outer.set(ops=42, obj=[1, 2])
            with tracer.span("inner"):
                pass
        (record,) = tracer.drain_records()
        args = dict(record.args)
        assert args["mode"] == "fast" and args["ops"] == 42
        assert args["obj"] == "[1, 2]"  # non-scalars are stringified
        assert record.children[0].name == "inner"

    def test_record_round_trips_through_dict(self, tracer):
        with tracer.span("outer", mode="fast"):
            with tracer.span("inner", n=3):
                pass
        (record,) = tracer.drain_records()
        assert SpanRecord.from_dict(record.to_dict()) == record

    def test_aggregate_spans_close_inside_the_open_parent(self, tracer):
        with tracer.span("window"):
            tracer.aggregate("slow_path.memory", 0.25, count=1000, sub="mem")
        (root,) = tracer.drain_records()
        (child,) = root.children
        args = dict(child.args)
        assert child.name == "slow_path.memory"
        assert args["aggregated"] is True
        assert args["count"] == 1000 and args["sub"] == "mem"
        assert child.duration_us == pytest.approx(0.25e6, rel=0.01)


class TestBounds:
    def test_max_spans_caps_recording_and_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        third = tracer.span("three")
        assert third is NULL_SPAN
        tracer.aggregate("four", 0.1)
        assert tracer.recorded == 2
        assert tracer.dropped == 2
        assert len(tracer.take_roots()) == 2

    def test_reset_clears_spans_and_counters(self):
        tracer = Tracer(enabled=True, max_spans=1)
        with tracer.span("one"):
            pass
        tracer.span("refused")
        tracer.reset()
        assert (tracer.recorded, tracer.dropped, tracer.roots) == (0, 0, [])
        with tracer.span("again"):
            pass
        assert len(tracer.take_roots()) == 1


class TestProcessWideSwitches:
    def test_enable_and_disable_swap_the_module_tracer(self):
        previous = get_tracer()
        try:
            enabled = enable_tracing(max_spans=7)
            assert get_tracer() is enabled
            assert enabled.enabled and enabled.max_spans == 7
            disable_tracing()
            assert not get_tracer().enabled
        finally:
            set_tracer(previous)
