"""The fast-path kernel's contract: bitwise-identical counters.

``Core.step_fast`` over compiled streams must reproduce every counter of
the reference interpreter (``Core.step`` over raw generator streams) —
not approximately, *identically*.  These tests run both kernels on the
same workloads across machine configurations and compare every field of
``SimulationResult``, ``CoreStats``, ``CoherenceStats``, the caches, the
interconnect, memory, locks, and barriers.
"""

from dataclasses import asdict

import pytest

from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_CRITICAL,
    OP_LOAD,
    OP_STORE,
    compile_stream,
    compile_workload,
)
from repro.workloads import SPLASH2, WorkloadModel
from repro.workloads.multiprogram import homogeneous_mix

#: Small but non-trivial run lengths: thousands of ops per thread.
SCALE = 0.05


def scaled(model, scale=SCALE):
    return WorkloadModel(model.spec.scaled(scale))


def counters(result):
    """Every simulated counter of one run, as one comparable value."""
    return {
        "execution_time_ps": result.execution_time_ps,
        "core_stats": [asdict(s) for s in result.core_stats],
        "coherence": asdict(result.coherence),
        "l1": [
            (c.hits, c.misses, c.evictions, c.writebacks)
            for c in result.l1_caches
        ],
        "l2": (
            result.l2.hits,
            result.l2.misses,
            result.l2.evictions,
            result.l2.writebacks,
        ),
        "bus": (
            result.bus.transactions,
            result.bus.data_transfers,
            result.bus.busy_ps,
            result.bus.wait_ps,
        ),
        "memory_requests": result.memory_requests,
        "locks": (result.lock_acquires, result.lock_contended),
        "barriers": result.barriers,
        "operating_points": result.core_operating_points,
    }


def assert_equivalent(model, n, config, core_points=None):
    """Reference on raw generators vs fast path on compiled streams."""
    timing = model.core_timing()
    warmup = model.warmup_barriers
    reference = ChipMultiprocessor(config, fast_path=False).run(
        [model.thread_ops(t, n) for t in range(n)],
        timing,
        warmup_barriers=warmup,
        core_operating_points=core_points,
    )
    compiled = compile_workload(model, n, cache=None)
    fast = ChipMultiprocessor(config, fast_path=True).run(
        compiled.program.streams,
        timing,
        warmup_barriers=warmup,
        core_operating_points=core_points,
    )
    assert counters(reference) == counters(fast)
    assert reference.kernel.total_ops == fast.kernel.total_ops
    return reference, fast


class TestAllBundledWorkloads:
    @pytest.mark.parametrize("model", SPLASH2, ids=lambda m: m.name)
    def test_identical_counters(self, model):
        assert_equivalent(scaled(model), 4, CMPConfig(n_cores=4))

    def test_multiprogrammed_mix(self):
        mix = homogeneous_mix(scaled(SPLASH2[0]), 4)
        assert_equivalent(mix, 4, CMPConfig(n_cores=4))


class TestConfigurationMatrix:
    """One miss-heavy and one compute-heavy app across machine knobs."""

    APPS = ("Ocean", "FMM")

    def _model(self, name):
        by_name = {m.name: m for m in SPLASH2}
        return scaled(by_name[name])

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("n", (1, 4))
    @pytest.mark.parametrize(
        "f_hz,v", ((3.2e9, 1.1), (800e6, 0.8)), ids=("nominal", "scaled-vf")
    )
    def test_core_count_and_vf(self, app, n, f_hz, v):
        config = CMPConfig(n_cores=n, frequency_hz=f_hz, voltage=v)
        assert_equivalent(self._model(app), n, config)

    @pytest.mark.parametrize("app", APPS)
    @pytest.mark.parametrize("interconnect", ("bus", "crossbar"))
    @pytest.mark.parametrize("barrier_sleep", (False, True))
    def test_interconnect_and_barrier_sleep(self, app, interconnect, barrier_sleep):
        config = CMPConfig(
            n_cores=4,
            interconnect=interconnect,
            barrier_sleep=barrier_sleep,
        )
        assert_equivalent(self._model(app), 4, config)

    def test_prefetcher_disables_load_short_circuit_not_equivalence(self):
        config = CMPConfig(n_cores=4, prefetch_next_line=True)
        _reference, fast = assert_equivalent(self._model("Ocean"), 4, config)
        # Stores may still short-circuit, so coverage stays non-zero.
        assert 0.0 < fast.kernel.fast_path_ratio < 1.0

    def test_percore_dvfs_points(self):
        config = CMPConfig(n_cores=4)
        points = [(3.2e9, 1.1), (1.6e9, 0.95), (2.4e9, 1.0), (3.2e9, 1.1)]
        assert_equivalent(self._model("FMM"), 4, config, core_points=points)

    def test_contended_sharing_respects_safe_horizon(self):
        # Regression case: Radix at a larger scale produces cross-core
        # invalidation races in which a peer's write miss lands between
        # a core's batched L1 hits in virtual time.  An unbounded batch
        # executes those hits too early and diverges; the safe-horizon
        # rule in ``step_fast`` must keep the interleaving exact.
        by_name = {m.name: m for m in SPLASH2}
        model = scaled(by_name["Radix"], 0.25)
        assert_equivalent(model, 4, CMPConfig(n_cores=4))


class TestHandAuthoredStreams:
    """Adjacent compute bursts (never emitted by the generator) fuse."""

    def _threads(self):
        shared = 0x1000
        t0 = [
            (OP_COMPUTE, 10),
            (OP_COMPUTE, 25),
            (OP_COMPUTE, 7),
            (OP_STORE, shared),
            (OP_BARRIER, 0),
            (OP_LOAD, shared),
            (OP_CRITICAL, 1, 12, 0x9000),
            (OP_COMPUTE, 3),
            (OP_COMPUTE, 3),
        ]
        t1 = [
            (OP_LOAD, shared),
            (OP_COMPUTE, 40),
            (OP_BARRIER, 0),
            (OP_STORE, shared),
            (OP_CRITICAL, 1, 9, 0x9000),
            (OP_COMPUTE, 6),
        ]
        return [t0, t1]

    def test_fusion_shrinks_stream(self):
        threads = self._threads()
        compiled = compile_stream(threads[0])
        assert len(compiled) < len(threads[0])
        assert compiled[0] == (OP_COMPUTE, 42, (10, 25, 7))

    def test_identical_counters(self):
        threads = self._threads()
        config = CMPConfig(n_cores=2)
        reference = ChipMultiprocessor(config, fast_path=False).run(
            [iter(t) for t in threads]
        )
        fast = ChipMultiprocessor(config, fast_path=True).run(
            [compile_stream(t) for t in threads]
        )
        assert counters(reference) == counters(fast)


class TestKernelStats:
    def test_fast_mode_reports_coverage(self):
        model = scaled(SPLASH2[0])
        compiled = compile_workload(model, 4, cache=None)
        result = ChipMultiprocessor(CMPConfig(n_cores=4)).run(
            compiled.program.streams,
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        kernel = result.kernel
        assert kernel.mode == "fast"
        assert kernel.total_ops == compiled.program.total_ops
        assert (
            kernel.fast_path_ops + kernel.slow_path_ops + kernel.barrier_ops
            == kernel.total_ops
        )
        assert kernel.fast_path_ratio > 0.5
        assert kernel.sim_wall_s > 0.0
        assert kernel.ops_per_sec > 0.0

    def test_reference_mode_reports_ops(self):
        model = scaled(SPLASH2[0])
        result = ChipMultiprocessor(
            CMPConfig(n_cores=2), fast_path=False
        ).run(
            [model.thread_ops(t, 2) for t in range(2)],
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        kernel = result.kernel
        assert kernel.mode == "reference"
        assert kernel.fast_path_ops == 0
        assert kernel.fast_path_ratio == 0.0
        assert kernel.total_ops > 0

    def test_profile_collects_subsystem_time(self):
        model = scaled(SPLASH2[0])
        compiled = compile_workload(model, 4, cache=None)
        result = ChipMultiprocessor(
            CMPConfig(n_cores=4), profile=True
        ).run(
            compiled.program.streams,
            model.core_timing(),
            warmup_barriers=model.warmup_barriers,
        )
        assert "memory" in result.kernel.subsystem_s
