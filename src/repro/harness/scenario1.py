"""Experimental Scenario I: iso-performance power optimization (Sec. 4.1).

The paper's pipeline, reproduced step by step:

1. profile every application at nominal V/f over N in {1, 2, 4, 8, 16}
   to obtain its nominal parallel efficiency curve and the 1-core power
   baseline;
2. compute each configuration's target frequency from Eq. 7
   (``f_N = f_1 / (N * eps_n)``), clamped into the chip's scaling range,
   and look the supply voltage up in the V/f table;
3. re-simulate at the scaled operating point and collect the five
   Figure 3 panels: nominal parallel efficiency, actual speedup,
   normalized power, normalized power density, and average temperature.

Actual speedups can exceed 1 (most visibly for memory-bound codes):
chip DVFS does not slow the 75 ns memory, so the processor-memory gap
narrows — the effect the analytical model cannot capture.

Both stages run through a
:class:`~repro.harness.executor.SweepExecutor`: the nominal profiling
points of *all* applications fan out together, then all the scaled
re-simulations do.  Every point is memoized, so re-running a campaign
whose configurations have not changed simulates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.harness.executor import SweepExecutor
from repro.harness.profiling import (
    SimPointRow,
    SimPointTask,
    precompile_hook,
    sim_point_key,
    simulate_point,
)
from repro.workloads.base import WorkloadModel, WorkloadSpec


@dataclass(frozen=True)
class Scenario1Row:
    """One (application, N) outcome — one bar in each Figure 3 panel."""

    app: str
    n: int
    nominal_efficiency: float
    actual_speedup: float
    normalized_power: float
    normalized_power_density: float
    average_temperature_c: float
    frequency_hz: float
    voltage: float
    total_power_w: float


@dataclass(frozen=True)
class Scenario1Task:
    """One scaled re-simulation with its profile-derived inputs.

    The baseline numbers ride along so the worker can normalise without
    a second look at the profile — and so the cache key covers every
    input the row depends on.
    """

    spec: WorkloadSpec
    n: int
    nominal_efficiency: float
    frequency_hz: float
    voltage: float
    t1_ps: int
    base_power_w: float
    base_density_w_m2: float


def _scenario1_point(context: ExperimentContext, task: Scenario1Task) -> Scenario1Row:
    """Worker: re-simulate one configuration at its Eq. 7 operating point."""
    model = WorkloadModel(task.spec)
    result, power = context.run(model, task.n, task.frequency_hz, task.voltage)
    return Scenario1Row(
        app=task.spec.name,
        n=task.n,
        nominal_efficiency=task.nominal_efficiency,
        actual_speedup=task.t1_ps / result.execution_time_ps,
        normalized_power=power.total_w / task.base_power_w,
        normalized_power_density=(
            power.core_power_density_w_m2 / task.base_density_w_m2
        ),
        average_temperature_c=power.average_temperature_c,
        frequency_hz=task.frequency_hz,
        voltage=task.voltage,
        total_power_w=power.total_w,
    )


def run_scenario1(
    context: ExperimentContext,
    models: Sequence[WorkloadModel],
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    executor: Optional[SweepExecutor] = None,
) -> Dict[str, List[Scenario1Row]]:
    """The Figure 3 experiment for a set of applications.

    Points that fail with a library error (e.g. an infeasible operating
    point) are recorded by the executor as typed failures and omitted
    from the returned rows; they never abort the campaign.
    """
    executor = executor if executor is not None else SweepExecutor()

    # Stage 1: one flat fan-out over every application's nominal profile.
    profile_tasks: List[SimPointTask] = []
    supported: Dict[str, List[int]] = {}
    for model in models:
        counts = model.supported_thread_counts(core_counts)
        supported[model.name] = counts
        profile_tasks.extend(SimPointTask(spec=model.spec, n=n) for n in counts)
    profile_rows_list = executor.map_values(
        partial(simulate_point, context),
        profile_tasks,
        key_configs=[sim_point_key(context, task) for task in profile_tasks],
        precompile=precompile_hook(context),
    )
    profiles: Dict[str, Dict[int, SimPointRow]] = {m.name: {} for m in models}
    for task, row in zip(profile_tasks, profile_rows_list):
        profiles[task.spec.name][task.n] = row

    # Stage 2: every scaled re-simulation, across all applications.
    scaled_tasks: List[Scenario1Task] = []
    for model in models:
        entries = profiles[model.name]
        if 1 not in entries:
            raise ConfigurationError(
                f"{model.name}: the 1-core baseline is required"
            )
        baseline = entries[1]
        for n in sorted(entries):
            if n == 1:
                continue
            tn = entries[n].execution_time_ps
            eps_n = baseline.execution_time_ps / (n * tn)
            # Eq. 7, clamped to the chip's legal frequency range (no
            # overclocking even when N * eps < 1; no scaling below
            # 200 MHz).
            f_target = context.clamp_frequency(context.f_nominal / (n * eps_n))
            scaled_tasks.append(
                Scenario1Task(
                    spec=model.spec,
                    n=n,
                    nominal_efficiency=eps_n,
                    frequency_hz=f_target,
                    voltage=context.vf_table.voltage_for_frequency(f_target),
                    t1_ps=baseline.execution_time_ps,
                    base_power_w=baseline.total_power_w,
                    base_density_w_m2=baseline.core_power_density_w_m2,
                )
            )
    outcomes = executor.map(
        partial(_scenario1_point, context),
        scaled_tasks,
        key_configs=[
            {"kind": "scenario1", "context": context.fingerprint(), "task": task}
            for task in scaled_tasks
        ],
        precompile=precompile_hook(context),
    )
    scaled: Dict[str, Dict[int, Scenario1Row]] = {m.name: {} for m in models}
    for task, outcome in zip(scaled_tasks, outcomes):
        if outcome.ok:
            scaled[task.spec.name][task.n] = outcome.value

    results: Dict[str, List[Scenario1Row]] = {}
    for model in models:
        baseline = profiles[model.name][1]
        rows = [
            Scenario1Row(
                app=model.name,
                n=1,
                nominal_efficiency=1.0,
                actual_speedup=1.0,
                normalized_power=1.0,
                normalized_power_density=1.0,
                average_temperature_c=baseline.average_temperature_c,
                frequency_hz=context.f_nominal,
                voltage=context.vf_table.voltage_for_frequency(context.f_nominal),
                total_power_w=baseline.total_power_w,
            )
        ]
        rows.extend(
            scaled[model.name][n]
            for n in sorted(scaled[model.name])
        )
        results[model.name] = rows
    return results
