"""Regression lock on each application's calibrated behavioural signature.

The Figure 3 / Figure 4 reproductions depend on the twelve workload
models keeping their tuned characters (who is compute-bound, who is
memory-bound, who scales).  This table pins each app's headline metrics
into bands wide enough to survive harmless refactors but tight enough to
catch calibration drift.

Metrics are measured at reduced scale (0.25) on the Table 1 machine at
nominal V/f; all values are deterministic.  Note the bands are
scale-specific: short runs carry more cold-start weight than the
full-length runs the benchmarks use.
"""

import pytest

from repro.sim import ChipMultiprocessor, CMPConfig
from repro.workloads import SPLASH2
from repro.workloads.base import WorkloadModel

#: app -> (eps16 band, stall1 band, l1 miss-rate band), at scale 0.25.
SIGNATURES = {
    "Barnes": ((0.35, 0.62), (0.48, 0.75), (0.02, 0.10)),
    "Cholesky": ((0.17, 0.40), (0.55, 0.80), (0.03, 0.11)),
    "FFT": ((0.50, 0.78), (0.75, 0.95), (0.08, 0.20)),
    "FMM": ((0.35, 0.62), (0.15, 0.45), (0.005, 0.06)),
    "LU": ((0.42, 0.70), (0.52, 0.80), (0.01, 0.08)),
    "Ocean": ((0.48, 0.76), (0.70, 0.93), (0.05, 0.18)),
    "Radiosity": ((0.10, 0.32), (0.50, 0.80), (0.03, 0.12)),
    "Radix": ((0.52, 0.80), (0.80, 0.99), (0.15, 0.40)),
    "Raytrace": ((0.09, 0.30), (0.48, 0.78), (0.03, 0.11)),
    "Volrend": ((0.12, 0.35), (0.38, 0.68), (0.02, 0.10)),
    "Water-Nsq": ((0.35, 0.62), (0.25, 0.55), (0.01, 0.07)),
    "Water-Sp": ((0.38, 0.66), (0.18, 0.48), (0.005, 0.06)),
}


def _measure(model):
    short = WorkloadModel(model.spec.scaled(0.25))
    times = {}
    one = None
    for n in (1, 16):
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [short.thread_ops(t, n) for t in range(n)],
            short.core_timing(),
            warmup_barriers=short.warmup_barriers,
        )
        times[n] = result.execution_time_ps
        if n == 1:
            one = result
    eps16 = times[1] / (16 * times[16])
    return eps16, one.memory_stall_fraction(), one.l1_miss_rate()


@pytest.fixture(scope="module")
def measurements():
    return {model.name: _measure(model) for model in SPLASH2}


@pytest.mark.parametrize("name", list(SIGNATURES), ids=str)
def test_signature_bands(name, measurements):
    eps_band, stall_band, miss_band = SIGNATURES[name]
    eps16, stall1, miss1 = measurements[name]
    assert eps_band[0] <= eps16 <= eps_band[1], f"eps16 = {eps16:.3f}"
    assert stall_band[0] <= stall1 <= stall_band[1], f"stall1 = {stall1:.3f}"
    assert miss_band[0] <= miss1 <= miss_band[1], f"l1 miss = {miss1:.3f}"


def test_relative_orderings(measurements):
    """The cross-app orderings the paper's narrative depends on."""
    eps = {name: m[0] for name, m in measurements.items()}
    stall = {name: m[1] for name, m in measurements.items()}

    # Scalability: the good scalers clearly beat the limited ones.
    assert min(eps["FMM"], eps["Water-Sp"]) > max(
        eps["Cholesky"], eps["Volrend"], eps["Raytrace"]
    )
    # Memory-boundedness: Radix is the extreme; FMM the opposite pole.
    assert stall["Radix"] == max(stall.values())
    assert stall["FMM"] == min(stall.values())
