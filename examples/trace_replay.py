#!/usr/bin/env python
"""Trace record/replay: pairing the simulator with external traces.

Records one of the synthetic SPLASH-2 models to a (gzip) trace file,
replays it bit-exactly, then replays the same trace on two modified
machines — demonstrating how externally produced traces (the format is
plain text, see ``repro/workloads/trace.py``) plug into every part of
the harness.

Run:  python examples/trace_replay.py [app] [threads]
      (defaults: Barnes 4)
"""

import sys
import tempfile
from pathlib import Path

from repro.harness import render_table
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.workloads import TraceWorkload, record_trace, workload_by_name
from repro.workloads.base import WorkloadModel


def simulate(workload, n, config=None):
    chip = ChipMultiprocessor(config or CMPConfig())
    return chip.run(
        [workload.thread_ops(t, n) for t in range(n)],
        workload.core_timing(),
        warmup_barriers=workload.warmup_barriers,
    )


def main(argv) -> None:
    app = argv[1] if len(argv) > 1 else "Barnes"
    n = int(argv[2]) if len(argv) > 2 else 4
    model = WorkloadModel(workload_by_name(app).spec.scaled(0.1))

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / f"{app.lower()}_{n}t.trace.gz"
        ops = record_trace(model, n, path)
        size_kb = path.stat().st_size / 1024
        print(f"recorded {ops} operations to {path.name} ({size_kb:.0f} KiB gzip)\n")

        trace = TraceWorkload(path)
        original = simulate(model, n)
        replayed = simulate(trace, n)
        bigger_l2 = simulate(
            trace,
            n,
            CMPConfig(
                l2_config=CMPConfig().l2_config.__class__(
                    capacity_bytes=8 * 1024 * 1024, line_bytes=128, associativity=8
                )
            ),
        )
        slower = simulate(
            trace, n, CMPConfig(frequency_hz=1.6e9, voltage=0.85)
        )

        print(
            render_table(
                ["run", "time (us)", "L1 miss", "mem-stall"],
                [
                    [
                        "generator (original)",
                        original.execution_time_s * 1e6,
                        original.l1_miss_rate(),
                        original.memory_stall_fraction(),
                    ],
                    [
                        "trace replay",
                        replayed.execution_time_s * 1e6,
                        replayed.l1_miss_rate(),
                        replayed.memory_stall_fraction(),
                    ],
                    [
                        "replay, 8 MB L2",
                        bigger_l2.execution_time_s * 1e6,
                        bigger_l2.l1_miss_rate(),
                        bigger_l2.memory_stall_fraction(),
                    ],
                    [
                        "replay, 1.6 GHz",
                        slower.execution_time_s * 1e6,
                        slower.l1_miss_rate(),
                        slower.memory_stall_fraction(),
                    ],
                ],
                title=f"{app} x {n} threads",
            )
        )
        # Note: the first two rows differ in timing only if the trace's
        # warmup semantics differ; counters must match exactly.
        match = (
            replayed.total_instructions == original.total_instructions
        )
        print(f"\nreplay instruction-count match: {match}")


if __name__ == "__main__":
    main(sys.argv)
