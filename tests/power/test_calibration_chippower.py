"""Tests for the Section 3.3 calibration and full-chip power integration."""

import pytest

from repro.power import (
    ChipPowerModel,
    StaticPowerModel,
    WattchModel,
    calibrate_power_model,
)
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.thermal import HotSpotModel, cmp_floorplan
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


@pytest.fixture(scope="module")
def toolchain():
    config = CMPConfig()
    thermal = HotSpotModel(
        cmp_floorplan(16), ambient_celsius=45.0, exclude_from_average=("l2",)
    )
    wattch = WattchModel()
    static = StaticPowerModel()
    calibration = calibrate_power_model(config, thermal, wattch, static)
    chip_power = ChipPowerModel(thermal, wattch, static, calibration)
    return config, thermal, wattch, static, calibration, chip_power


def run_app(config, app, n, scale=0.06):
    model = WorkloadModel(workload_by_name(app).spec.scaled(scale))
    chip = ChipMultiprocessor(config)
    return chip.run(
        [model.thread_ops(t, n) for t in range(n)],
        model.core_timing(),
        warmup_barriers=model.warmup_barriers,
    )


class TestCalibration:
    def test_design_point_consistency(self, toolchain):
        _, thermal, _, static, calibration, _ = toolchain
        # The max operational power's dynamic+static split is anchored at
        # 100 C and the total pins the die there.
        total = calibration.max_operational_power_w
        dynamic = calibration.design_dynamic_w
        assert dynamic < total
        ratio = static.ratio(100.0)
        assert dynamic * (1 + ratio) == pytest.approx(total, rel=1e-6)
        result = thermal.solve({"core0": total})
        assert result.peak_celsius() == pytest.approx(100.0, abs=0.5)

    def test_renormalisation_identity(self, toolchain):
        *_, calibration, _ = toolchain
        raw = calibration.wattch_microbenchmark_w
        assert calibration.renormalise(raw) == pytest.approx(
            calibration.design_dynamic_w
        )

    def test_ratio_positive(self, toolchain):
        *_, calibration, _ = toolchain
        assert calibration.wattch_to_hotspot_ratio > 0


class TestChipPowerModel:
    def test_power_components_positive(self, toolchain):
        config, *_, chip_power = toolchain
        result = run_app(config, "FMM", 2)
        power = chip_power.evaluate(result)
        assert power.dynamic_w > 0
        assert power.static_w > 0
        assert power.total_w == pytest.approx(power.dynamic_w + power.static_w)

    def test_temperature_between_ambient_and_design(self, toolchain):
        config, *_, chip_power = toolchain
        result = run_app(config, "FMM", 2)
        power = chip_power.evaluate(result)
        assert 45.0 <= power.average_temperature_c <= 100.0

    def test_compute_app_hotter_than_memory_app(self, toolchain):
        config, *_, chip_power = toolchain
        fmm = chip_power.evaluate(run_app(config, "FMM", 1))
        radix = chip_power.evaluate(run_app(config, "Radix", 1))
        assert fmm.total_w > radix.total_w
        assert fmm.average_temperature_c > radix.average_temperature_c

    def test_power_map_matches_floorplan(self, toolchain):
        config, thermal, *_, chip_power = toolchain
        result = run_app(config, "Barnes", 4)
        power = chip_power.evaluate(result)
        assert set(power.power_map) <= set(thermal.floorplan.names)
        assert "l2" in power.power_map

    def test_density_uses_active_cores_only(self, toolchain):
        config, thermal, *_, chip_power = toolchain
        one = chip_power.evaluate(run_app(config, "Barnes", 1))
        # Density denominator = one core's area for N=1.
        core_area = thermal.floorplan.block("core0").area
        active_power = one.power_map["core0"]
        assert one.core_power_density_w_m2 == pytest.approx(
            active_power / core_area
        )

    def test_dvfs_cuts_power(self, toolchain):
        config, *_, chip_power = toolchain
        nominal = chip_power.evaluate(run_app(config, "Barnes", 2))
        scaled_config = config.with_operating_point(1.0e9, 0.75)
        scaled = chip_power.evaluate(run_app(scaled_config, "Barnes", 2))
        assert scaled.total_w < nominal.total_w
