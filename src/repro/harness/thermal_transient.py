"""Thermal step-response analysis: what happens *between* DVFS modes.

The paper evaluates steady states.  Real mode switches (Scenario I's
down-shift, Scenario II's throttling) pass through a thermal transient:
after the power step the die approaches its new steady state with the
package's RC time constant, and static power — exponential in
temperature — keeps paying the *old* temperature for a while.

This harness runs the RC network's implicit-Euler transient between two
power maps and reports the trajectory and its time constant, so the
steady-state results elsewhere can be qualified ("the cool-down takes
~X ms; runs shorter than that see less static saving than Figure 3
suggests").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.timeseries import get_sampler
from repro.thermal.hotspot import HotSpotModel
from repro.units import kelvin_to_celsius


@dataclass(frozen=True)
class ThermalTransient:
    """A sampled temperature trajectory after a power step."""

    #: (time_s, average_core_temperature_c) samples, t = 0 included.
    samples: Tuple[Tuple[float, float], ...]
    start_c: float
    target_c: float

    def __post_init__(self) -> None:
        if len(self.samples) < 2:
            raise ConfigurationError("need at least two samples")

    def time_constant_s(self) -> float:
        """Time to close 63.2 % of the gap to the target temperature.

        Interpolates between samples; returns the last sample time if
        the trajectory never gets that far (undersampled transient).
        """
        gap = self.target_c - self.start_c
        if abs(gap) < 1e-12:
            return 0.0
        threshold = self.start_c + (1.0 - math.exp(-1.0)) * gap
        previous_t, previous_T = self.samples[0]
        for t, temperature in self.samples[1:]:
            crossed = (
                temperature >= threshold if gap > 0 else temperature <= threshold
            )
            if crossed:
                if temperature == previous_T:
                    return t
                fraction = (threshold - previous_T) / (temperature - previous_T)
                return previous_t + fraction * (t - previous_t)
            previous_t, previous_T = t, temperature
        return self.samples[-1][0]

    def settled_fraction(self) -> float:
        """How much of the step the last sample has closed (0..1)."""
        gap = self.target_c - self.start_c
        if abs(gap) < 1e-12:
            return 1.0
        return (self.samples[-1][1] - self.start_c) / gap


def _average_core_c(thermal: HotSpotModel, temperatures_k: Mapping[str, float]) -> float:
    floorplan = thermal.floorplan
    names = [n for n in floorplan.names if n not in thermal.exclude_from_average]
    area = sum(floorplan.block(n).area for n in names)
    return kelvin_to_celsius(
        sum(temperatures_k[n] * floorplan.block(n).area for n in names) / area
    )


def thermal_step_response(
    thermal: HotSpotModel,
    power_before: Mapping[str, float],
    power_after: Mapping[str, float],
    duration_s: float = 0.1,
    n_samples: int = 20,
    dt_s: float = 5e-4,
) -> ThermalTransient:
    """Step the chip from one power map to another and watch it settle.

    The chip starts at the *steady state* of ``power_before`` and then
    dissipates ``power_after``; samples are logarithmically unnecessary —
    uniform sampling over ``duration_s`` is returned.
    """
    if duration_s <= 0 or n_samples < 2 or dt_s <= 0:
        raise ConfigurationError("need positive duration, dt and >= 2 samples")

    network = thermal.network
    ambient = thermal.ambient_k
    state = network.steady_state(power_before, ambient)
    start_c = _average_core_c(thermal, state)
    target_state = network.steady_state(power_after, ambient)
    target_c = _average_core_c(thermal, target_state)

    sampler = get_sampler()
    step_s = duration_s / (n_samples - 1)
    samples: List[Tuple[float, float]] = [(0.0, start_c)]
    sampler.sample("thermal.transient_c", start_c)
    for i in range(1, n_samples):
        state = network.transient(
            power_after,
            ambient,
            initial_k=state,
            duration_s=step_s,
            dt_s=dt_s,
        )
        average_c = _average_core_c(thermal, state)
        samples.append((i * step_s, average_c))
        sampler.sample("thermal.transient_c", average_c)

    return ThermalTransient(
        samples=tuple(samples), start_c=start_c, target_c=target_c
    )
