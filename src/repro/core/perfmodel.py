"""The execution-time model and the performance-side identities.

The paper models performance with the classic iron law (its Eq. 5)::

    T = I * CPI / f

For a parallel run on N cores (all threads assumed to have identical
instruction counts ``I_N`` and ``CPI_N``, all cores sharing one V/f), the
*nominal parallel efficiency* (Eq. 6) is::

    eps_n(N) = (I_1 * CPI_1) / (N * I_N * CPI_N)

and the two identities the scenarios are built on follow directly:

* iso-performance frequency (Eq. 7): ``f_N = f_1 / (N * eps_n(N))``,
* speedup at frequency ``f`` (Eq. 10 without the voltage substitution):
  ``S(N, f) = N * eps_n(N) * f / f_1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, InfeasibleOperatingPoint


@dataclass(frozen=True)
class ExecutionTimeModel:
    """Iron-law execution time (Eq. 5): ``T = I * CPI / f``.

    ``instructions`` is the dynamic instruction count of one thread,
    ``cpi`` its average cycles per instruction.
    """

    instructions: float
    cpi: float

    def __post_init__(self) -> None:
        if self.instructions <= 0 or self.cpi <= 0:
            raise ConfigurationError("instructions and CPI must be positive")

    def time(self, frequency_hz: float) -> float:
        """Execution time in seconds at the given clock frequency."""
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        return self.instructions * self.cpi / frequency_hz

    def cycles(self) -> float:
        """Total cycles, independent of frequency."""
        return self.instructions * self.cpi


def nominal_parallel_efficiency(
    sequential: ExecutionTimeModel, per_thread: ExecutionTimeModel, n: int
) -> float:
    """Eq. 6: efficiency of an N-thread run measured at equal frequency.

    ``per_thread`` describes one of the N identical threads.  Values above
    1 indicate superlinear behaviour (e.g. aggregate cache capacity).
    """
    if n < 1:
        raise ConfigurationError(f"core count must be >= 1, got {n}")
    return sequential.cycles() / (n * per_thread.cycles())


def iso_performance_frequency(f1_hz: float, n: int, eps_n: float) -> float:
    """Eq. 7: the frequency at which N cores match the 1-core nominal time.

    Requires ``N * eps_n >= 1``; otherwise matching the sequential
    performance would need overclocking beyond ``f1``, which the model
    forbids (Section 2.2).
    """
    if f1_hz <= 0:
        raise ConfigurationError("nominal frequency must be positive")
    if n < 1:
        raise ConfigurationError(f"core count must be >= 1, got {n}")
    if eps_n <= 0:
        raise ConfigurationError("efficiency must be positive")
    product = n * eps_n
    if product < 1.0 - 1e-12:
        raise InfeasibleOperatingPoint(
            f"N * eps_n = {product:.4f} < 1: matching 1-core performance on "
            f"{n} cores would require overclocking"
        )
    return f1_hz / product


def speedup_from_frequency(f_hz: float, f1_hz: float, n: int, eps_n: float) -> float:
    """Eq. 10 (frequency form): ``S = N * eps_n * f / f1``."""
    if f_hz <= 0 or f1_hz <= 0:
        raise ConfigurationError("frequencies must be positive")
    if n < 1:
        raise ConfigurationError(f"core count must be >= 1, got {n}")
    if eps_n <= 0:
        raise ConfigurationError("efficiency must be positive")
    return n * eps_n * f_hz / f1_hz
