"""Determinism checker: wall clocks, unseeded RNGs, unordered iteration.

The repo's headline guarantee — bitwise-identical counters across
kernels, serial/parallel sweeps, and warm caches — holds only if the
simulation subsystems never read host state that varies between runs or
processes.  This checker walks ``sim/``, ``power/``, ``thermal/``, and
``workloads/`` (the modules that feed simulated counters) and flags:

* ``DET-WALLCLOCK`` — reads of the host clock (``time.time``,
  ``time.perf_counter``, ``datetime.now``, ...).  Host-side profiling
  timers are legitimate *when their readings never feed simulated
  state*; suppress those sites inline with a reason.
* ``DET-RANDOM`` — draws from the process-global ``random`` module, an
  unseeded ``random.Random()``, or ``numpy.random`` module functions.
  Seeded ``random.Random(seed)`` instances are the supported idiom.
* ``DET-SET-ORDER`` — iteration over ``set``-typed values or
  ``os.environ``: the order is an implementation detail, so any
  order-sensitive consumption (accumulation, scheduling, first-match
  scans) is a cross-run hazard.  Wrap in ``sorted(...)`` or suppress
  with an argument why order cannot matter.
* ``DET-FLOAT-SUM`` — ``sum()`` over a set or over ``dict`` views:
  float addition does not commute, so the accumulation order must be
  canonical before the result may feed a counter or a cache key.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.index import FunctionInfo, TreeIndex, _annotation_is_set
from repro.analysis.source import SourceFile

#: Subtrees (relative to the analyzed root) the determinism rules cover.
DEFAULT_SCOPE: Tuple[str, ...] = ("sim/", "power/", "thermal/", "workloads/")

#: Relative paths containing these fragments are host-side by contract.
SCOPE_EXEMPT_FRAGMENTS: Tuple[str, ...] = ("telemetry/", "profiling")

_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
        "randbytes",
    }
)


def in_scope(rel: str, scope: Tuple[str, ...] = DEFAULT_SCOPE) -> bool:
    """Whether the determinism rules apply to this relative path."""
    if any(fragment in rel for fragment in SCOPE_EXEMPT_FRAGMENTS):
        return False
    return any(rel.startswith(prefix) for prefix in scope)


def _call_target(node: ast.Call) -> Tuple[Optional[str], str]:
    """``(base, attr)`` of a call: ``time.time()`` -> ("time", "time")."""
    func = node.func
    if isinstance(func, ast.Attribute):
        base: Optional[str] = None
        if isinstance(func.value, ast.Name):
            base = func.value.id
        elif isinstance(func.value, ast.Attribute):
            base = func.value.attr
        return base, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, ""


class _ModuleAliases:
    """Names the module binds to ``time``/``random``/``numpy``/``datetime``."""

    def __init__(self, tree: ast.Module) -> None:
        self.time: Set[str] = set()
        self.random: Set[str] = set()
        self.numpy: Set[str] = set()
        self.datetime: Set[str] = set()
        #: Wall-clock function names imported directly
        #: (``from time import perf_counter``).
        self.bare_wallclock: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name in ("time", "random", "datetime"):
                        getattr(self, alias.name).add(bound)
                    elif alias.name in ("numpy", "numpy.random"):
                        self.numpy.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALLCLOCK_TIME_ATTRS:
                            self.bare_wallclock.add(alias.asname or alias.name)
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name == "datetime":
                            self.datetime.add(alias.asname or alias.name)


def _set_like_names(function: FunctionInfo, index: TreeIndex) -> Set[str]:
    """Names bound to set-typed values inside one function.

    Covers parameters annotated as sets, locals assigned from set
    displays/constructors, and locals assigned from calls to functions
    in the tree whose return annotation is a set.
    """
    names: Set[str] = set()
    args = function.node.args
    for arg in list(args.args) + list(args.kwonlyargs):
        if _annotation_is_set(arg.annotation):
            names.add(arg.arg)
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Assign):
            continue
        if not _is_set_expr(node.value, names, index):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(
    node: ast.expr, set_names: Set[str], index: Optional[TreeIndex]
) -> bool:
    """Whether an expression is syntactically set-valued."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        # Set algebra preserves set-ness; require one known-set side.
        return _is_set_expr(node.left, set_names, index) or _is_set_expr(
            node.right, set_names, index
        )
    if isinstance(node, ast.Call):
        base, attr = _call_target(node)
        if base is None and attr in ("set", "frozenset"):
            return True
        if index is not None:
            candidates = index.functions.get(attr, [])
            if candidates and all(c.returns_set for c in candidates):
                return True
    return False


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` or a view of it (``os.environ.keys()`` ...)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("keys", "values", "items"):
            return _is_environ(node.func.value)
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def _is_dict_view(node: ast.expr) -> bool:
    """A ``.values()``/``.keys()``/``.items()`` call on anything."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys", "items")
        and not node.args
        and not node.keywords
    )


def _unordered_iter(
    node: ast.expr, set_names: Set[str], index: TreeIndex
) -> Optional[str]:
    """Describe why iterating ``node`` is order-fragile, or ``None``.

    ``sorted(...)`` wrappers canonicalise the order, and ``list``/
    ``tuple`` wrappers are looked through (they preserve it).
    """
    if isinstance(node, ast.Call):
        base, attr = _call_target(node)
        if base is None and attr == "sorted":
            return None
        if base is None and attr in ("list", "tuple") and node.args:
            return _unordered_iter(node.args[0], set_names, index)
    if _is_environ(node):
        return "os.environ"
    if _is_set_expr(node, set_names, index):
        return "a set"
    return None


def check(
    index: TreeIndex, scope: Tuple[str, ...] = DEFAULT_SCOPE
) -> List[Finding]:
    """Run every determinism rule over the indexed tree."""
    findings: List[Finding] = []
    for source in index.files:
        if not in_scope(source.rel, scope):
            continue
        aliases = _ModuleAliases(source.tree)
        _check_calls(source, aliases, findings)
        _check_iteration(source, index, findings)
    return findings


def _check_calls(
    source: SourceFile, aliases: _ModuleAliases, findings: List[Finding]
) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        base, attr = _call_target(node)
        line = node.lineno
        if (
            (base in aliases.time and attr in _WALLCLOCK_TIME_ATTRS)
            or (base in aliases.datetime and attr in _WALLCLOCK_DATETIME_ATTRS)
            or (base is None and attr in aliases.bare_wallclock)
        ):
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    rule="DET-WALLCLOCK",
                    severity="error",
                    message=f"wall-clock read `{attr}` in a simulation module",
                    snippet=source.snippet(line),
                )
            )
        elif base in aliases.random and attr in _GLOBAL_RANDOM_FUNCS:
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    rule="DET-RANDOM",
                    severity="error",
                    message=(
                        f"process-global RNG `random.{attr}`; use a seeded "
                        "random.Random instance"
                    ),
                    snippet=source.snippet(line),
                )
            )
        elif (
            base in aliases.random
            and attr == "Random"
            and not node.args
            and not node.keywords
        ):
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    rule="DET-RANDOM",
                    severity="error",
                    message="unseeded random.Random(); pass an explicit seed",
                    snippet=source.snippet(line),
                )
            )
        elif base == "random" and aliases.numpy:
            # `np.random.standard_normal(...)`: func is Attribute whose
            # value is the Attribute `np.random`.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in aliases.numpy
            ):
                findings.append(
                    Finding(
                        path=source.rel,
                        line=line,
                        rule="DET-RANDOM",
                        severity="error",
                        message=(
                            f"global numpy RNG `numpy.random.{attr}`; use "
                            "numpy.random.default_rng(seed)"
                        ),
                        snippet=source.snippet(line),
                    )
                )
        elif base is None and attr == "default_rng" and not node.args:
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    rule="DET-RANDOM",
                    severity="error",
                    message="unseeded default_rng(); pass an explicit seed",
                    snippet=source.snippet(line),
                )
            )


def _check_iteration(
    source: SourceFile, index: TreeIndex, findings: List[Finding]
) -> None:
    functions = [
        info
        for infos in index.functions.values()
        for info in infos
        if info.file is source
    ]
    #: Pre-computed set-like locals per function scope.
    set_names_by_function: Dict[int, Set[str]] = {
        id(info.node): _set_like_names(info, index) for info in functions
    }

    def names_for(node: ast.AST) -> Set[str]:
        return set_names_by_function.get(id(node), set())

    for info in functions:
        set_names = names_for(info.node)
        for node in ast.walk(info.node):
            if isinstance(node, ast.For):
                reason = _unordered_iter(node.iter, set_names, index)
                if reason is not None:
                    line = node.lineno
                    findings.append(
                        Finding(
                            path=source.rel,
                            line=line,
                            rule="DET-SET-ORDER",
                            severity="warning",
                            message=(
                                f"iteration over {reason}: order is an "
                                "implementation detail; sort or suppress "
                                "with a why-order-free argument"
                            ),
                            snippet=source.snippet(line),
                        )
                    )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in node.generators:
                    reason = _unordered_iter(generator.iter, set_names, index)
                    if reason is not None:
                        line = node.lineno
                        findings.append(
                            Finding(
                                path=source.rel,
                                line=line,
                                rule="DET-SET-ORDER",
                                severity="warning",
                                message=(
                                    f"comprehension over {reason}: order is "
                                    "an implementation detail; sort or "
                                    "suppress with a why-order-free argument"
                                ),
                                snippet=source.snippet(line),
                            )
                        )
            elif isinstance(node, ast.Call):
                base, attr = _call_target(node)
                if base is None and attr == "sum" and node.args:
                    argument = node.args[0]
                    hazard = _float_sum_hazard(argument, set_names, index)
                    if hazard is not None:
                        line = node.lineno
                        findings.append(
                            Finding(
                                path=source.rel,
                                line=line,
                                rule="DET-FLOAT-SUM",
                                severity="warning",
                                message=(
                                    f"sum() over {hazard}: float accumulation "
                                    "order must be canonical; sort first or "
                                    "suppress with a why-order-free argument"
                                ),
                                snippet=source.snippet(line),
                            )
                        )


def _float_sum_hazard(
    argument: ast.expr, set_names: Set[str], index: TreeIndex
) -> Optional[str]:
    """Why a ``sum()`` argument has fragile accumulation order."""
    if _is_set_expr(argument, set_names, index):
        return "a set"
    if _is_dict_view(argument):
        return "a dict view"
    if isinstance(argument, (ast.GeneratorExp, ast.ListComp)):
        for generator in argument.generators:
            if _is_set_expr(generator.iter, set_names, index):
                return "a set"
            if _is_dict_view(generator.iter):
                return "a dict view"
            if _is_environ(generator.iter):
                return "os.environ"
    return None
