"""Golden-value regression tests for the Figure 1 / Figure 2 grids.

``tests/data/golden_figures.json`` pins the solved rows for both paper
technology nodes, written with :func:`repro.harness.store.save_results`.
Any numerical drift in the technology tables, the power model, the
scenario solvers, or the sweep plumbing shows up here as a >1e-9
discrepancy.

To regenerate after an *intentional* model change::

    PYTHONPATH=src python -c "
    from repro.core import AnalyticalChipModel, figure1_rows, figure2_rows
    from repro.harness.store import save_results
    from repro.tech import technology_by_name
    groups = {}
    for tech in ('130nm', '65nm'):
        chip = AnalyticalChipModel(technology_by_name(tech))
        groups[f'fig1-{tech}'] = figure1_rows(chip, efficiency_points=21)
        groups[f'fig2-{tech}'] = figure2_rows(chip)
    save_results(groups, 'tests/data/golden_figures.json')"
"""

import dataclasses
import math
from pathlib import Path

import pytest

from repro.core import AnalyticalChipModel, figure1_rows, figure2_rows
from repro.harness.store import load_results
from repro.tech import technology_by_name

GOLDEN_PATH = Path(__file__).resolve().parents[1] / "data" / "golden_figures.json"
TOLERANCE = 1e-9
TECH_NODES = ("130nm", "65nm")


@pytest.fixture(scope="module")
def golden():
    return load_results(GOLDEN_PATH)


def assert_rows_match(actual_rows, golden_rows, group):
    assert len(actual_rows) == len(golden_rows), (
        f"{group}: {len(actual_rows)} rows, golden has {len(golden_rows)}"
    )
    for position, (actual, expected) in enumerate(zip(actual_rows, golden_rows)):
        assert type(actual) is type(expected)
        for field in dataclasses.fields(actual):
            a = getattr(actual, field.name)
            e = getattr(expected, field.name)
            if isinstance(e, float):
                assert math.isclose(a, e, rel_tol=TOLERANCE, abs_tol=TOLERANCE), (
                    f"{group}[{position}].{field.name}: {a!r} != golden {e!r}"
                )
            else:
                assert a == e, (
                    f"{group}[{position}].{field.name}: {a!r} != golden {e!r}"
                )


@pytest.mark.parametrize("tech", TECH_NODES)
def test_figure1_rows_match_golden(golden, tech):
    chip = AnalyticalChipModel(technology_by_name(tech))
    rows = figure1_rows(chip, efficiency_points=21)
    assert_rows_match(rows, golden[f"fig1-{tech}"], f"fig1-{tech}")


@pytest.mark.parametrize("tech", TECH_NODES)
def test_figure2_rows_match_golden(golden, tech):
    chip = AnalyticalChipModel(technology_by_name(tech))
    rows = figure2_rows(chip)
    assert_rows_match(rows, golden[f"fig2-{tech}"], f"fig2-{tech}")


def test_golden_fixture_has_expected_shape(golden):
    assert sorted(golden) == [
        "fig1-130nm",
        "fig1-65nm",
        "fig2-130nm",
        "fig2-65nm",
    ]
    for tech in TECH_NODES:
        # Figure 2's x-axis is N = 1..32, none of which is infeasible at
        # eps_n = 1 on the paper's nodes.
        assert [row.n for row in golden[f"fig2-{tech}"]] == list(range(1, 33))
        assert all(row.technology == tech for row in golden[f"fig1-{tech}"])
