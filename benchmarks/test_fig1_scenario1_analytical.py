"""Figure 1 — analytical Scenario I: normalized power vs parallel efficiency.

Regenerates both panels of the paper's Figure 1: normalized power
consumption ``P_N / P_1`` against nominal parallel efficiency for
N in {2, 4, 8, 16, 32}, at 130 nm and 65 nm, all configurations forced to
match the 1-core nominal performance, with the sample application's
operating points marked.

Shape assertions (the paper's claims):

* power savings grow with efficiency on every curve,
* every curve crosses below 1.0 (breakeven) by eps_n = 1,
* larger N reaches breakeven at lower efficiency — up to the static-power
  reversal at N = 32,
* at high efficiency the N = 32 curve runs above the N = 16 curve,
* the sample application's best configuration is not the largest N.
"""

import pytest

from repro.core import (
    AnalyticalChipModel,
    PowerOptimizationScenario,
    SAMPLE_APPLICATION,
    figure1_sweep,
)
from repro.harness import render_table
from repro.tech import NODE_130NM, NODE_65NM


@pytest.mark.parametrize("node", [NODE_130NM, NODE_65NM], ids=lambda n: n.name)
def test_figure1(benchmark, node):
    chip = AnalyticalChipModel(node)

    curves = benchmark.pedantic(
        lambda: figure1_sweep(chip, efficiency_points=41), rounds=1, iterations=1
    )

    rows = []
    for curve in curves:
        sampled = {
            round(eps, 2): power
            for eps, power in zip(curve.efficiencies, curve.normalized_power)
        }
        rows.append(
            [
                curve.n,
                sampled.get(0.4, float("nan")),
                sampled.get(0.6, float("nan")),
                sampled.get(0.8, float("nan")),
                sampled.get(1.0, float("nan")),
                "-" if curve.sample_mark is None else f"{curve.sample_mark[1]:.3f}",
            ]
        )
    print()
    print(
        render_table(
            ["N", "P@eps=.4", "P@eps=.6", "P@eps=.8", "P@eps=1.0", "sample-app"],
            rows,
            title=f"Figure 1 ({node.name}, T1=100C): normalized power vs eps_n",
        )
    )

    by_n = {curve.n: curve for curve in curves}
    # Savings grow with efficiency on every curve.
    for curve in curves:
        powers = curve.normalized_power
        assert all(b <= a + 1e-9 for a, b in zip(powers, powers[1:]))
    # Every curve shows savings by eps = 1.
    for curve in curves:
        assert curve.normalized_power[-1] < 1.0
    # High-N curves above low-N at high efficiency (static-power cost).
    assert by_n[32].normalized_power[-1] > by_n[16].normalized_power[-1]

    # Breakeven efficiency falls from N=2 to N=8.
    scenario = PowerOptimizationScenario(chip)
    assert scenario.breakeven_efficiency(8) < scenario.breakeven_efficiency(2)

    # The sample application's optimum is an interior core count.
    best = scenario.best_configuration(SAMPLE_APPLICATION, (2, 4, 8, 16, 32))
    assert best.n < 32
    print(
        f"sample application: best N = {best.n}, "
        f"normalized power = {best.normalized_power:.3f}"
    )
