"""Regressions for order-canonical float aggregation (analyzer follow-ups).

The static analyzer's DET-FLOAT-SUM / DET-SET-ORDER audit surfaced two
latent fragilities: :meth:`KernelAggregate.add_record` folded per-run
subsystem timings in whatever order each record carried them (parallel
workers return in completion order), and the coherence controller
probed sharer sets in hash order.  Both now fold/probe in sorted order,
so the accumulated floats are identical no matter how the inputs were
permuted.  These tests pin that.
"""

import itertools

from repro.harness.profiling import KernelAggregate
from repro.sim.cmp import KernelStats
from repro.telemetry.record import KernelRecord
from repro.units import GIGA, KILO, MEGA, MICRO, MILLI, NANO, PICO


def _stats(pairs) -> KernelStats:
    stats = KernelStats(mode="fast", total_ops=10, sim_wall_s=0.1)
    stats.subsystem_s = dict(pairs)
    return stats


class TestKernelAggregateFoldOrder:
    # Values chosen so naive left-to-right addition in different orders
    # produces different floats (non-associativity is observable).
    PAIRS = (
        ("memory", 0.1),
        ("critical", 0.2),
        ("barrier", 0.3),
        ("upgrade", 1e-12),
    )

    def test_record_key_order_does_not_change_totals(self):
        reference = None
        for permutation in itertools.permutations(self.PAIRS):
            aggregate = KernelAggregate()
            aggregate.add_record(_stats(permutation))
            if reference is None:
                reference = aggregate.subsystem_s
            else:
                assert aggregate.subsystem_s == reference
                # Same keys in the same (sorted) insertion order too.
                assert list(aggregate.subsystem_s) == list(reference)

    def test_dict_and_tuple_records_fold_identically(self):
        from_dict = KernelAggregate()
        from_dict.add_record(_stats(self.PAIRS))
        from_tuple = KernelAggregate()
        from_tuple.add_record(
            KernelRecord(
                mode="fast",
                total_ops=10,
                fast_path_ops=0,
                slow_path_ops=0,
                barrier_ops=0,
                sim_wall_s=0.1,
                compile_s=0.0,
                compile_cache_hit=False,
                subsystem_s=tuple(reversed(self.PAIRS)),
            )
        )
        assert from_dict.subsystem_s == from_tuple.subsystem_s

    def test_multi_run_fold_ignores_each_records_key_order(self):
        # The run *sequence* is the executor's to canonicalise (it folds
        # outcomes in point-index order); add_record's contract is that
        # the key order carried by each individual record is irrelevant.
        runs = [
            self.PAIRS,
            (("memory", 0.07), ("barrier", 1e-9)),
            (("critical", 0.5), ("upgrade", 3e-13), ("memory", 0.01)),
        ]
        reference = None
        for seed in range(6):
            aggregate = KernelAggregate()
            for offset, run in enumerate(runs):
                rotated = run[(seed + offset) % len(run):] + run[: (seed + offset) % len(run)]
                aggregate.add_record(_stats(rotated))
            totals = dict(aggregate.subsystem_s)
            if reference is None:
                reference = totals
            else:
                assert totals == reference


class TestUnitConstantsAreExactLiterals:
    """The named constants must be bitwise-identical to the literals
    they replaced across the tree, or golden figures would shift."""

    def test_identities(self):
        assert GIGA == 1e9 and GIGA == float(10**9)
        assert MEGA == 1e6
        assert KILO == 1e3 and KILO == 1000.0
        assert MILLI == 1e-3
        assert MICRO == 1e-6
        assert NANO == 1e-9
        assert PICO == 1e-12

    def test_substituted_expressions_match_old_forms(self):
        f_hz = 3.2e9
        assert f_hz / GIGA == f_hz / 1e9
        time_ps = 123_456_789
        assert time_ps * PICO == time_ps * 1e-12
        ns = 37.5
        assert int(round(ns * KILO)) == int(round(ns * 1000.0))
        feature_nm = 65.0
        assert feature_nm * NANO == feature_nm * 1e-9
