"""Workload specification and the per-thread operation-stream generator.

A :class:`WorkloadSpec` describes one application's behavioural
signature; :class:`WorkloadModel` expands it into deterministic operation
streams (seeded; identical across runs) for any thread count.

Program structure
-----------------
The work is divided into ``n_phases`` barrier-delimited phases, the
universal SPLASH-2 shape.  Each phase optionally begins with a *serial
section* executed by thread 0 alone (the Amdahl term), followed by the
parallel section in which each thread executes its share of the phase's
instructions — modulated by a per-(phase, thread) imbalance factor — as
interleaved compute bursts and memory accesses, with critical sections
sprinkled at the spec's rate.

Memory behaviour
----------------
Each thread owns a slice of the private region (``total_private_bytes``
split N ways, so aggregate cache capacity grows with N — the superlinear
mechanism the paper notes) and shares ``shared_bytes`` with everyone.
Three access classes model the reuse structure of real codes:

* **hot-set accesses** (probability ``hot_fraction`` of private
  accesses): a small per-thread buffer — stack frames, accumulators,
  lookup tables — that lives in the L1;
* **streaming walks** over the thread's slice: with probability
  ``locality`` the cursor advances sequentially (8-byte stride),
  otherwise it jumps to a random slice location.  The cursor restarts at
  the slice base every phase, modelling iterative codes that re-walk
  their data, so from the second phase on the slice hits whatever cache
  level it fits in;
* **shared accesses** (probability ``shared_fraction``): ``uniform``
  (all-to-all, e.g. FFT transpose / Radix permutation) or ``blocked``
  (near-neighbour with halo overlap, e.g. Ocean grids).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, List

from repro.errors import ConfigurationError, WorkloadError
from repro.sim.cpu import CoreTimingConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE

#: Address-space layout (byte offsets).  Regions are disjoint by
#: construction; threads carve the private region into equal slices.
_PRIVATE_BASE = 0x0000_0000_0000
_SHARED_BASE = 0x4000_0000_0000
_LOCK_BASE = 0x7000_0000_0000

#: Sequential-access stride (one double).
_STRIDE = 8


@dataclass(frozen=True)
class WorkloadSpec:
    """Behavioural signature of one application.

    Parameters
    ----------
    name, problem_size:
        Identification; ``problem_size`` quotes Table 2.
    total_instructions:
        Total dynamic instructions across all threads (a scaled-down
        synthetic stand-in for the real run length; the harness keeps the
        problem size fixed as N varies, like the paper).
    mem_ratio:
        Memory operations per instruction.
    write_fraction:
        Fraction of memory operations that are stores.
    total_private_bytes:
        Aggregate private data footprint, split across threads.
    shared_bytes:
        Shared-region footprint.
    shared_fraction:
        Probability a memory access targets the shared region.
    locality:
        Probability a streaming access continues sequentially from the
        previous one in its region (spatial locality).
    hot_fraction:
        Probability a private access targets the thread's small hot set
        (L1-resident temporal reuse); the complement streams the slice.
    hot_bytes:
        Size of the per-thread hot set.
    sharing_pattern:
        ``"uniform"`` or ``"blocked"`` (see module docstring).
    n_phases:
        Barrier-delimited phases.
    serial_fraction:
        Fraction of each phase's work executed by thread 0 alone.
    imbalance:
        Relative amplitude of random per-(phase, thread) work variation.
    critical_sections_per_phase:
        Lock acquisitions per thread per phase.
    n_locks:
        Size of the lock pool (1 = a single global lock, high contention).
    critical_instructions:
        Compute burst inside each critical section.
    base_cpi, icache_miss_rate, memory_parallelism:
        Core-timing knobs (see :class:`repro.sim.cpu.CoreTimingConfig`).
    power_of_two_only:
        Whether the application only runs on power-of-two thread counts
        (Section 4.1 notes several SPLASH-2 codes do).
    seed:
        Root of all pseudo-randomness; streams are reproducible.
    """

    name: str
    problem_size: str
    total_instructions: int
    mem_ratio: float
    write_fraction: float
    total_private_bytes: int
    shared_bytes: int
    shared_fraction: float
    locality: float
    hot_fraction: float = 0.0
    hot_bytes: int = 12 * 1024
    sharing_pattern: str = "uniform"
    n_phases: int = 8
    serial_fraction: float = 0.0
    imbalance: float = 0.0
    critical_sections_per_phase: int = 0
    n_locks: int = 16
    critical_instructions: int = 40
    base_cpi: float = 0.8
    icache_miss_rate: float = 0.001
    memory_parallelism: float = 1.5
    power_of_two_only: bool = False
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.total_instructions < self.n_phases:
            raise ConfigurationError("too few instructions for the phase count")
        if not 0.0 < self.mem_ratio < 1.0:
            raise ConfigurationError("mem_ratio must be in (0, 1)")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        if not 0.0 <= self.shared_fraction <= 1.0:
            raise ConfigurationError("shared_fraction must be in [0, 1]")
        if not 0.0 <= self.locality < 1.0:
            raise ConfigurationError("locality must be in [0, 1)")
        if not 0.0 <= self.hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in [0, 1)")
        if self.hot_bytes <= 0:
            raise ConfigurationError("hot_bytes must be positive")
        if self.sharing_pattern not in ("uniform", "blocked"):
            raise ConfigurationError(
                f"unknown sharing pattern {self.sharing_pattern!r}"
            )
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ConfigurationError("serial_fraction must be in [0, 1)")
        if self.imbalance < 0 or self.imbalance >= 1:
            raise ConfigurationError("imbalance must be in [0, 1)")
        if min(self.total_private_bytes, self.shared_bytes) <= 0:
            raise ConfigurationError("footprints must be positive")

    def scaled(self, factor: float) -> "WorkloadSpec":
        """A copy with the run length scaled (tests use short runs)."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return replace(
            self,
            total_instructions=max(self.n_phases, int(self.total_instructions * factor)),
        )


class WorkloadModel:
    """Expands a :class:`WorkloadSpec` into per-thread operation streams."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec

    #: Number of leading barriers that delimit untimed initialization;
    #: pass this to :meth:`repro.sim.cmp.ChipMultiprocessor.run` as
    #: ``warmup_barriers``.
    warmup_barriers = 1

    @property
    def name(self) -> str:
        """Application name."""
        return self.spec.name

    def core_timing(self) -> CoreTimingConfig:
        """The core-timing configuration this application runs with."""
        spec = self.spec
        return CoreTimingConfig(
            base_cpi=spec.base_cpi,
            icache_miss_rate=spec.icache_miss_rate,
            memory_parallelism=spec.memory_parallelism,
        )

    def supports(self, n_threads: int) -> bool:
        """Whether the application runs on ``n_threads`` threads."""
        if n_threads < 1:
            return False
        if self.spec.power_of_two_only:
            return n_threads & (n_threads - 1) == 0
        return True

    def compile_key(self, n_threads: int):
        """Identity of this model's op streams at ``n_threads``.

        The spec (a frozen dataclass, seed included) determines every
        generated op, so (spec, thread count) keys the
        :class:`repro.sim.ops.OpStreamCache` exactly.
        """
        return ("workload-model", self.spec, n_threads)

    def supported_thread_counts(self, candidates) -> List[int]:
        """Filter a candidate list down to supported thread counts."""
        return [n for n in candidates if self.supports(n)]

    def thread_ops(self, thread_id: int, n_threads: int) -> Iterator[tuple]:
        """The operation stream of one thread in an ``n_threads`` run.

        Deterministic in (spec.seed, thread_id, n_threads); every thread
        issues the same barrier sequence, as the simulator requires.
        """
        spec = self.spec
        if not self.supports(n_threads):
            raise WorkloadError(
                f"{spec.name} does not run on {n_threads} threads"
            )
        if not 0 <= thread_id < n_threads:
            raise WorkloadError(f"thread id {thread_id} out of range")

        rng = random.Random(f"{spec.seed}/{thread_id}/{n_threads}")
        private_slice = max(_STRIDE * 64, spec.total_private_bytes // n_threads)
        private_base = _PRIVATE_BASE + thread_id * (private_slice + (1 << 30))
        hot_base = private_base + private_slice + (1 << 20)
        private_cursor = private_base
        shared_cursor = _SHARED_BASE + rng.randrange(0, spec.shared_bytes)
        barrier_counter = 0
        phase_instructions = spec.total_instructions / spec.n_phases
        # Compute-burst length between memory operations.
        burst = max(1, round((1.0 - spec.mem_ratio) / spec.mem_ratio))

        def next_address() -> int:
            nonlocal private_cursor, shared_cursor
            if rng.random() < spec.shared_fraction:
                if rng.random() < spec.locality:
                    shared_cursor = _SHARED_BASE + (
                        (shared_cursor + _STRIDE - _SHARED_BASE) % spec.shared_bytes
                    )
                else:
                    shared_cursor = _SHARED_BASE + self._shared_jump(
                        rng, thread_id, n_threads
                    )
                return shared_cursor
            if rng.random() < spec.hot_fraction:
                return hot_base + rng.randrange(0, spec.hot_bytes)
            if rng.random() < spec.locality:
                private_cursor = private_base + (
                    (private_cursor + _STRIDE - private_base) % private_slice
                )
            else:
                private_cursor = private_base + rng.randrange(0, private_slice)
            return private_cursor

        def emit_work(n_instructions: float, allow_critical: bool):
            """Yield compute/memory ops totalling ~n_instructions."""
            n_mem = max(1, round(n_instructions * spec.mem_ratio))
            critical_every = 0
            if allow_critical and spec.critical_sections_per_phase:
                critical_every = max(1, n_mem // spec.critical_sections_per_phase)
            for i in range(n_mem):
                yield (OP_COMPUTE, burst)
                if critical_every and (i + 1) % critical_every == 0:
                    lock_id = rng.randrange(spec.n_locks)
                    yield (
                        OP_CRITICAL,
                        lock_id,
                        spec.critical_instructions,
                        _LOCK_BASE + lock_id * 128,
                    )
                elif rng.random() < spec.write_fraction:
                    yield (OP_STORE, next_address())
                else:
                    yield (OP_LOAD, next_address())

        # Initialization (untimed when the harness passes
        # ``warmup_barriers=1``, reproducing the paper's "skip
        # initialization" methodology): sweep the hot set line by line and
        # run one phase's worth of work to warm the caches.
        for offset in range(0, spec.hot_bytes, 64):
            yield (OP_LOAD, hot_base + offset)
        warm_share = phase_instructions * (1.0 - spec.serial_fraction) / n_threads
        if warm_share >= 1.0:
            yield from emit_work(warm_share, allow_critical=False)
        yield (OP_BARRIER, barrier_counter)
        barrier_counter += 1

        for phase in range(spec.n_phases):
            # Iterative codes re-walk their data every phase: restart the
            # streaming cursor so later phases reuse whatever cache level
            # holds the slice.
            private_cursor = private_base
            serial_work = phase_instructions * spec.serial_fraction
            if serial_work >= 1.0 and n_threads > 1:
                if thread_id == 0:
                    yield from emit_work(serial_work, allow_critical=False)
                yield (OP_BARRIER, barrier_counter)
                barrier_counter += 1
            elif thread_id == 0 and serial_work >= 1.0:
                yield from emit_work(serial_work, allow_critical=False)

            parallel_work = phase_instructions * (1.0 - spec.serial_fraction)
            share = parallel_work / n_threads
            share *= self._imbalance_factor(phase, thread_id, n_threads)
            if share >= 1.0:
                yield from emit_work(share, allow_critical=True)
            yield (OP_BARRIER, barrier_counter)
            barrier_counter += 1

    # -- internals -----------------------------------------------------------

    def _shared_jump(self, rng: random.Random, thread_id: int, n_threads: int) -> int:
        """A non-sequential target offset within the shared region."""
        spec = self.spec
        if spec.sharing_pattern == "blocked" and n_threads > 1:
            # Near-neighbour: mostly own block, sometimes the halo of a
            # neighbouring thread's block.
            block = spec.shared_bytes // n_threads
            if rng.random() < 0.85:
                base = thread_id * block
            else:
                neighbour = (thread_id + rng.choice((-1, 1))) % n_threads
                base = neighbour * block
            return (base + rng.randrange(0, max(block, _STRIDE))) % spec.shared_bytes
        return rng.randrange(0, spec.shared_bytes)

    def _imbalance_factor(self, phase: int, thread_id: int, n_threads: int) -> float:
        """Deterministic per-(phase, thread) work multiplier, mean ~1."""
        spec = self.spec
        if spec.imbalance == 0.0 or n_threads == 1:
            return 1.0
        wobble = random.Random(
            f"{spec.seed}/imbalance/{phase}/{thread_id}"
        ).uniform(-1.0, 1.0)
        return 1.0 + spec.imbalance * wobble
