"""Time-series counter sampling: bounded, named-channel timelines.

Spans (:mod:`repro.telemetry.trace`) say how long each phase took; the
:class:`CounterSampler` says what the *modelled chip* was doing while it
ran.  Instrumented sites deposit one ``(channel, value)`` reading per
interesting boundary — kernel window epilogues, power fixed-point
iterations, thermal solver steps, governor decisions — and the sweep
executor drains those readings into each point's
:class:`~repro.telemetry.record.PointTelemetry`, from where they reach
the run's ``timeline.jsonl`` artifact and the Perfetto counter tracks.

The sampler mirrors the Tracer's two hot-path properties:

* **Zero-allocation no-op when disabled.**  ``sampler.sample(...)`` on
  a disabled sampler is one attribute check — no timestamp read, no
  object created — so the simulator calls it unconditionally.
* **Bounded, preallocated memory when enabled.**  Readings land in
  three parallel columns preallocated to ``max_samples``; past the cap
  the sampler counts drops instead of growing, and the drop count
  feeds the ``sampler-overflow`` alert rule.

Sampling is *read-only* over the simulation: it observes finished
counters and never feeds anything back, so every simulated counter is
bitwise-identical whether sampling is enabled or not (pinned by the
differential suite in tests/telemetry).

Timestamps share the span timebase (absolute wall-clock microseconds,
fork-inherited anchor), so counter tracks line up with span rows in one
exported trace.  All clock reads live in this module — instrumented
``sim/``/``power/``/``thermal/`` code only passes values, which keeps
the determinism checker's wall-clock rule quiet without suppressions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping

from repro.telemetry.trace import _ANCHOR_NS
from repro.units import KILO


@dataclass(frozen=True)
class SampleRecord:
    """One counter reading, flattened for transport and persistence.

    Travels in :class:`~repro.telemetry.record.PointTelemetry` through
    the executor's outcome channel (and the result cache), and is the
    per-line payload of a run's ``timeline.jsonl``.
    """

    channel: str
    #: Absolute wall-clock microseconds on the span timebase.
    t_us: float
    value: float

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (the ``timeline.jsonl`` line payload)."""
        return {"channel": self.channel, "t_us": self.t_us, "value": self.value}

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "SampleRecord":
        """Inverse of :meth:`to_dict` (used by the exporters)."""
        return cls(
            channel=str(document["channel"]),
            t_us=float(document["t_us"]),
            value=float(document["value"]),
        )


class CounterSampler:
    """Collects counter readings for one process; bounded and drainable.

    A disabled sampler allocates no buffers; an enabled one preallocates
    its three columns once and never grows.  ``mark()``/``drain_since``
    let the executor's point wrapper take exactly the readings deposited
    during one evaluation window — readings outside any window (context
    calibration, governor loops run directly) stay on the sampler until
    the telemetry run's finalize drains them.
    """

    def __init__(self, enabled: bool = True, max_samples: int = 200_000) -> None:
        self.enabled = enabled
        self.max_samples = max_samples
        #: Readings currently buffered (the next write index).
        self.count = 0
        #: ``sample()`` calls refused because the buffer was full.
        self.dropped = 0
        capacity = max_samples if enabled else 0
        self._channels: List[str] = [""] * capacity
        self._times: List[float] = [0.0] * capacity
        self._values: List[float] = [0.0] * capacity

    # repro: hot
    def sample(self, channel: str, value: float) -> None:
        """Deposit one reading; no-op when disabled, counted when full."""
        if not self.enabled:
            return
        n = self.count
        if n >= self.max_samples:
            self.dropped += 1
            return
        self._channels[n] = channel
        self._times[n] = (time.perf_counter_ns() + _ANCHOR_NS) / KILO
        self._values[n] = value
        self.count = n + 1

    def mark(self) -> int:
        """Current buffer position, for a later :meth:`drain_since`."""
        return self.count

    def drain_since(self, mark: int) -> List[SampleRecord]:
        """Readings deposited after ``mark``; removes exactly those.

        Readings before ``mark`` (an inherited buffer in a forked
        worker, calibration readings in the coordinator) are left in
        place for whoever owns that earlier window to drain — this is
        what keeps fork-inherited readings from being double-counted
        by every worker's first point.
        """
        mark = max(0, min(mark, self.count))
        records = [
            SampleRecord(self._channels[i], self._times[i], self._values[i])
            for i in range(mark, self.count)
        ]
        self.count = mark
        return records

    def drain_records(self) -> List[SampleRecord]:
        """All buffered readings; clears the buffer."""
        return self.drain_since(0)

    def records(self) -> List[SampleRecord]:
        """A non-destructive snapshot of the buffered readings."""
        return [
            SampleRecord(self._channels[i], self._times[i], self._values[i])
            for i in range(self.count)
        ]

    def reset(self) -> None:
        """Drop all buffered readings and counters (keeps enabled state)."""
        self.count = 0
        self.dropped = 0


def channel_values(samples: Any) -> Dict[str, List[float]]:
    """Group sample values by channel, in sample order.

    Accepts any iterable of :class:`SampleRecord`-shaped objects; the
    CLI, the alert engine, and the equivalence tests all compare
    timelines through this view (values, not timestamps — replayed
    cache samples keep their original timestamps).
    """
    grouped: Dict[str, List[float]] = {}
    for record in samples:
        grouped.setdefault(record.channel, []).append(record.value)
    return grouped


#: The process-wide sampler every instrumented module consults.
#: Disabled by default: the no-op path costs one attribute check.
_SAMPLER = CounterSampler(enabled=False)


# repro: hot
def get_sampler() -> CounterSampler:
    """The process-wide sampler."""
    return _SAMPLER


def set_sampler(sampler: CounterSampler) -> CounterSampler:
    """Replace the process-wide sampler; returns the previous one."""
    global _SAMPLER
    previous, _SAMPLER = _SAMPLER, sampler
    return previous


def enable_sampling(max_samples: int = 200_000) -> CounterSampler:
    """Install (and return) an enabled process-wide sampler."""
    return_value = CounterSampler(enabled=True, max_samples=max_samples)
    set_sampler(return_value)
    return return_value


def disable_sampling() -> None:
    """Install a disabled process-wide sampler (the default state)."""
    set_sampler(CounterSampler(enabled=False))


def sample(channel: str, value: float) -> None:
    """Deposit one reading on the process-wide sampler (no-op when disabled)."""
    _SAMPLER.sample(channel, value)
