"""Worklist fixpoint over the call graph for per-function summaries.

The checkers need *summaries*: one abstract fact per function (the unit
of its return value, the set of nondeterminism sources it transitively
reaches) whose definition refers to the summaries of its callees.  The
classic solution is a monotone worklist fixpoint:

1. start every node at a caller-supplied ``bottom``;
2. recompute a node's summary from the current summaries;
3. when it changed, requeue the node's *callers* (their inputs moved);
4. stop when no summary changes.

The solver is deliberately generic — the summary type is opaque; only
equality is consulted.  Callers guarantee their transfer function is
*monotone on a finite-height domain* (taint sets only grow; unit
summaries move at most known → conflict), which is what makes the
fixpoint terminate and makes the result independent of worklist order
(it is the least fixpoint).  Both properties are asserted by the
hypothesis tests in ``tests/analysis/test_dataflow.py``.

A divergence guard turns a non-monotone transfer (an analyzer bug, not
a property of analyzed code) into :class:`FixpointDiverged` instead of
a hang.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    FrozenSet,
    Mapping,
    Optional,
    Sequence,
    Set,
    TypeVar,
)

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.index import FunctionInfo

S = TypeVar("S")

#: Re-evaluations allowed per node before the solver declares the
#: transfer non-monotone.  Every real domain here has height ≤ a few
#: dozen (taint kinds, unit states); 256 is far beyond any of them.
MAX_UPDATES_PER_NODE = 256


class FixpointDiverged(RuntimeError):
    """The transfer function failed to reach a fixpoint.

    Raised when some node is re-evaluated more than
    :data:`MAX_UPDATES_PER_NODE` times — possible only for a
    non-monotone transfer or an unbounded summary domain, both analyzer
    bugs.
    """


def solve_summaries(
    graph: CallGraph,
    transfer: Callable[[str, FunctionInfo, Mapping[str, S]], S],
    bottom: S,
    order: Optional[Sequence[str]] = None,
    include_refs: bool = False,
) -> Dict[str, S]:
    """Least fixpoint of ``transfer`` over every node of ``graph``.

    ``transfer(nid, info, summaries)`` computes one node's summary from
    the current summary map (it reads its callees' entries; every node
    always has one, starting at ``bottom``).  ``order`` seeds the
    initial worklist — any permutation of the node ids yields the same
    result for a monotone transfer; the parameter exists so the
    order-independence property is *testable*, not so callers can tune
    it.  ``include_refs`` controls whether a changed summary also
    requeues ref-edge (function-as-value) callers.
    """
    node_ids = sorted(graph.nodes)
    if order is not None:
        ordered = [nid for nid in order if nid in graph.nodes]
        ordered.extend(nid for nid in node_ids if nid not in set(ordered))
    else:
        ordered = node_ids

    summaries: Dict[str, S] = {nid: bottom for nid in node_ids}
    worklist: Deque[str] = deque(ordered)
    queued: Set[str] = set(ordered)
    updates: Dict[str, int] = {}

    while worklist:
        nid = worklist.popleft()
        queued.discard(nid)
        new = transfer(nid, graph.nodes[nid], summaries)
        if new == summaries[nid]:
            continue
        count = updates.get(nid, 0) + 1
        if count > MAX_UPDATES_PER_NODE:
            raise FixpointDiverged(
                f"summary of {graph.qualname(nid)} changed {count} times; "
                "transfer function is not monotone on a finite domain"
            )
        updates[nid] = count
        summaries[nid] = new
        for caller in graph.callers.get(nid, ()):
            if caller in queued:
                continue
            if not include_refs and not _has_call_edge(graph, caller, nid):
                continue
            worklist.append(caller)
            queued.add(caller)
    return summaries


def _has_call_edge(graph: CallGraph, caller: str, target: str) -> bool:
    """Whether ``caller`` reaches ``target`` through a real call edge."""
    return any(
        edge.target == target and edge.kind == "call"
        for edge in graph.edges.get(caller, ())
    )


def join_sets(values: Sequence[FrozenSet[str]]) -> FrozenSet[str]:
    """Union join for set-valued summaries (the taint domain)."""
    out: FrozenSet[str] = frozenset()
    for value in values:
        out = out | value
    return out
