"""Clock domains: the DVFS-scaled chip clock versus wall-clock memory.

All simulator time is integer **picoseconds**.  The chip clock converts
cycle counts to picoseconds at the current DVFS frequency; off-chip
memory latency is specified directly in nanoseconds and does *not* move
with the chip clock (Section 3.1: "a round trip to memory takes the same
amount of time regardless of the voltage/frequency scaling applied on
chip").
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.units import GIGA, KILO

#: Picoseconds per second.
PS_PER_S = 1_000_000_000_000


class ClockDomain:
    """A clock domain with cycle<->picosecond conversion."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        self.frequency_hz = frequency_hz
        #: Period in picoseconds (rounded; 3.2 GHz -> 312 ps).
        self.period_ps = max(1, round(PS_PER_S / frequency_hz))

    def cycles_to_ps(self, cycles: float) -> int:
        """Convert a cycle count to integer picoseconds."""
        return int(round(cycles * self.period_ps))

    def ps_to_cycles(self, ps: int) -> float:
        """Convert picoseconds to (fractional) cycles."""
        return ps / self.period_ps

    def __repr__(self) -> str:
        return f"ClockDomain({self.frequency_hz / GIGA:.3f} GHz)"


def ns_to_ps(ns: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return int(round(ns * KILO))
