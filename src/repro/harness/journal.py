"""Crash-safe sweep journals: the write-ahead log behind ``--resume``.

The :class:`~repro.harness.executor.ResultCache` holds the *values* of
completed sweep points; what it cannot tell you is which run computed
them, which points failed (and how hard), or how far an interrupted
campaign got.  The journal records exactly that: one JSONL file per run
id, written alongside the cache under ``<cache>/journal/``, with a
header line followed by one entry per completed point — appended and
flushed as each point finishes, so a crash or Ctrl-C loses at most the
point in flight.

Resume semantics (``repro fig1 --cache DIR --resume RUN_ID``):

* points journalled ``ok`` (or failed with a *deterministic* library
  error) were persisted to the cache and replay from it — bitwise
  identical to an uninterrupted run;
* points journalled ``failed`` with a retryable error (a crash, a
  timeout, an injected fault) were *not* cached, so the resumed run
  re-attempts them from scratch;
* points never journalled are evaluated as usual.

The file format is append-only and torn-tail tolerant: a line truncated
by a crash mid-write is ignored on load (the cache, not the journal, is
the source of truth for values).  Entries for the same key supersede
earlier ones, so a resumed run's journal reads as the final state of
every point it ever touched.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

JOURNAL_SCHEMA = "repro-journal-v1"

#: Subdirectory of a cache root that holds the per-run journals.
JOURNAL_DIRNAME = "journal"


@dataclass(frozen=True)
class FailedPointRow:
    """A quarantined or failed sweep point, as a storable result row.

    Degraded campaigns persist these next to their ordinary rows so a
    partial store is explicit about what is missing and why, instead of
    silently narrower.
    """

    key: str
    index: int
    error_type: str
    message: str
    attempts: int
    #: Whether a retry (e.g. on resume) may succeed — true for crashes,
    #: timeouts, and injected faults; false for deterministic physics.
    retryable: bool


@dataclass(frozen=True)
class JournalEntry:
    """One completed point's journal record."""

    key: str
    status: str  # "ok" | "failed"
    attempts: int = 1
    cached: bool = False
    error_type: Optional[str] = None
    retryable: bool = False
    wall_s: float = 0.0

    def __post_init__(self) -> None:
        if self.status not in ("ok", "failed"):
            raise ConfigurationError(
                f"journal entry status must be 'ok' or 'failed', "
                f"not {self.status!r}"
            )


def journal_dir(cache_root: PathLike) -> Path:
    """The journal directory belonging to a cache root."""
    return Path(cache_root) / JOURNAL_DIRNAME


def journal_path(cache_root: PathLike, run_id: str) -> Path:
    """The journal file for one run id under a cache root."""
    if not run_id or "/" in run_id or run_id.startswith("."):
        raise ConfigurationError(f"invalid run id {run_id!r}")
    return journal_dir(cache_root) / f"{run_id}.jsonl"


def list_run_ids(cache_root: PathLike) -> List[str]:
    """Run ids with a journal under this cache root, oldest first.

    Run ids embed a UTC timestamp, so lexicographic order is
    chronological.
    """
    directory = journal_dir(cache_root)
    if not directory.is_dir():
        return []
    return sorted(p.stem for p in directory.glob("*.jsonl"))


def new_run_id() -> str:
    """A fresh run id: UTC timestamp plus pid, like the telemetry runs."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return f"{stamp}-{os.getpid()}"


def load_journal(path: PathLike) -> Tuple[Dict[str, Any], Dict[str, JournalEntry]]:
    """Read a journal back: ``(header, latest entry per key)``.

    The header line must parse and carry the supported schema; entry
    lines that fail to parse (a torn tail from a crash mid-write) are
    skipped — the cache is the source of truth for values, the journal
    only for progress.
    """
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        raise ConfigurationError(f"{path}: unreadable journal ({exc})") from exc
    if not lines:
        raise ConfigurationError(f"{path}: empty journal (no header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"{path}: malformed journal header ({exc})"
        ) from exc
    if not isinstance(header, dict) or header.get("schema") != JOURNAL_SCHEMA:
        raise ConfigurationError(
            f"{path}: unsupported journal schema "
            f"{header.get('schema') if isinstance(header, dict) else header!r}"
        )
    entries: Dict[str, JournalEntry] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            raw = json.loads(line)
            entry = JournalEntry(
                key=str(raw["key"]),
                status=str(raw["status"]),
                attempts=int(raw.get("attempts", 1)),
                cached=bool(raw.get("cached", False)),
                error_type=raw.get("error_type"),
                retryable=bool(raw.get("retryable", False)),
                wall_s=float(raw.get("wall_s", 0.0)),
            )
        except (json.JSONDecodeError, ConfigurationError, KeyError,
                TypeError, ValueError):
            # Torn or foreign line — progress lost, correctness kept.
            continue
        entries[entry.key] = entry
    return header, entries


class SweepJournal:
    """Append-only progress log for one sweep run.

    Created by the CLI whenever a cache is configured; the executor
    calls :meth:`record` once per completed point (flushed immediately).
    Opening with ``resume=True`` loads the prior entries first and keeps
    appending to the same file.
    """

    def __init__(
        self,
        cache_root: PathLike,
        run_id: Optional[str] = None,
        command: str = "sweep",
        resume: bool = False,
    ) -> None:
        self.run_id = run_id or new_run_id()
        self.command = command
        self.path = journal_path(cache_root, self.run_id)
        self.completed: Dict[str, JournalEntry] = {}
        exists = self.path.exists()
        if resume:
            if not exists:
                known = ", ".join(list_run_ids(cache_root)) or "none"
                raise ConfigurationError(
                    f"no journal for run {self.run_id!r} under "
                    f"{journal_dir(cache_root)} (known runs: {known})"
                )
            header, self.completed = load_journal(self.path)
            recorded = header.get("command")
            if recorded and recorded != command:
                raise ConfigurationError(
                    f"run {self.run_id!r} was a {recorded!r} sweep; "
                    f"refusing to resume it as {command!r}"
                )
        elif exists:
            # A fresh run never appends to an old journal: uniquify the
            # id (run ids embed only second-resolution timestamps, so
            # quick back-to-back sweeps would otherwise collide).
            base = self.run_id
            serial = 2
            while self.path.exists():
                self.run_id = f"{base}-{serial}"
                self.path = journal_path(cache_root, self.run_id)
                serial += 1
            exists = False
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle: Optional[TextIO] = self.path.open(
                "a", encoding="utf-8"
            )
        except OSError as exc:
            raise ConfigurationError(
                f"cannot open journal {self.path}: {exc}"
            ) from exc
        if not exists:
            self._write_line(
                {
                    "schema": JOURNAL_SCHEMA,
                    "run_id": self.run_id,
                    "command": command,
                }
            )

    def record(self, entry: JournalEntry) -> None:
        """Append one completed point (write-ahead: flushed before return)."""
        self.completed[entry.key] = entry
        document = {"key": entry.key, "status": entry.status}
        document.update(
            {
                name: value
                for name, value in asdict(entry).items()
                if name not in ("key", "status")
            }
        )
        self._write_line(document)

    def counts(self) -> Dict[str, int]:
        """``{"ok": ..., "failed": ...}`` over the latest entry per key."""
        summary = {"ok": 0, "failed": 0}
        for entry in self.completed.values():
            summary[entry.status] += 1
        return summary

    def failed_rows(self) -> List[FailedPointRow]:
        """The journal's failed points as storable rows, key-sorted."""
        return [
            FailedPointRow(
                key=entry.key,
                index=-1,
                error_type=entry.error_type or "unknown",
                message="",
                attempts=entry.attempts,
                retryable=entry.retryable,
            )
            for key, entry in sorted(self.completed.items())
            if entry.status == "failed"
        ]

    def _write_line(self, document: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ConfigurationError(f"{self.path}: journal is closed")
        self._handle.write(json.dumps(document, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
