"""Scenario III — energy(-delay) optimization: an extension of the paper.

The paper optimises *power* at fixed performance (Scenario I) and
*performance* at fixed power (Scenario II).  Its related-work discussion
(the Thrifty Barrier [26], Kadayif et al. [21]) frames the same knobs in
terms of **energy**, which is the quantity a battery or an electricity
bill actually integrates.  This module closes that loop analytically:
for a given core count and efficiency, choose the operating point that
minimises

* ``E``        — total energy of the computation, or
* ``E * T^w``  — a weighted energy-delay product (w = 1 gives EDP,
  w = 2 ED^2P; w = 0 degenerates to pure energy).

Structure of the problem: running N cores at frequency ``f`` (voltage
from the alpha-power law) for the work's duration ``T(f) = T_ref * f1 /
(N eps_n f)``, the energy is::

    E(f) = [P_dyn(V(f), f) + P_static(V(f), T_die)] * T(f)

Dynamic energy per unit work falls as V^2 while static energy *rises* as
the run stretches out — so an interior optimum ("energy-optimal
frequency") exists whenever static power is non-negligible.  Below the
voltage floor only frequency falls, dynamic energy per work stops
improving, and stretching the run is pure static loss; the optimum never
sits below the floor-frequency knee unless leakage is zero.

The solver uses golden-section search over log-frequency (the objective
is unimodal in practice; the search brackets are the chip's legal range).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.efficiency import EfficiencyCurve
from repro.core.powermodel import AnalyticalChipModel, OperatingPoint
from repro.errors import ConfigurationError, ConvergenceError, InfeasibleOperatingPoint

#: Golden ratio constant for the section search.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class Scenario3Point:
    """One energy-optimal configuration."""

    n: int
    eps_n: float
    delay_weight: float
    operating_point: OperatingPoint
    #: Execution time relative to the 1-core nominal run.
    relative_time: float
    #: Energy relative to the 1-core nominal run.
    relative_energy: float

    @property
    def voltage(self) -> float:
        """Chip supply voltage (volts)."""
        return self.operating_point.voltage

    @property
    def frequency_hz(self) -> float:
        """Chip clock frequency (hertz)."""
        return self.operating_point.frequency_hz

    @property
    def relative_objective(self) -> float:
        """``E * T^w`` relative to the 1-core nominal run."""
        return self.relative_energy * self.relative_time ** self.delay_weight


class EnergyOptimizationScenario:
    """Energy / energy-delay optimization over the analytical model."""

    def __init__(
        self,
        chip: AnalyticalChipModel,
        delay_weight: float = 0.0,
        f_min_fraction: float = 0.02,
    ) -> None:
        if delay_weight < 0:
            raise ConfigurationError("delay_weight must be >= 0")
        if not 0.0 < f_min_fraction < 1.0:
            raise ConfigurationError("f_min_fraction must be in (0, 1)")
        self.chip = chip
        self.delay_weight = delay_weight
        #: Search floor: below a few percent of nominal frequency the
        #: run stretches so far that static energy diverges anyway.
        self.f_min_fraction = f_min_fraction
        self._reference = chip.reference_point()
        #: Reference energy: the 1-core nominal run over unit work.
        self._reference_energy = self._reference.power.total_w * 1.0

    @property
    def reference(self) -> OperatingPoint:
        """The 1-core nominal design point (T = 1, E = P1 by convention)."""
        return self._reference

    def _evaluate(self, n: int, eps_n: float, f_hz: float):
        """(objective, point, rel_time, rel_energy) at one frequency."""
        tech = self.chip.tech
        v = tech.voltage_for_frequency(f_hz)
        point = self.chip.equilibrium(n, v, f_hz)
        rel_time = tech.f_nominal / (n * eps_n * f_hz)
        rel_energy = point.power.total_w * rel_time / self._reference_energy
        objective = rel_energy * rel_time ** self.delay_weight
        return objective, point, rel_time, rel_energy

    def solve(self, n: int, eps_n: float) -> Scenario3Point:
        """The energy(-delay)-optimal operating point for ``n`` cores."""
        if n < 1 or n > self.chip.n_cores_max:
            raise ConfigurationError(
                f"n must be in [1, {self.chip.n_cores_max}], got {n}"
            )
        if eps_n <= 0:
            raise ConfigurationError("efficiency must be positive")
        tech = self.chip.tech

        # Golden-section search on log(f); the objective is unimodal:
        # dynamic energy/work falls with f down to the voltage floor,
        # static energy grows as 1/f.
        lo = math.log(tech.f_nominal * self.f_min_fraction)
        hi = math.log(tech.f_nominal)

        def objective(log_f: float) -> float:
            try:
                return self._evaluate(n, eps_n, math.exp(log_f))[0]
            except ConvergenceError:
                return float("inf")

        a, b = lo, hi
        c = b - _INVPHI * (b - a)
        d = a + _INVPHI * (b - a)
        fc, fd = objective(c), objective(d)
        for _ in range(100):
            if fc < fd:
                b, d, fd = d, c, fc
                c = b - _INVPHI * (b - a)
                fc = objective(c)
            else:
                a, c, fc = c, d, fd
                d = a + _INVPHI * (b - a)
                fd = objective(d)
            if b - a < 1e-10:
                break
        best_log_f = c if fc < fd else d
        obj, point, rel_time, rel_energy = self._evaluate(
            n, eps_n, math.exp(best_log_f)
        )
        if not math.isfinite(obj):
            raise InfeasibleOperatingPoint(
                f"no thermally stable operating point for N={n}"
            )
        return Scenario3Point(
            n=n,
            eps_n=eps_n,
            delay_weight=self.delay_weight,
            operating_point=point,
            relative_time=rel_time,
            relative_energy=rel_energy,
        )

    def energy_curve(
        self,
        efficiency: EfficiencyCurve,
        n_values: Iterable[int],
    ) -> List[Scenario3Point]:
        """Energy-optimal points across core counts (the extension's
        analogue of Figure 2: how does the best achievable energy scale
        with granularity?)."""
        points: List[Scenario3Point] = []
        for n in n_values:
            try:
                points.append(self.solve(n, efficiency(n)))
            except InfeasibleOperatingPoint:
                continue
        return points

    def best_configuration(
        self,
        efficiency: EfficiencyCurve,
        candidates: Iterable[int],
    ) -> Scenario3Point:
        """The candidate N with the lowest ``E * T^w``."""
        best: Optional[Scenario3Point] = None
        for n in candidates:
            try:
                point = self.solve(n, efficiency(n))
            except InfeasibleOperatingPoint:
                continue
            if best is None or point.relative_objective < best.relative_objective:
                best = point
        if best is None:
            raise InfeasibleOperatingPoint("no feasible candidate configuration")
        return best
