"""Analysis driver: run every checker, apply suppressions, report.

:func:`analyze_tree` is the single entry point the CLI, tests, and
benchmarks share.  It parses the tree once
(:func:`repro.analysis.index.build_index`), runs the four checker
families, drops findings covered by inline ``# repro: allow[...]``
suppressions, and returns a sorted :class:`AnalysisReport`.

The report has a stable JSON document form (``repro check --format
json``) validated by :func:`validate_report_document` — the same
required-keys-with-types idiom the telemetry manifest uses — so
downstream tooling can consume it without guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis import (
    determinism,
    dimensions,
    forksafety,
    hotpath,
    picklability,
    taint,
    unitcheck,
)
from repro.analysis.findings import Finding, Rule
from repro.analysis.flow import build_call_graph
from repro.analysis.index import TreeIndex, build_index
from repro.analysis.source import SourceError, SourceFile
from repro.errors import ConfigurationError

REPORT_SCHEMA = "repro-analysis-report-v1"

#: Every rule the analyzer knows, in report order.
RULES: Tuple[Rule, ...] = (
    Rule(
        id="DET-WALLCLOCK",
        family="determinism",
        severity="error",
        summary="wall-clock read inside simulation/model code",
    ),
    Rule(
        id="DET-RANDOM",
        family="determinism",
        severity="error",
        summary="unseeded random number source",
    ),
    Rule(
        id="DET-SET-ORDER",
        family="determinism",
        severity="warning",
        summary="iteration over an unordered set/dict view",
    ),
    Rule(
        id="DET-FLOAT-SUM",
        family="determinism",
        severity="warning",
        summary="float sum over an order-unstable iterable",
    ),
    Rule(
        id="UNIT-MIXED",
        family="units",
        severity="error",
        summary="arithmetic mixes values of different unit suffixes",
    ),
    Rule(
        id="UNIT-MAGIC",
        family="units",
        severity="warning",
        summary="bare scale constant applied to a unit-suffixed value",
    ),
    Rule(
        id="UNIT-ARG",
        family="units",
        severity="error",
        summary="call-site unit suffix mismatch against parameter name",
    ),
    Rule(
        id="HOT-ALLOC",
        family="hotpath",
        severity="warning",
        summary="per-iteration allocation in a hot function",
    ),
    Rule(
        id="HOT-GETATTR",
        family="hotpath",
        severity="warning",
        summary="dynamic attribute dispatch in a hot function",
    ),
    Rule(
        id="HOT-TRY",
        family="hotpath",
        severity="warning",
        summary="try/except inside a hot loop",
    ),
    Rule(
        id="HOT-FORMAT",
        family="hotpath",
        severity="warning",
        summary="string formatting or logging in a hot function",
    ),
    Rule(
        id="PICK-NESTED",
        family="picklability",
        severity="error",
        summary="pickled class is not module-level",
    ),
    Rule(
        id="PICK-SLOTS",
        family="picklability",
        severity="warning",
        summary="pickled class has neither __slots__ nor @dataclass",
    ),
    Rule(
        id="PICK-LAMBDA",
        family="picklability",
        severity="error",
        summary="lambda stored on a pickled class",
    ),
    Rule(
        id="DIM-MISMATCH",
        family="dimensions",
        severity="error",
        summary="arithmetic combines incompatible physical quantities",
    ),
    Rule(
        id="DIM-RETURN",
        family="dimensions",
        severity="error",
        summary="return value contradicts the function's unit suffix",
    ),
    Rule(
        id="DIM-EXP",
        family="dimensions",
        severity="warning",
        summary="united quantity raised to a non-integer power",
    ),
    Rule(
        id="FORK-GLOBAL-WRITE",
        family="forksafety",
        severity="error",
        summary="worker-reachable write to module-level mutable state",
    ),
    Rule(
        id="FORK-LAZY-INIT",
        family="forksafety",
        severity="warning",
        summary="lazy global initialization in a worker-reachable path",
    ),
    Rule(
        id="FORK-UNPICKLED-STATE",
        family="forksafety",
        severity="warning",
        summary="worker reads state only the coordinator ever writes",
    ),
    Rule(
        id="ALLOW-UNUSED",
        family="suppressions",
        severity="warning",
        summary="inline suppression comment matches no finding",
    ),
)

RULE_IDS: Tuple[str, ...] = tuple(rule.id for rule in RULES)

_RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in RULES}


def rule_by_id(rule_id: str) -> Rule:
    """The :class:`Rule` for ``rule_id``; raises on unknown ids."""
    try:
        return _RULES_BY_ID[rule_id.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown rule id {rule_id!r}; known: {', '.join(RULE_IDS)}"
        ) from None


@dataclass(frozen=True)
class AnalysisOptions:
    """What to analyze and which rules to run."""

    root: Path
    #: Restrict to these rule ids (empty = all rules).
    rules: Tuple[str, ...] = ()
    #: Restrict to these files, relative to ``root`` (None = whole tree).
    rel_paths: Optional[Tuple[str, ...]] = None

    def selected(self, rule_id: str) -> bool:
        if not self.rules:
            return True
        return rule_id in self.rules


@dataclass(frozen=True)
class AnalysisReport:
    """The outcome of one analysis run."""

    root: str
    file_count: int
    rules_run: Tuple[str, ...]
    findings: Tuple[Finding, ...]
    errors: Tuple[SourceError, ...] = ()
    #: Findings dropped by inline ``# repro: allow[...]`` comments.
    suppressed: Tuple[Finding, ...] = ()

    @property
    def ok(self) -> bool:
        """No findings and every file parsed."""
        return not self.findings and not self.errors

    def to_document(self) -> Dict[str, Any]:
        """JSON document form (``repro check --format json``)."""
        return {
            "schema": REPORT_SCHEMA,
            "root": self.root,
            "file_count": self.file_count,
            "rules_run": list(self.rules_run),
            "finding_count": len(self.findings),
            "suppressed_count": len(self.suppressed),
            "findings": [finding.to_dict() for finding in self.findings],
            "errors": [
                {"path": error.rel, "message": error.message}
                for error in self.errors
            ],
        }


#: Required top-level keys of the JSON report and their types — same
#: validation idiom as the telemetry manifest.
_REPORT_REQUIRED: Dict[str, type] = {
    "schema": str,
    "root": str,
    "file_count": int,
    "rules_run": list,
    "finding_count": int,
    "suppressed_count": int,
    "findings": list,
    "errors": list,
}

_FINDING_REQUIRED: Dict[str, type] = {
    "rule": str,
    "path": str,
    "line": int,
    "severity": str,
    "message": str,
    "snippet": str,
}


def validate_report_document(document: Mapping[str, Any]) -> List[str]:
    """Schema problems of a JSON report document (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, Mapping):
        return ["report must be a JSON object"]
    for key, expected in _REPORT_REQUIRED.items():
        if key not in document:
            problems.append(f"missing key: {key}")
        elif not isinstance(document[key], expected):
            problems.append(
                f"key {key}: expected {expected.__name__}, "
                f"got {type(document[key]).__name__}"
            )
    if problems:
        return problems
    if document["schema"] != REPORT_SCHEMA:
        problems.append(f"unknown schema {document['schema']!r}")
    for position, raw in enumerate(document["findings"]):
        if not isinstance(raw, Mapping):
            problems.append(f"findings[{position}]: not an object")
            continue
        for key, expected in _FINDING_REQUIRED.items():
            if key not in raw:
                problems.append(f"findings[{position}]: missing key {key}")
            elif not isinstance(raw[key], expected):
                problems.append(
                    f"findings[{position}].{key}: expected {expected.__name__}"
                )
        rule_id = raw.get("rule")
        if isinstance(rule_id, str) and rule_id not in _RULES_BY_ID:
            problems.append(f"findings[{position}]: unknown rule {rule_id!r}")
    if document["finding_count"] != len(document["findings"]):
        problems.append("finding_count does not match findings length")
    return problems


def _run_checkers(index: TreeIndex) -> List[Finding]:
    # The call graph is built once and shared by every interprocedural
    # checker (dimensions, transitive taint, fork safety).
    graph = build_call_graph(index)
    findings: List[Finding] = []
    findings.extend(determinism.check(index))
    findings.extend(taint.check(index, graph))
    findings.extend(unitcheck.check(index))
    findings.extend(dimensions.check(index, graph))
    findings.extend(hotpath.check(index))
    findings.extend(picklability.check(index))
    findings.extend(forksafety.check(index, graph))
    return findings


def _stale_suppressions(sources: Sequence[SourceFile]) -> List[Finding]:
    """ALLOW-UNUSED findings for comments that matched nothing.

    Only meaningful after a full-rule run: with a rule filter active,
    a comment for an unselected rule would look unused.  The caller
    gates on that.
    """
    findings: List[Finding] = []
    for source in sources:
        for comment_line in sorted(source.allows):
            for rule_id in sorted(source.allows[comment_line]):
                if (comment_line, rule_id) in source.used_allows:
                    continue
                findings.append(
                    Finding(
                        path=source.rel,
                        line=comment_line,
                        rule="ALLOW-UNUSED",
                        severity="warning",
                        message=(
                            f"suppression `# repro: allow[{rule_id}]` "
                            "matches no finding; drop the stale comment"
                        ),
                        snippet=source.snippet(comment_line),
                    )
                )
    return findings


def analyze_tree(options: AnalysisOptions) -> AnalysisReport:
    """Run the analyzer per ``options`` and return the report."""
    for rule_id in options.rules:
        rule_by_id(rule_id)  # validate early; raises on unknown ids
    rel_paths = list(options.rel_paths) if options.rel_paths is not None else None
    index = build_index(options.root, rel_paths)
    sources = {source.rel: source for source in index.files}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in _run_checkers(index):
        if not options.selected(finding.rule):
            continue
        source = sources.get(finding.path)
        if source is not None and source.allowed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    if not options.rules:
        # Stale-suppression detection needs the full usage picture: a
        # rule filter would make unselected rules' comments look stale.
        for finding in _stale_suppressions(index.files):
            source = sources.get(finding.path)
            if source is not None and source.allowed(finding.rule, finding.line):
                suppressed.append(finding)
            else:
                kept.append(finding)
    rules_run = options.rules if options.rules else RULE_IDS
    return AnalysisReport(
        root=str(options.root),
        file_count=len(index.files),
        rules_run=tuple(rules_run),
        findings=tuple(sorted(kept)),
        errors=tuple(sorted(index.errors, key=lambda e: e.rel)),
        suppressed=tuple(sorted(suppressed)),
    )


def format_text(
    report: AnalysisReport, new_findings: Optional[Sequence[Finding]] = None
) -> str:
    """Human-readable report, one finding per block.

    When ``new_findings`` is given (the post-baseline view), findings
    absorbed by the baseline are tagged so the reader can tell ratchet
    debt from regressions.
    """
    lines: List[str] = []
    new_set = None if new_findings is None else set(new_findings)
    for error in report.errors:
        lines.append(f"{error.rel}: PARSE-ERROR {error.message}")
    for finding in report.findings:
        tag = ""
        if new_set is not None:
            tag = " NEW" if finding in new_set else " (baselined)"
        lines.append(
            f"{finding.location}: {finding.rule} "
            f"[{finding.severity}]{tag} {finding.message}"
        )
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    shown = len(report.findings)
    new_count = shown if new_set is None else len(new_set)
    lines.append(
        f"{report.file_count} files analyzed, {shown} findings "
        f"({new_count} new, {len(report.suppressed)} suppressed inline)"
    )
    return "\n".join(lines) + "\n"


def default_baseline_path(root: Path) -> Path:
    """Where the committed baseline lives for an analyzed ``root``.

    The analyzed root is ``<repo>/src/repro``; the baseline is
    committed at ``<repo>/analysis/baseline.json``.  Falls back to
    ``analysis/baseline.json`` under the current directory when the
    layout does not match (e.g. analyzing a test fixture tree).
    """
    candidate = root.resolve().parent.parent / "analysis" / "baseline.json"
    if candidate.parent.parent.is_dir() and (
        candidate.exists() or (root.resolve().parent.name == "src")
    ):
        return candidate
    return Path("analysis") / "baseline.json"
