"""The max-power calibration microbenchmark (Section 3.3).

The paper uses "a compute-intensive microbenchmark to recreate a
quasi-maximum power consumption scenario at nominal voltage and frequency"
— the hook that connects Wattch's arbitrary wattage scale to HotSpot's
physically-anchored one.  This is that microbenchmark: maximum issue
activity (lowest CPI the core model supports), an L1-resident working
set so the pipeline never stalls, and no synchronisation.
"""

from __future__ import annotations

from repro.workloads.base import WorkloadModel, WorkloadSpec

KB = 1024


def max_power_microbenchmark(total_instructions: int = 120_000) -> WorkloadModel:
    """A workload that drives one core at quasi-maximum activity."""
    return WorkloadModel(
        WorkloadSpec(
            name="maxpower-ubench",
            problem_size="synthetic",
            total_instructions=total_instructions,
            mem_ratio=0.20,
            write_fraction=0.30,
            # Fits comfortably in the 64 KB L1: virtually all hits.
            total_private_bytes=16 * KB,
            shared_bytes=8 * KB,
            shared_fraction=0.0,
            locality=0.95,
            n_phases=1,
            base_cpi=0.50,
            icache_miss_rate=0.0,
            memory_parallelism=2.0,
            seed=999,
        )
    )
