"""Tests for the M/D/1 bus queueing cross-check."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.queueing import (
    analyse_bus_queueing,
    md1_mean_wait,
    saturation_core_count,
)
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


def run_app(app, n, scale=0.1):
    model = WorkloadModel(workload_by_name(app).spec.scaled(scale))
    chip = ChipMultiprocessor(CMPConfig())
    return chip.run(
        [model.thread_ops(t, n) for t in range(n)],
        model.core_timing(),
        warmup_barriers=model.warmup_barriers,
    )


class TestMD1:
    def test_zero_utilisation_zero_wait(self):
        assert md1_mean_wait(0.0, 100.0) == 0.0

    def test_wait_grows_superlinearly(self):
        w_half = md1_mean_wait(0.5, 100.0)
        w_090 = md1_mean_wait(0.9, 100.0)
        assert w_090 > 5 * w_half

    def test_known_value(self):
        # rho=0.5, S=100: W = 0.5*100 / (2*0.5) = 50.
        assert md1_mean_wait(0.5, 100.0) == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            md1_mean_wait(1.0, 10.0)
        with pytest.raises(ConfigurationError):
            md1_mean_wait(0.5, -1.0)


class TestSaturationEstimate:
    def test_back_of_envelope(self):
        # lambda = 0.0125 req/cycle, S = 6 cycles -> N* ~ 13.3.
        assert saturation_core_count(0.0125, 6.0) == pytest.approx(13.33, rel=0.01)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            saturation_core_count(0.0, 6.0)


class TestAnalysis:
    def test_low_load_negligible_wait(self):
        result = run_app("Water-Sp", 2)
        analysis = analyse_bus_queueing(result)
        assert analysis.utilisation < 0.5
        assert analysis.measured_mean_wait_ps < 2 * analysis.service_time_ps

    def test_high_load_waits_blow_up(self):
        light = analyse_bus_queueing(run_app("Water-Sp", 2))
        heavy = analyse_bus_queueing(run_app("Radix", 16))
        assert heavy.utilisation > light.utilisation
        assert heavy.measured_mean_wait_ps > light.measured_mean_wait_ps
        assert heavy.predicted_mean_wait_ps > light.predicted_mean_wait_ps

    def test_theory_and_simulation_same_order_of_magnitude(self):
        analysis = analyse_bus_queueing(run_app("Ocean", 8))
        if analysis.utilisation > 0.2:
            assert 0.1 < analysis.wait_ratio < 10.0

    def test_idle_bus_analysis(self):
        from repro.sim.ops import OP_COMPUTE

        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run([[(OP_COMPUTE, 1000)]])
        analysis = analyse_bus_queueing(result)
        assert analysis.utilisation == 0.0
        assert analysis.wait_ratio == 1.0
