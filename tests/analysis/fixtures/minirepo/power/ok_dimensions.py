"""Dimension-clean idioms (analyzer fixture; never imported).

The worked ED²P example from docs/ANALYSIS.md lives here: the product
``energy * delay**2`` carries W·s³ end to end, and the checker accepts
it because the compound name suffix ``_j_s2`` declares exactly that.
"""

GIGA = 1e9
ZERO_CELSIUS_IN_KELVIN = 273.15


def power_w(activity: float) -> float:
    return activity * 1.5


def delay_s(cycles: float) -> float:
    return cycles * 2.5e-10


def energy_j(activity: float, cycles: float) -> float:
    return power_w(activity) * delay_s(cycles)  # W * s == J


def ed2p_j_s2(activity: float, cycles: float) -> float:
    # Energy-delay-squared product: J * s^2 == W * s^3, matching the
    # compound `_j_s2` suffix.
    return energy_j(activity, cycles) * delay_s(cycles) ** 2


def to_hz(clock_ghz: float) -> float:
    return clock_ghz * GIGA  # named scale constant converts magnitude


def same_scale_sum_hz(a_hz: float, b_hz: float) -> float:
    return a_hz + b_hz  # same vector, same magnitude: clean


def to_kelvin(temperature_c: float) -> float:
    return temperature_c + ZERO_CELSIUS_IN_KELVIN  # offset converts C -> K


def squared_delay(cycles: float) -> float:
    d = delay_s(cycles)
    return d**2  # integer exponent: exact vector arithmetic
