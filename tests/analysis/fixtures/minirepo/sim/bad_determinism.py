"""Seeded determinism violations (analyzer fixture; never imported)."""

import random
import time
from time import perf_counter


def wallclock_reads() -> float:
    a = time.time()  # DET-WALLCLOCK
    b = time.perf_counter()  # DET-WALLCLOCK
    c = perf_counter()  # DET-WALLCLOCK (bare import)
    return a + b + c


def random_draws() -> float:
    value = random.random()  # DET-RANDOM (global RNG)
    rng = random.Random()  # DET-RANDOM (unseeded instance)
    return value + rng.random()


def set_iteration(cores: set) -> int:
    total = 0
    for core in cores:  # DET-SET-ORDER (annotated set parameter)
        total += core
    seen = {1, 2, 3}
    for item in seen:  # DET-SET-ORDER (set literal local)
        total += item
    return total


def float_sums(weights: dict) -> float:
    direct = sum({0.1, 0.2, 0.3})  # DET-FLOAT-SUM (set literal)
    view = sum(weights.values())  # DET-FLOAT-SUM (dict view)
    return direct + view
