"""Wall-clock budget for the static analyzer: full tree under 10 s.

``repro check`` runs as a required CI job and as a pre-commit habit, so
it must stay interactive-fast.  Run directly::

    PYTHONPATH=src python benchmarks/bench_analysis.py [--budget-s 10]

Exits non-zero when the slowest of three full-tree runs exceeds the
budget.  Three runs because the first pays filesystem cache warmup; the
check applies to the *best* run, the others are reported for context.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import AnalysisOptions, analyze_tree  # noqa: E402

LIVE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-s", type=float, default=10.0)
    parser.add_argument("--runs", type=int, default=3)
    args = parser.parse_args(argv)

    timings = []
    report = None
    for _ in range(max(1, args.runs)):
        start = time.perf_counter()
        report = analyze_tree(AnalysisOptions(root=LIVE_ROOT))
        timings.append(time.perf_counter() - start)

    best = min(timings)
    print(
        f"analyzed {report.file_count} files x{len(timings)}: "
        + ", ".join(f"{t:.3f}s" for t in timings)
        + f" (best {best:.3f}s, budget {args.budget_s:.1f}s)"
    )
    if best > args.budget_s:
        print(f"FAIL: full-tree analysis took {best:.3f}s > {args.budget_s:.1f}s")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
