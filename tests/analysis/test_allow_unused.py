"""Suppression hygiene: stale allows, decorator and multi-line coverage."""

from tests.analysis.conftest import findings_for


def test_stale_allow_is_flagged(fixture_report):
    stale = findings_for(fixture_report, "ALLOW-UNUSED")
    assert [(f.path, f.line) for f in stale] == [("sim/stale_allow.py", 8)]
    assert "DET-RANDOM" in stale[0].message


def test_matched_allows_are_never_reported_stale(fixture_report):
    # Every other fixture suppression is consumed by a real finding.
    stale_paths = {
        f.path for f in findings_for(fixture_report, "ALLOW-UNUSED")
    }
    assert "sim/suppressed.py" not in stale_paths
    assert "power/decorated_allow.py" not in stale_paths
    assert "sim/multiline_allow.py" not in stale_paths
    assert "harness/clocky.py" not in stale_paths


def test_allow_above_decorator_covers_the_def(fixture_report):
    suppressed = [
        (f.rule, f.path, f.line) for f in fixture_report.suppressed
    ]
    assert ("DIM-RETURN", "power/decorated_allow.py", 17) in suppressed
    assert not findings_for(
        fixture_report, "DIM-RETURN", "power/decorated_allow.py"
    )


def test_allow_covers_every_line_of_a_multiline_statement(fixture_report):
    covered = {
        f.line
        for f in fixture_report.suppressed
        if f.path == "sim/multiline_allow.py"
        and f.rule == "DET-WALLCLOCK"
    }
    # Both perf_counter reads sit on continuation lines of the tuple.
    assert covered == {14, 15}
    assert not findings_for(
        fixture_report, "DET-WALLCLOCK", "sim/multiline_allow.py"
    )


def test_rule_filtered_runs_skip_stale_detection():
    from repro.analysis import AnalysisOptions, analyze_tree

    from tests.analysis.conftest import FIXTURE_ROOT

    report = analyze_tree(
        AnalysisOptions(root=FIXTURE_ROOT, rules=("DET-WALLCLOCK",))
    )
    # A filtered run cannot see which other-rule allows matched, so it
    # must not declare any of them stale.
    assert not findings_for(report, "ALLOW-UNUSED")


def test_live_tree_has_no_stale_allows(live_report):
    assert not findings_for(live_report, "ALLOW-UNUSED")
