"""Tests for the analytical chip power model with thermal feedback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AnalyticalChipModel, PowerBreakdown
from repro.errors import ConfigurationError, ConvergenceError
from repro.tech import NODE_130NM, NODE_65NM
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module", params=["130nm", "65nm"])
def chip(request):
    node = {"130nm": NODE_130NM, "65nm": NODE_65NM}[request.param]
    return AnalyticalChipModel(node)


class TestConstruction:
    def test_defaults(self):
        chip = AnalyticalChipModel(NODE_65NM)
        assert chip.n_cores_max == 32
        assert chip.p1_watts == 60.0

    def test_static_dynamic_split_matches_node(self):
        chip = AnalyticalChipModel(NODE_65NM)
        ref = chip.reference_point()
        assert ref.power.static_fraction == pytest.approx(
            NODE_65NM.static_fraction_nominal, abs=1e-6
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AnalyticalChipModel(NODE_65NM, n_cores_max=0)
        with pytest.raises(ConfigurationError):
            AnalyticalChipModel(NODE_65NM, p1_watts=-5.0)
        with pytest.raises(ConfigurationError):
            AnalyticalChipModel(NODE_65NM, t1_celsius=40.0, ambient_celsius=45.0)


class TestReferencePoint:
    def test_design_point_self_consistent(self, chip):
        ref = chip.reference_point()
        # By construction: total power = p1, temperature = t1.
        assert ref.power.total_w == pytest.approx(chip.p1_watts, rel=1e-6)
        assert ref.temperature_celsius == pytest.approx(chip.t1_celsius, abs=1e-3)

    def test_reference_uses_nominal_vf(self, chip):
        ref = chip.reference_point()
        assert ref.voltage == chip.tech.vdd_nominal
        assert ref.frequency_hz == chip.tech.f_nominal


class TestChipPower:
    def test_dynamic_power_cubic_scaling(self, chip):
        # P_dyn ~ V^2 f; halving V at fixed f quarters dynamic power.
        tech = chip.tech
        f = tech.fmax(tech.v_min)
        full = chip.core_dynamic_power(tech.vdd_nominal, f)
        half_v = chip.core_dynamic_power(tech.vdd_nominal / 2, f)
        assert half_v == pytest.approx(full / 4)

    def test_dynamic_power_linear_in_frequency(self, chip):
        v = chip.tech.vdd_nominal
        assert chip.core_dynamic_power(v, 1e9) == pytest.approx(
            2 * chip.core_dynamic_power(v, 0.5e9)
        )

    def test_static_power_grows_with_temperature(self, chip):
        v = chip.tech.vdd_nominal
        cold = chip.core_static_power(v, celsius_to_kelvin(45))
        hot = chip.core_static_power(v, celsius_to_kelvin(100))
        assert hot > cold

    def test_chip_power_scales_with_active_cores(self, chip):
        tech = chip.tech
        t = celsius_to_kelvin(60)
        f = tech.fmax(tech.v_min)
        one = chip.chip_power(1, tech.v_min, f, t)
        four = chip.chip_power(4, tech.v_min, f, t)
        assert four.total_w == pytest.approx(4 * one.total_w)

    def test_breakdown_total(self):
        pb = PowerBreakdown(dynamic_w=30.0, static_w=10.0)
        assert pb.total_w == 40.0
        assert pb.static_fraction == 0.25

    def test_rejects_illegal_points(self, chip):
        tech = chip.tech
        with pytest.raises(ConfigurationError):
            chip.chip_power(0, tech.vdd_nominal, tech.f_nominal, 300.0)
        with pytest.raises(ConfigurationError):
            chip.chip_power(1, tech.v_min * 0.5, 1e9, 300.0)
        with pytest.raises(ConfigurationError):
            # Frequency beyond what the voltage sustains.
            chip.chip_power(1, tech.v_min, tech.f_nominal, 300.0)


class TestEquilibrium:
    def test_temperature_floor_at_deep_scaling(self, chip):
        tech = chip.tech
        point = chip.equilibrium(1, tech.v_min, tech.fmax(tech.v_min) * 0.01)
        # Nearly idle: temperature approaches (but never undercuts) ambient.
        assert point.temperature_celsius >= chip.ambient_celsius - 1e-9
        assert point.temperature_celsius < chip.ambient_celsius + 10.0

    def test_equilibrium_power_consistent_with_temperature(self, chip):
        tech = chip.tech
        point = chip.equilibrium(4, tech.v_min, tech.fmax(tech.v_min))
        recomputed = chip.chip_power(
            4, tech.v_min, tech.fmax(tech.v_min), point.temperature_k
        )
        assert recomputed.total_w == pytest.approx(point.power.total_w, rel=1e-6)

    def test_runaway_detected(self):
        chip = AnalyticalChipModel(NODE_130NM)
        tech = chip.tech
        with pytest.raises(ConvergenceError):
            # 32 cores at full throttle cannot be cooled by a package
            # calibrated for one.
            chip.equilibrium(32, tech.vdd_nominal, tech.f_nominal)

    @given(scale=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_power_monotone_in_frequency(self, scale):
        chip = AnalyticalChipModel(NODE_65NM)
        tech = chip.tech
        f = tech.fmax(tech.v_min) * scale
        low = chip.equilibrium(2, tech.v_min, f * 0.5)
        high = chip.equilibrium(2, tech.v_min, f)
        assert high.power.total_w >= low.power.total_w - 1e-9
