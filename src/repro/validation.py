"""Self-check: validate the reproduction's claims programmatically.

``repro verify`` runs a checklist of the shape claims recorded in
EXPERIMENTS.md — the same assertions the benchmarks enforce, packaged as
a quick, user-facing health check.  Each check returns a
:class:`CheckResult`; the CLI prints a pass/fail table and exits
non-zero on any failure.

Analytical checks run in seconds; the experimental group simulates a
reduced-scale subset and takes tens of seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one verification check."""

    name: str
    passed: bool
    detail: str
    seconds: float


def _check(name: str, fn: Callable[[], str]) -> CheckResult:
    start = time.perf_counter()
    try:
        detail = fn()
        return CheckResult(name, True, detail, time.perf_counter() - start)
    except AssertionError as exc:
        return CheckResult(name, False, str(exc), time.perf_counter() - start)


# -- analytical checks --------------------------------------------------------


def _leakage_fit() -> str:
    from repro.tech import NODE_130NM, NODE_65NM, default_leakage_multiplier

    errors = {}
    for node in (NODE_130NM, NODE_65NM):
        fit = default_leakage_multiplier(node)
        assert fit.max_error < 0.10, (
            f"{node.name} fit error {fit.max_error:.3f} exceeds the paper's band"
        )
        errors[node.name] = fit.max_error
    return ", ".join(f"{k}: max {v:.1%}" for k, v in errors.items())


def _figure1_shape() -> str:
    from repro.core import AnalyticalChipModel, PowerOptimizationScenario
    from repro.tech import NODE_130NM, NODE_65NM

    for node in (NODE_130NM, NODE_65NM):
        scenario = PowerOptimizationScenario(AnalyticalChipModel(node))
        powers = {n: scenario.solve(n, 1.0).normalized_power for n in (2, 4, 8, 16, 32)}
        assert all(p < 1.0 for p in powers.values()), (
            f"{node.name}: not all curves save power at eps=1: {powers}"
        )
        assert powers[32] > powers[16], f"{node.name}: static-cost ordering broken"
        assert scenario.breakeven_efficiency(8) < scenario.breakeven_efficiency(2)
    return "savings at eps=1 on every curve; breakeven falls with N"


def _figure2_shape() -> str:
    from repro.core import AnalyticalChipModel, figure2_sweep
    from repro.tech import NODE_130NM, NODE_65NM

    c130 = figure2_sweep(AnalyticalChipModel(NODE_130NM))
    c65 = figure2_sweep(AnalyticalChipModel(NODE_65NM))
    n130, s130 = c130.peak()
    n65, s65 = c65.peak()
    assert 4.0 < s130 < 5.0, f"130nm peak {s130:.2f} not 'a little over 4'"
    assert s65 < s130 and n65 <= n130, "65nm must peak lower and earlier"
    tail130 = dict(zip(c130.core_counts, c130.speedups))
    tail65 = dict(zip(c65.core_counts, c65.speedups))
    assert tail65[16] < tail130[16], "65nm must collapse below 130nm"
    return (
        f"130nm peak {s130:.2f}@N={n130}; 65nm peak {s65:.2f}@N={n65}, "
        "collapsing faster"
    )


def _table1_machine() -> str:
    from repro.area import CMPAreaModel, CactiModel
    from repro.area.cacti import L1_GEOMETRY, L2_GEOMETRY

    area = CMPAreaModel()
    assert abs(area.die_area_mm2() - 244.5) < 3.0, (
        f"die {area.die_area_mm2():.1f} mm^2 != Table 1's 244.5"
    )
    cacti = CactiModel(65.0)
    assert cacti.access_cycles(L1_GEOMETRY, 3.2e9) == 2
    assert cacti.access_cycles(L2_GEOMETRY, 3.2e9) == 12
    return f"die {area.die_area_mm2():.1f} mm^2; L1 2-cycle / L2 12-cycle"


def _scenario3_extension() -> str:
    from repro.core import AnalyticalChipModel, EnergyOptimizationScenario
    from repro.tech import NODE_65NM

    point = EnergyOptimizationScenario(AnalyticalChipModel(NODE_65NM)).solve(1, 1.0)
    assert point.relative_energy < 1.0, "energy optimum must beat nominal"
    return f"energy-optimal point saves {1 - point.relative_energy:.0%} energy"


# -- experimental checks -------------------------------------------------------


def _experimental_checks(scale: float) -> List[CheckResult]:
    from repro.harness import ExperimentContext, run_scenario1, run_scenario2
    from repro.workloads import workload_by_name

    results: List[CheckResult] = []
    start = time.perf_counter()
    context = ExperimentContext(workload_scale=scale)
    results.append(
        CheckResult(
            "experimental: calibration",
            True,
            f"max operational power {context.calibration.max_operational_power_w:.1f} W",
            time.perf_counter() - start,
        )
    )

    def fig3() -> str:
        rows = run_scenario1(
            context, [workload_by_name("FMM")], core_counts=(1, 2, 4, 8)
        )["FMM"]
        by_n = {r.n: r for r in rows}
        assert all(by_n[n].normalized_power < 1.0 for n in (2, 4, 8))
        assert all(by_n[n].actual_speedup >= 0.9 for n in (2, 4, 8))
        temps = [by_n[n].average_temperature_c for n in (1, 2, 4, 8)]
        assert all(b <= a + 0.5 for a, b in zip(temps, temps[1:]))
        return (
            f"FMM: power {by_n[8].normalized_power:.2f}x at N=8, "
            f"T {temps[0]:.0f}->{temps[-1]:.0f} C"
        )

    results.append(_check("experimental: Figure 3 shape (FMM)", fig3))

    def fig4() -> str:
        rows = run_scenario2(
            context, [workload_by_name("Radix")], core_counts=(1, 2, 4, 8)
        )["Radix"]
        for r in rows:
            assert r.power_w <= r.budget_w * 1.05
            assert r.runs_at_nominal, f"Radix throttled at N={r.n}"
        return "Radix at nominal V/f through N=8 under the budget"

    results.append(_check("experimental: Figure 4 shape (Radix)", fig4))
    return results


def run_verification(
    include_experimental: bool = True,
    scale: float = 0.15,
) -> List[CheckResult]:
    """Run the checklist; returns every check's result."""
    checks: List[CheckResult] = [
        _check("leakage curve fit within the paper's error band", _leakage_fit),
        _check("Table 1 machine (die size, cache latencies)", _table1_machine),
        _check("Figure 1 shape (analytical Scenario I)", _figure1_shape),
        _check("Figure 2 shape (analytical Scenario II)", _figure2_shape),
        _check("Scenario III extension sane", _scenario3_extension),
    ]
    if include_experimental:
        checks.extend(_experimental_checks(scale))
    return checks
