"""Parallel sweep execution with a memoizing, content-addressed cache.

Every figure in the paper is a sweep — over core count, nominal
efficiency, technology node, or workload — and every point in such a
sweep is independent of the others.  :class:`SweepExecutor` exploits
that: it fans point evaluations out over a
:class:`~concurrent.futures.ProcessPoolExecutor` (the simulator is pure
Python, so processes, not threads, are what buys wall-clock time) and
memoizes completed points in a content-addressed on-disk cache so that
re-running a campaign only evaluates points whose configuration changed.

Three guarantees the experiment pipelines rely on:

* **Determinism** — results come back in input order with input indices,
  regardless of process completion order, and a serial run (``jobs=1``)
  executes the exact same evaluation function, so parallel and serial
  campaigns are bitwise identical.
* **Per-point error capture** — a :class:`~repro.errors.ReproError`
  raised by one point (most commonly
  :class:`~repro.errors.InfeasibleOperatingPoint`) does not kill the
  campaign; it is recorded as a typed :class:`SweepFailure` row in that
  point's :class:`PointOutcome`.  Non-library exceptions still
  propagate — they indicate bugs, not infeasible physics.
* **Cache safety** — cache keys are SHA-256 digests of the point's
  canonicalised configuration plus the store's
  :data:`~repro.harness.schema.SCHEMA_VERSION`, so mutating a point's
  config or bumping the schema invalidates exactly the affected entries;
  a corrupted or truncated cache file is quarantined (renamed aside) and
  the point recomputed, never a crash.

The cache persists one JSON document per point, the same
schema-tagged layout as :mod:`repro.harness.store` uses for whole
campaigns; values must be flat (possibly nested) dataclasses of
JSON-representable leaves, which all the harness row types are.

On top of that sits the **fault-tolerance layer** (engaged only when a
:class:`RetryPolicy` with retries/deadline or a
:class:`~repro.harness.faults.FaultPlan` is configured): transient
failures — worker crashes, per-point deadline kills, injected faults,
exceptions escaping the library — are retried with deterministic
exponential backoff and finally *quarantined* as typed ``retryable``
failures, so a sweep completes with partial results instead of
aborting.  Retryable failures are never memoized; paired with the
:class:`~repro.harness.journal.SweepJournal` write-ahead log this gives
``--resume``: a re-run replays finished points from the cache bitwise
and re-attempts only the unfinished or crashed ones.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import ConfigurationError, ReproError, TransientError
from repro.harness.faults import FaultPlan, inject_fault
from repro.harness.journal import JournalEntry, SweepJournal
from repro.harness.schema import SCHEMA_VERSION
from repro.sim.ops import stream_cache
from repro.telemetry.record import (
    PointTelemetry,
    begin_point_capture,
    end_point_capture,
)
from repro.telemetry.timeseries import get_sampler
from repro.telemetry.trace import get_tracer, now_us

PathLike = Union[str, Path]

#: Marker key of the executor's JSON value encoding.
_KIND = "__repro__"


# ---------------------------------------------------------------------------
# Value codec: dataclasses / tuples / dicts <-> plain JSON.
# ---------------------------------------------------------------------------


def encode_value(value: Any) -> Any:
    """Encode a result value into plain JSON-serialisable data.

    Supports JSON scalars, lists, tuples, string-keyed dicts, and
    dataclass instances (recursively).  Dataclasses are tagged with
    their importable dotted path so :func:`decode_value` can rebuild
    them without a central registry.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        return {
            _KIND: "dataclass",
            "type": f"{cls.__module__}.{cls.__qualname__}",
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(cls)
            },
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        items = []
        for key, entry in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"cannot cache dict with non-string key {key!r}"
                )
            items.append([key, encode_value(entry)])
        return {_KIND: "dict", "items": items}
    raise ConfigurationError(f"cannot cache value of type {type(value).__name__}")


def _resolve_dataclass(dotted: str) -> type:
    """Import the dataclass named by an encoded ``module.QualName`` path."""
    if not isinstance(dotted, str) or not dotted.startswith("repro."):
        raise ConfigurationError(f"refusing to import cached type {dotted!r}")
    module_name, _, qualname = dotted.rpartition(".")
    # Qualnames may nest (``Outer.Inner``); walk from the module down.
    parts = qualname.split(".")
    while True:
        try:
            obj: Any = importlib.import_module(module_name)
            break
        except ModuleNotFoundError:
            module_name, _, head = module_name.rpartition(".")
            if not module_name:
                raise ConfigurationError(f"unknown cached type {dotted!r}")
            parts.insert(0, head)
    for part in parts:
        obj = getattr(obj, part)
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise ConfigurationError(f"cached type {dotted!r} is not a dataclass")
    return obj


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):
        return [decode_value(v) for v in encoded]
    if isinstance(encoded, dict):
        kind = encoded.get(_KIND)
        if kind == "tuple":
            return tuple(decode_value(v) for v in encoded["items"])
        if kind == "dict":
            return {key: decode_value(v) for key, v in encoded["items"]}
        if kind == "dataclass":
            cls = _resolve_dataclass(encoded["type"])
            fields = encoded["fields"]
            names = {f.name for f in dataclasses.fields(cls)}
            if set(fields) != names:
                raise ConfigurationError(
                    f"cached {encoded['type']} fields {sorted(fields)} do not "
                    "match the current dataclass"
                )
            return cls(**{name: decode_value(v) for name, v in fields.items()})
        raise ConfigurationError(f"malformed cache value: {encoded!r}")
    raise ConfigurationError(f"malformed cache value: {encoded!r}")


def _canonical(value: Any) -> Any:
    """Like :func:`encode_value` but order-normalised for stable hashing."""
    encoded = encode_value(value)

    def normalise(node: Any) -> Any:
        if isinstance(node, dict):
            if node.get(_KIND) == "dict":
                return {
                    _KIND: "dict",
                    "items": sorted(
                        [[k, normalise(v)] for k, v in node["items"]]
                    ),
                }
            return {key: normalise(v) for key, v in node.items()}
        if isinstance(node, list):
            return [normalise(v) for v in node]
        return node

    return normalise(encoded)


def config_key(config: Any, schema_version: Optional[int] = None) -> str:
    """Stable content hash of a point configuration.

    The digest covers the canonicalised config (dataclass type names,
    field names, and values — floats via their shortest ``repr``) plus
    the schema version, so either kind of change yields a new key.
    """
    version = SCHEMA_VERSION if schema_version is None else schema_version
    document = {"schema": version, "config": _canonical(config)}
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Outcomes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepFailure:
    """A typed per-point failure (the campaign itself carries on).

    ``retryable`` marks failures a re-attempt may resolve — worker
    crashes, deadline kills, injected faults, and (under a retry
    policy) escaped non-library exceptions.  Retryable failures are
    never persisted to the result cache, so a resumed run re-attempts
    them instead of replaying the failure.
    """

    error_type: str
    message: str
    retryable: bool = False

    def to_exception(self) -> ReproError:
        """Rebuild the original library exception (best effort)."""
        import repro.errors as errors_module

        cls = getattr(errors_module, self.error_type, None)
        if isinstance(cls, type) and issubclass(cls, ReproError):
            return cls(self.message)
        return ReproError(f"{self.error_type}: {self.message}")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each sweep point.

    The default policy — zero retries, no deadline — reproduces the
    historical all-or-nothing semantics exactly.  With ``max_retries``
    set, a point whose failure is *transient* (worker crash, deadline
    kill, injected fault, or any exception that escapes the library) is
    re-attempted up to ``max_retries`` times with exponential backoff;
    a point still failing after its last attempt is *quarantined*: its
    typed failure is recorded, the sweep completes with partial
    results.  Deterministic library failures (e.g. an infeasible
    operating point) are never retried — the physics will not change.

    ``point_timeout_s`` puts a wall-clock deadline on every attempt;
    enforcing it requires worker processes, so the executor runs its
    process lane (even at ``jobs=1``) whenever a deadline is set.
    """

    max_retries: int = 0
    point_timeout_s: Optional[float] = None
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ConfigurationError("point_timeout_s must be positive")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before re-attempting after 0-based
        ``attempt`` failed (no jitter: reproducibility beats thundering-
        herd smoothing at this fleet size)."""
        return min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor**attempt,
        )


@dataclass(frozen=True)
class PointOutcome:
    """One sweep point's result: its value or its typed failure."""

    index: int
    key: Optional[str]
    value: Any
    failure: Optional[SweepFailure] = None
    cached: bool = False
    #: Evaluation attempts this outcome took (1 = first try; cached
    #: replays report 1).
    attempts: int = 1
    #: What the evaluation reported about itself: evaluating pid, wall
    #: time, per-run kernel stats, span trees.  For cached outcomes this
    #: is the *original* evaluation's telemetry, replayed from the cache.
    telemetry: Optional[PointTelemetry] = None
    #: Which executor lane produced this outcome: ``inline`` (evaluated
    #: in the coordinator), ``pool`` (long-lived worker pool), ``farm``
    #: (fault-tolerant process-per-attempt), or ``cache`` (replayed).
    lane: str = "inline"

    @property
    def ok(self) -> bool:
        """Whether the point evaluated successfully."""
        return self.failure is None

    def unwrap(self) -> Any:
        """The value; re-raises the point's library error if it failed."""
        if self.failure is not None:
            raise self.failure.to_exception()
        return self.value


# ---------------------------------------------------------------------------
# The content-addressed cache.
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters one :class:`ResultCache` accumulates over its lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    quarantined: int = 0

    def summary(self) -> str:
        """One human-readable line (printed under ``--profile``)."""
        line = (
            f"[cache] {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores"
        )
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        return line


@dataclass(frozen=True)
class _CachedResult:
    value: Any
    failure: Optional[SweepFailure]
    telemetry: Optional[PointTelemetry] = None


class ResultCache:
    """One-JSON-file-per-point persistence keyed by content hash.

    The layout is flat: ``<root>/<sha256>.json``, each file a
    schema-tagged document like the campaign store's.  Files that fail
    to parse or validate are *quarantined* — renamed to
    ``*.quarantined`` so the evidence survives — and treated as misses.
    """

    def __init__(
        self, root: PathLike, schema_version: Optional[int] = None
    ) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.root} as a cache directory: {exc}"
            ) from exc
        self.schema_version = (
            SCHEMA_VERSION if schema_version is None else schema_version
        )
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """On-disk location of one cache entry."""
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[_CachedResult]:
        """Look one key up; ``None`` on miss (including quarantined files)."""
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            self.stats.misses += 1
            return None
        try:
            document = json.loads(text)
            if not isinstance(document, dict):
                raise ConfigurationError(f"{path}: not a cache document")
            if document.get("schema") != self.schema_version:
                raise ConfigurationError(
                    f"{path}: schema {document.get('schema')!r} != "
                    f"supported {self.schema_version}"
                )
            if document.get("key") != key:
                raise ConfigurationError(f"{path}: key mismatch")
            telemetry = None
            if "telemetry" in document:
                telemetry = decode_value(document["telemetry"])
                if telemetry is not None and not isinstance(
                    telemetry, PointTelemetry
                ):
                    raise ConfigurationError(f"{path}: malformed telemetry")
            status = document.get("status")
            if status == "ok":
                result = _CachedResult(
                    value=decode_value(document["value"]),
                    failure=None,
                    telemetry=telemetry,
                )
            elif status == "error":
                error = document["error"]
                result = _CachedResult(
                    value=None,
                    failure=SweepFailure(
                        error_type=str(error["type"]),
                        message=str(error["message"]),
                        retryable=bool(error.get("retryable", False)),
                    ),
                    telemetry=telemetry,
                )
            else:
                raise ConfigurationError(f"{path}: unknown status {status!r}")
        except (ConfigurationError, ValueError, KeyError, TypeError,
                AttributeError):
            self._quarantine(path)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, outcome: PointOutcome) -> None:
        """Persist one evaluated point (success or typed failure).

        The point's :class:`~repro.telemetry.record.PointTelemetry`
        rides along, so a warm-cache rerun can still account for the
        original evaluation's kernel stats.
        """
        document = {"schema": self.schema_version, "key": key}
        if outcome.failure is None:
            document["status"] = "ok"
            document["value"] = encode_value(outcome.value)
        else:
            document["status"] = "error"
            document["error"] = {
                "type": outcome.failure.error_type,
                "message": outcome.failure.message,
                "retryable": outcome.failure.retryable,
            }
        if outcome.telemetry is not None:
            # Spans are stripped: replaying stale span timestamps into a
            # later run's trace would be misleading; kernel records are
            # what warm-cache profile accounting needs.
            document["telemetry"] = encode_value(
                dataclasses.replace(outcome.telemetry, spans=())
            )
        path = self.path_for(key)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1

    def _quarantine(self, path: Path) -> None:
        try:
            path.rename(path.with_name(path.name + ".quarantined"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.stats.quarantined += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))


# ---------------------------------------------------------------------------
# The executor.
# ---------------------------------------------------------------------------


@dataclass
class ExecutorStats:
    """Counters one :class:`SweepExecutor` accumulates across ``map`` calls."""

    evaluated: int = 0
    cache_hits: int = 0
    failures: int = 0
    uncacheable: int = 0
    retries: int = 0
    quarantined: int = 0

    def summary(self) -> str:
        """One human-readable line (printed under ``--profile``)."""
        line = (
            f"[executor] {self.evaluated} evaluated, "
            f"{self.cache_hits} cache hits, {self.failures} failures"
        )
        if self.retries:
            line += f", {self.retries} retries"
        if self.quarantined:
            line += f", {self.quarantined} quarantined"
        if self.uncacheable:
            line += f", {self.uncacheable} uncacheable"
        return line


@dataclass(frozen=True)
class _PointCall:
    """Picklable wrapper that turns library errors into typed results.

    Each call is bracketed by a telemetry capture window: the kernel
    stats of every simulation the point runs, plus any span trees the
    evaluating process completed, come back with the status tuple as a
    :class:`~repro.telemetry.record.PointTelemetry` — the outcome
    channel that makes worker- and cache-side profiling visible to the
    coordinator.

    The resilient lanes construct it with a fault plan (injected at the
    top of every attempt, inside the capture window) and with
    ``capture_bugs=True`` so escaped non-library exceptions come back
    as retryable ``("raised", ...)`` statuses instead of killing the
    campaign; the default lanes keep the historical propagate-on-bug
    semantics.
    """

    fn: Callable[[Any], Any]
    fault_plan: Optional[FaultPlan] = None
    capture_bugs: bool = False

    def __call__(self, point: Any, index: Optional[int] = None, attempt: int = 0):
        begin_point_capture()
        # Counter readings are drained from this mark, not from zero: a
        # forked worker inherits whatever the coordinator had buffered
        # (context calibration runs, say), and those inherited readings
        # must not ride home duplicated with every worker's first point.
        sampler = get_sampler()
        sample_mark = sampler.mark()
        start_us = now_us()
        start = time.perf_counter()
        try:
            if self.fault_plan is not None and index is not None:
                inject_fault(self.fault_plan, index, attempt)
            status = ("ok", self.fn(point))
        except TransientError as exc:
            status = ("transient", type(exc).__name__, str(exc))
        except ReproError as exc:
            status = ("error", type(exc).__name__, str(exc))
        except Exception as exc:
            if not self.capture_bugs:
                end_point_capture()
                sampler.drain_since(sample_mark)
                raise
            status = ("raised", type(exc).__name__, str(exc))
        wall_s = time.perf_counter() - start
        telemetry = PointTelemetry(
            pid=os.getpid(),
            start_us=start_us,
            wall_s=wall_s,
            kernels=end_point_capture(),
            spans=tuple(get_tracer().drain_records()),
            samples=tuple(sampler.drain_since(sample_mark)),
        )
        return status + (telemetry,)


def _seed_stream_cache(entries: List[tuple]) -> None:
    """Worker initializer: seed the process-wide compile cache.

    On fork platforms workers inherit the coordinator's warm
    :data:`repro.sim.ops.stream_cache` for free; on spawn platforms the
    coordinator ships its ``(key, program)`` entries here instead, so
    parallel sweeps never recompile per worker either way.
    """
    for key, program in entries:
        # repro: allow[FORK-GLOBAL-WRITE] initializer seeds this worker's own cache
        stream_cache.seed(key, program)


def _farm_worker(
    conn,
    call: _PointCall,
    point: Any,
    index: int,
    attempt: int,
    seeds: Optional[List[tuple]] = None,
) -> None:
    """Child-process entry of the fault-tolerant farm: one attempt.

    Sends the :class:`_PointCall` status tuple back over the pipe; a
    worker that dies before sending (a ``kill`` fault, the OOM killer)
    is detected by the coordinator as an EOF plus a nonzero exit code.
    """
    try:
        if seeds:
            _seed_stream_cache(seeds)
        payload = call(point, index, attempt)
    except BaseException as exc:  # pragma: no cover - _PointCall captures
        payload = ("raised", type(exc).__name__, str(exc), None)
    try:
        conn.send(payload)
    finally:
        conn.close()


def _kill_process(process) -> None:
    """Terminate a worker hard: SIGTERM, brief grace, then SIGKILL."""
    try:
        process.terminate()
        process.join(0.5)
        if process.is_alive():
            process.kill()
            process.join(0.5)
    except (OSError, ValueError, AttributeError):
        pass


class SweepExecutor:
    """Evaluate independent sweep points, in parallel, through a cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) evaluates inline in the
        calling process — no pool, no pickling — which is also the
        reference semantics the parallel path must match bitwise.
    cache:
        Optional :class:`ResultCache`.  Points are only memoized when the
        caller also supplies ``key_configs`` (it alone knows which inputs
        determine a point's value).
    chunksize:
        Points per pickled work batch; defaults to roughly four batches
        per worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        journal: Optional[SweepJournal] = None,
    ) -> None:
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_plan = fault_plan
        #: Optional :class:`~repro.harness.journal.SweepJournal`; when
        #: set, every completed point (cached or evaluated) is appended
        #: to it — the write-ahead log behind ``--resume``.
        self.journal = journal
        self.stats = ExecutorStats()
        #: Failed points accumulated across ``map`` calls, for degraded-
        #: mode reporting (the CLI quarantine summary, ``repro report``).
        self.failed: List[PointOutcome] = []
        #: Optional :class:`~repro.telemetry.manifest.TelemetryRun`; when
        #: set, every outcome is logged to its events/spans JSONL files.
        self.telemetry_run = None
        #: Per-point telemetry awaiting :meth:`fold_telemetry_into`
        #: (``(telemetry, cached)`` pairs, accumulated across ``map`` calls).
        self._telemetry_log: List[Tuple[PointTelemetry, bool]] = []
        #: Which lane the most recent evaluation batch ran in; stamped
        #: onto the batch's outcomes for trace attribution.
        self._last_lane = "inline"

    @property
    def resilient(self) -> bool:
        """Whether the fault-tolerant machinery is engaged.

        True when any of a retry budget, a per-point deadline, or a
        fault plan is configured; the default executor keeps the
        historical lanes (and semantics) exactly.
        """
        return (
            self.fault_plan is not None
            or self.retry.max_retries > 0
            or self.retry.point_timeout_s is not None
        )

    def map(
        self,
        fn: Callable[[Any], Any],
        points: Iterable[Any],
        key_configs: Optional[Iterable[Any]] = None,
        precompile: Optional[Callable[[List[Any]], None]] = None,
    ) -> List[PointOutcome]:
        """Evaluate ``fn`` over ``points``; outcomes in input order.

        ``fn`` must be picklable for ``jobs > 1`` (a module-level
        function or a :func:`functools.partial` of one).  ``key_configs``
        — one hashable config per point — opts the call into the cache.

        ``precompile``, when given, is called in the coordinator with
        exactly the points the cache could not satisfy, *before* any
        worker dispatch.  Sweep pipelines use it to compile op streams
        once into the process-wide :data:`repro.sim.ops.stream_cache`
        so forked workers inherit them warm (spawn-platform pools are
        seeded through an initializer instead); a fully warm-cache
        rerun pays zero compiles.
        """
        point_list = list(points)
        keys: List[Optional[str]] = [None] * len(point_list)
        use_cache = self.cache is not None and key_configs is not None
        if key_configs is not None:
            config_list = list(key_configs)
            if len(config_list) != len(point_list):
                raise ConfigurationError(
                    f"{len(config_list)} key configs for "
                    f"{len(point_list)} points"
                )
            if use_cache:
                keys = [
                    config_key(config, self.cache.schema_version)
                    for config in config_list
                ]

        outcomes: List[Optional[PointOutcome]] = [None] * len(point_list)
        pending: List[int] = []
        for index in range(len(point_list)):
            if use_cache:
                entry = self.cache.get(keys[index])
                if entry is not None:
                    outcomes[index] = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=entry.value,
                        failure=entry.failure,
                        cached=True,
                        telemetry=entry.telemetry,
                        lane="cache",
                    )
                    self.stats.cache_hits += 1
                    if entry.failure is not None:
                        self.stats.failures += 1
                    if entry.telemetry is not None:
                        self._telemetry_log.append((entry.telemetry, True))
                    continue
            pending.append(index)

        if pending:
            if precompile is not None:
                precompile([point_list[i] for i in pending])
            if self.resilient:
                raw = self._run_resilient(fn, pending, point_list)
            else:
                raw = [
                    (result, 1)
                    for result in self._run_default(fn, pending, point_list)
                ]
            lane = self._last_lane
            for index, (result, attempts) in zip(pending, raw):
                self.stats.evaluated += 1
                telemetry = result[-1]
                if result[0] == "ok":
                    outcome = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=result[1],
                        telemetry=telemetry,
                        attempts=attempts,
                        lane=lane,
                    )
                else:
                    retryable = result[0] in ("transient", "raised")
                    outcome = PointOutcome(
                        index=index,
                        key=keys[index],
                        value=None,
                        failure=SweepFailure(
                            error_type=result[1],
                            message=result[2],
                            retryable=retryable,
                        ),
                        telemetry=telemetry,
                        attempts=attempts,
                        lane=lane,
                    )
                    self.stats.failures += 1
                    if retryable:
                        self.stats.quarantined += 1
                if outcome.failure is not None:
                    self.failed.append(outcome)
                if telemetry is not None:
                    self._telemetry_log.append((telemetry, False))
                if use_cache and (
                    outcome.failure is None or not outcome.failure.retryable
                ):
                    # Retryable failures are deliberately not memoized:
                    # a resumed run should re-attempt them, not replay
                    # the crash.
                    try:
                        self.cache.put(keys[index], outcome)
                    except ConfigurationError:
                        self.stats.uncacheable += 1
                outcomes[index] = outcome
        for outcome in outcomes:
            if outcome is None:
                continue
            if self.journal is not None and outcome.key is not None:
                self.journal.record(
                    JournalEntry(
                        key=outcome.key,
                        status="ok" if outcome.failure is None else "failed",
                        attempts=outcome.attempts,
                        cached=outcome.cached,
                        error_type=(
                            None
                            if outcome.failure is None
                            else outcome.failure.error_type
                        ),
                        retryable=(
                            outcome.failure is not None
                            and outcome.failure.retryable
                        ),
                        wall_s=(
                            outcome.telemetry.wall_s
                            if outcome.telemetry is not None
                            else 0.0
                        ),
                    )
                )
            if self.telemetry_run is not None:
                self.telemetry_run.record_point(outcome)
        return outcomes  # type: ignore[return-value]

    # -- default lanes (historical semantics, bitwise-pinned) ---------------

    def _run_default(
        self, fn: Callable[[Any], Any], pending: List[int], point_list: List[Any]
    ) -> List[Tuple[Any, ...]]:
        """Inline or ``pool.map`` evaluation: no retries, no deadlines.

        On any interrupt or error escaping the pool (most importantly
        ``KeyboardInterrupt``), worker processes are terminated before
        the exception propagates — a Ctrl-C must never leak children
        still burning CPU on a sweep the user just abandoned.
        """
        call = _PointCall(fn)
        todo = [point_list[i] for i in pending]
        if self.jobs == 1 or len(pending) == 1:
            self._last_lane = "inline"
            return [call(point) for point in todo]
        self._last_lane = "pool"
        workers = min(self.jobs, len(pending))
        chunk = self.chunksize or max(1, len(pending) // (workers * 4))
        # Fork workers inherit the coordinator's warm stream cache; on
        # spawn platforms the cache entries ship through the initializer.
        if multiprocessing.get_start_method() != "fork" and len(stream_cache):
            pool = ProcessPoolExecutor(
                max_workers=workers,
                initializer=_seed_stream_cache,
                initargs=(stream_cache.export_entries(),),
            )
        else:
            pool = ProcessPoolExecutor(max_workers=workers)
        try:
            raw = list(pool.map(call, todo, chunksize=chunk))
        except BaseException:
            for process in list(getattr(pool, "_processes", {}).values()):
                _kill_process(process)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return raw

    # -- resilient lanes (retry / backoff / deadline / fault plan) ----------

    def _run_resilient(
        self, fn: Callable[[Any], Any], pending: List[int], point_list: List[Any]
    ) -> List[Tuple[Tuple[Any, ...], int]]:
        """Evaluate with retries; returns ``(status, attempts)`` per point.

        Chooses between two lanes: an inline attempt loop (cheap, used
        when nothing needs process isolation) and the process farm
        (required for ``jobs > 1``, per-point deadlines, and fault
        plans containing ``hang``/``kill`` faults).
        """
        call = _PointCall(fn, fault_plan=self.fault_plan, capture_bugs=True)
        needs_processes = (
            self.jobs > 1
            or self.retry.point_timeout_s is not None
            or (
                self.fault_plan is not None
                and self.fault_plan.needs_processes(len(point_list))
            )
        )
        if needs_processes:
            self._last_lane = "farm"
            return self._run_farm(call, pending, point_list)
        self._last_lane = "inline"
        return self._run_inline_retries(call, pending, point_list)

    def _run_inline_retries(
        self, call: _PointCall, pending: List[int], point_list: List[Any]
    ) -> List[Tuple[Tuple[Any, ...], int]]:
        """Serial in-process attempts with deterministic backoff."""
        results: List[Tuple[Tuple[Any, ...], int]] = []
        for index in pending:
            attempt = 0
            while True:
                result = call(point_list[index], index, attempt)
                if result[0] in ("ok", "error") or attempt >= self.retry.max_retries:
                    break
                self.stats.retries += 1
                delay = self.retry.backoff_s(attempt)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1
            results.append((result, attempt + 1))
        return results

    def _run_farm(
        self, call: _PointCall, pending: List[int], point_list: List[Any]
    ) -> List[Tuple[Tuple[Any, ...], int]]:
        """The fault-tolerant process farm: one child per attempt.

        Unlike the pool lane (which shares long-lived workers and
        therefore cannot survive one of them dying), the farm runs each
        attempt in its own child process connected by a pipe.  That
        buys three properties the pool cannot offer: a worker killed
        mid-point (OOM, segfault, ``kill`` fault) is detected as an EOF
        and retried; a point exceeding ``point_timeout_s`` is
        terminated without poisoning anyone else; and a
        ``KeyboardInterrupt`` tears every child down before
        propagating.  Results are deterministic regardless of
        completion order — they are slotted by point index.
        """
        policy = self.retry
        workers = min(self.jobs, len(pending))
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
            seeds = None  # forked attempts inherit the warm stream cache
        else:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
            seeds = stream_cache.export_entries() or None
        results: Dict[int, Tuple[Tuple[Any, ...], int]] = {}
        ready = deque((index, 0) for index in pending)
        delayed: List[Tuple[float, int, int]] = []  # (ready_at, index, attempt)
        live: Dict[Any, Tuple[Any, int, int, Optional[float]]] = {}

        def settle(result: Tuple[Any, ...], index: int, attempt: int) -> None:
            if result[0] in ("ok", "error") or attempt >= policy.max_retries:
                results[index] = (result, attempt + 1)
                return
            self.stats.retries += 1
            delayed.append(
                (time.monotonic() + policy.backoff_s(attempt), index, attempt + 1)
            )

        try:
            while len(results) < len(pending):
                now = time.monotonic()
                if delayed:
                    due = [entry for entry in delayed if entry[0] <= now]
                    delayed[:] = [entry for entry in delayed if entry[0] > now]
                    for _, index, attempt in sorted(due):
                        ready.append((index, attempt))
                while ready and len(live) < workers:
                    index, attempt = ready.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    process = ctx.Process(
                        target=_farm_worker,
                        args=(
                            child_conn,
                            call,
                            point_list[index],
                            index,
                            attempt,
                            seeds,
                        ),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    deadline = (
                        None
                        if policy.point_timeout_s is None
                        else time.monotonic() + policy.point_timeout_s
                    )
                    live[parent_conn] = (process, index, attempt, deadline)
                if not live:
                    # Everything outstanding is backing off; sleep to the
                    # earliest retry and loop.
                    pause = min(entry[0] for entry in delayed) - time.monotonic()
                    if pause > 0:
                        time.sleep(pause)
                    continue
                wake_times = [
                    deadline
                    for (_, _, _, deadline) in live.values()
                    if deadline is not None
                ] + [entry[0] for entry in delayed]
                wait_s = (
                    None
                    if not wake_times
                    else max(0.0, min(wake_times) - time.monotonic())
                )
                done = _connection_wait(list(live), timeout=wait_s)
                for conn in done:
                    process, index, attempt, _ = live.pop(conn)
                    try:
                        payload = conn.recv()
                    except (EOFError, OSError):
                        payload = None
                    conn.close()
                    process.join()
                    if payload is None:
                        payload = (
                            "transient",
                            "WorkerCrash",
                            f"worker pid {process.pid} died with exit code "
                            f"{process.exitcode} (point {index}, "
                            f"attempt {attempt})",
                            None,
                        )
                    settle(payload, index, attempt)
                now = time.monotonic()
                for conn in [
                    conn
                    for conn, (_, _, _, deadline) in live.items()
                    if deadline is not None and now >= deadline
                ]:
                    process, index, attempt, _ = live.pop(conn)
                    _kill_process(process)
                    conn.close()
                    settle(
                        (
                            "transient",
                            "PointTimeout",
                            f"point {index} exceeded its "
                            f"{policy.point_timeout_s}s deadline on attempt "
                            f"{attempt}",
                            None,
                        ),
                        index,
                        attempt,
                    )
        except BaseException:
            # Ctrl-C or a coordinator bug: no orphaned children, ever.
            for conn, (process, _, _, _) in live.items():
                _kill_process(process)
                try:
                    conn.close()
                except OSError:
                    pass
            raise
        return [results[index] for index in pending]

    def fold_telemetry_into(self, aggregate) -> None:
        """Fold collected kernel records into a ``KernelAggregate``.

        The coordinator's :class:`~repro.harness.context.ExperimentContext`
        already logs simulations it ran in-process, so this folds only
        the two sources it cannot see — worker-process evaluations and
        cache replays (added as *cached runs*) — and drains the log so
        repeated calls never double-count.
        """
        own_pid = os.getpid()
        drained, self._telemetry_log = self._telemetry_log, []
        for telemetry, cached in drained:
            if cached:
                for kernel in telemetry.kernels:
                    aggregate.add_record(kernel, cached=True)
            elif telemetry.pid != own_pid:
                for kernel in telemetry.kernels:
                    aggregate.add_record(kernel)

    def map_values(
        self,
        fn: Callable[[Any], Any],
        points: Iterable[Any],
        key_configs: Optional[Iterable[Any]] = None,
        precompile: Optional[Callable[[List[Any]], None]] = None,
    ) -> List[Any]:
        """Like :meth:`map` but unwraps values, re-raising any failure."""
        return [
            o.unwrap() for o in self.map(fn, points, key_configs, precompile)
        ]
