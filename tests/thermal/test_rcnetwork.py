"""Tests for the RC thermal network solvers."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.thermal import Block, Floorplan, ThermalRCNetwork
from repro.thermal.rcnetwork import ThermalMaterial
from repro.units import celsius_to_kelvin

AMBIENT = celsius_to_kelvin(45.0)


def two_block_plan():
    return Floorplan(
        blocks=(
            Block("hot", 0, 0, 1e-3, 1e-3),
            Block("cold", 1e-3, 0, 1e-3, 1e-3),
        )
    )


class TestSteadyState:
    def test_zero_power_is_ambient(self):
        network = ThermalRCNetwork(two_block_plan())
        temps = network.steady_state({}, AMBIENT)
        for t in temps.values():
            assert t == pytest.approx(AMBIENT)

    def test_temperatures_above_ambient_with_power(self):
        network = ThermalRCNetwork(two_block_plan())
        temps = network.steady_state({"hot": 10.0}, AMBIENT)
        assert temps["hot"] > AMBIENT
        assert temps["cold"] > AMBIENT  # lateral coupling spreads heat

    def test_powered_block_is_hottest(self):
        network = ThermalRCNetwork(two_block_plan())
        temps = network.steady_state({"hot": 10.0}, AMBIENT)
        assert temps["hot"] > temps["cold"]

    def test_linearity_in_power(self):
        network = ThermalRCNetwork(two_block_plan())
        t1 = network.steady_state({"hot": 5.0}, AMBIENT)
        t2 = network.steady_state({"hot": 10.0}, AMBIENT)
        rise1 = t1["hot"] - AMBIENT
        rise2 = t2["hot"] - AMBIENT
        assert rise2 == pytest.approx(2.0 * rise1)

    def test_energy_balance(self):
        # Total heat into ambient equals total power injected.
        network = ThermalRCNetwork(two_block_plan())
        power = {"hot": 7.0, "cold": 3.0}
        temps = network.steady_state(power, AMBIENT)
        total_out = sum(
            (temps[name] - AMBIENT) * network._vertical_conductance(name)
            for name in temps
        )
        assert total_out == pytest.approx(10.0, rel=1e-9)

    def test_unknown_block_rejected(self):
        network = ThermalRCNetwork(two_block_plan())
        with pytest.raises(ConfigurationError):
            network.steady_state({"nope": 1.0}, AMBIENT)

    def test_negative_power_rejected(self):
        network = ThermalRCNetwork(two_block_plan())
        with pytest.raises(ConfigurationError):
            network.steady_state({"hot": -1.0}, AMBIENT)

    def test_vertical_scale_raises_temperature(self):
        base = ThermalRCNetwork(two_block_plan())
        insulated = base.with_vertical_scale(2.0)
        t_base = base.steady_state({"hot": 10.0}, AMBIENT)["hot"]
        t_ins = insulated.steady_state({"hot": 10.0}, AMBIENT)["hot"]
        assert t_ins > t_base

    @given(watts=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=25)
    def test_temperature_never_below_ambient(self, watts):
        network = ThermalRCNetwork(two_block_plan())
        temps = network.steady_state({"hot": watts}, AMBIENT)
        assert all(t >= AMBIENT - 1e-9 for t in temps.values())


class TestTransient:
    def test_converges_to_steady_state(self):
        network = ThermalRCNetwork(two_block_plan())
        steady = network.steady_state({"hot": 10.0}, AMBIENT)
        transient = network.transient(
            {"hot": 10.0}, AMBIENT, initial_k=AMBIENT, duration_s=50.0, dt_s=0.05
        )
        for name in steady:
            assert transient[name] == pytest.approx(steady[name], rel=1e-3)

    def test_monotone_warmup(self):
        network = ThermalRCNetwork(two_block_plan())
        state = AMBIENT
        snapshots = []
        for _ in range(5):
            result = network.transient(
                {"hot": 10.0},
                AMBIENT,
                initial_k=state if isinstance(state, float) else state,
                duration_s=0.2,
                dt_s=0.01,
            )
            snapshots.append(result["hot"])
            state = result
        assert all(b >= a for a, b in zip(snapshots, snapshots[1:]))

    def test_zero_duration_returns_initial(self):
        network = ThermalRCNetwork(two_block_plan())
        result = network.transient(
            {"hot": 10.0}, AMBIENT, initial_k=300.0, duration_s=0.0
        )
        assert result["hot"] == pytest.approx(300.0)

    def test_invalid_arguments(self):
        network = ThermalRCNetwork(two_block_plan())
        with pytest.raises(ConfigurationError):
            network.transient({"hot": 1.0}, AMBIENT, AMBIENT, duration_s=-1.0)
        with pytest.raises(ConfigurationError):
            network.transient({"hot": 1.0}, AMBIENT, AMBIENT, 1.0, dt_s=0.0)


class TestMaterial:
    def test_invalid_material_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalMaterial(silicon_conductivity=-1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalRCNetwork(two_block_plan(), vertical_scale=0.0)
