"""Off-chip main memory with a fixed wall-clock latency.

Table 1 gives a 75 ns round trip.  Crucially this latency is in
*nanoseconds*, not chip cycles: when DVFS slows the chip clock, the same
75 ns costs fewer cycles, narrowing the processor-memory speed gap.  The
paper identifies this as the mechanism that lets memory-bound
applications (Ocean, Radix) gain actual speedup in Scenario I and scale
better in Scenario II.

A simple bank-occupancy model adds queueing when many cores miss at
once, which contributes to parallel-efficiency loss at high N.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.clock import ns_to_ps


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM parameters."""

    #: Round-trip latency in nanoseconds (Table 1: 75 ns).
    round_trip_ns: float = 75.0
    #: Number of independent banks servicing requests concurrently.
    n_banks: int = 8
    #: Per-bank occupancy per request, nanoseconds.
    bank_busy_ns: float = 12.0

    def __post_init__(self) -> None:
        if self.round_trip_ns <= 0 or self.bank_busy_ns < 0 or self.n_banks < 1:
            raise ConfigurationError("memory parameters must be positive")


class MainMemory:
    """Fixed-latency DRAM with per-bank occupancy."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        self._latency_ps = ns_to_ps(self.config.round_trip_ns)
        self._busy_ps = ns_to_ps(self.config.bank_busy_ns)
        self._bank_free_ps = [0] * self.config.n_banks
        self.requests = 0

    def access(self, now_ps: int, line_addr: int) -> int:
        """Issue a request at ``now_ps``; returns the completion time.

        The addressed bank may delay service if busy; the full round trip
        then applies from service start.
        """
        bank = line_addr % self.config.n_banks
        start = max(now_ps, self._bank_free_ps[bank])
        self._bank_free_ps[bank] = start + self._busy_ps
        self.requests += 1
        return start + self._latency_ps

    def reset_timing(self) -> None:
        """Clear bank reservations (between simulation runs)."""
        self._bank_free_ps = [0] * self.config.n_banks
