"""Legacy setup shim: the offline environment lacks the `wheel` package, so
`pip install -e . --no-build-isolation` falls back to `setup.py develop`."""
from setuptools import setup

setup()
