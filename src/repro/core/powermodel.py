"""The analytical chip power model (Eqs. 2, 4, 8, 9) with thermal feedback.

The model describes a fixed CMP of identical cores.  A run uses
``n_active`` cores at a common supply voltage and frequency; unused cores
are shut down and consume nothing (Section 2.2).  Per core::

    P_dyn(V, f)  = P_D1 * (V / V1)^2 * (f / f1)          # a C V^2 f, Eq. 2
    P_stat(V, T) = S1_std * H(V, T)                      # V * I_leak, Eq. 4

where ``P_D1`` is the 1-core dynamic power at nominal V/f, ``S1_std`` the
1-core static power at nominal voltage and room temperature, and
``H(V, T)`` the curve-fitted leakage multiplier (Eq. 3).  Both constants
are derived from the technology node's published 1-core total power and
static fraction at the 100 C design point — the same route the paper takes
through ITRS data (Section 2.2).

Temperature and power are mutually dependent (static power raises
temperature raises static power), so every query resolves a fixed point
``T = Thermal(P(T))`` through a thermal model, defaulting to
:class:`~repro.thermal.compact.CompactThermalModel` calibrated at the
1-core design point.  The die temperature is floored at ambient by the
thermal model itself, reproducing the "temperature can never be lower
than the ambient" bound that bends the curves of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError, ConvergenceError
from repro.tech.leakage import LeakageFit, default_leakage_multiplier
from repro.tech.technology import TechnologyNode
from repro.thermal.compact import CompactThermalModel
from repro.units import GIGA, celsius_to_kelvin


@dataclass(frozen=True)
class PowerBreakdown:
    """Chip power split into its Eq. 2 components (watts)."""

    dynamic_w: float
    static_w: float

    @property
    def total_w(self) -> float:
        """Total chip power."""
        return self.dynamic_w + self.static_w

    @property
    def static_fraction(self) -> float:
        """Share of total power that is static."""
        return self.static_w / self.total_w if self.total_w > 0 else 0.0


@dataclass(frozen=True)
class OperatingPoint:
    """A resolved (N, V, f) point with its equilibrium temperature and power."""

    n_active: int
    voltage: float
    frequency_hz: float
    temperature_k: float
    power: PowerBreakdown

    @property
    def temperature_celsius(self) -> float:
        """Equilibrium average die temperature in Celsius."""
        return self.temperature_k - 273.15


class AnalyticalChipModel:
    """Power/thermal model of a fixed CMP for the analytical scenarios.

    Parameters
    ----------
    tech:
        Process technology node (supplies V1, Vth, f1, the alpha-power law
        and the nominal static fraction).
    n_cores_max:
        Number of cores on the chip (the paper's analytical study uses a
        32-way CMP baseline).
    p1_watts:
        Total chip power of the 1-core configuration at nominal V/f and
        the design-point temperature.  Only normalised powers appear in
        the paper's plots, but an absolute anchor is needed for the
        thermal feedback; 60 W is an EV6-class value.
    t1_celsius:
        Design-point temperature of the 1-core full-throttle run (100 C).
    ambient_celsius:
        In-box ambient temperature (45 C, Table 1).
    leakage:
        Optional ``H(V, T)`` multiplier; defaults to the curve fitted
        against the physical leakage model for ``tech``.
    thermal:
        Optional pre-built compact thermal model; it will be calibrated at
        the 1-core design point.
    """

    def __init__(
        self,
        tech: TechnologyNode,
        n_cores_max: int = 32,
        p1_watts: float = 60.0,
        t1_celsius: float = 100.0,
        ambient_celsius: float = 45.0,
        leakage: Optional[LeakageFit] = None,
        thermal: Optional[CompactThermalModel] = None,
    ) -> None:
        if n_cores_max < 1:
            raise ConfigurationError("n_cores_max must be >= 1")
        if p1_watts <= 0:
            raise ConfigurationError("p1_watts must be positive")
        if t1_celsius <= ambient_celsius:
            raise ConfigurationError("design temperature must exceed ambient")
        self.tech = tech
        self.n_cores_max = n_cores_max
        self.p1_watts = p1_watts
        self.t1_celsius = t1_celsius
        self.ambient_celsius = ambient_celsius
        self.leakage = leakage or default_leakage_multiplier(tech)
        self.thermal = thermal or CompactThermalModel(ambient_celsius=ambient_celsius)
        self.thermal.calibrate(p1_watts, t1_celsius)

        t1_k = celsius_to_kelvin(t1_celsius)
        static_fraction = tech.static_fraction_nominal
        #: 1-core dynamic power at nominal V/f (temperature-independent).
        self.p_dynamic_1 = (1.0 - static_fraction) * p1_watts
        #: 1-core static power at nominal voltage and *room* temperature;
        #: Eq. 4 scales it by H(V, T) everywhere else.
        self.s1_std = static_fraction * p1_watts / self.leakage.multiplier(
            tech.vdd_nominal, t1_k
        )

    def describe(self) -> dict:
        """The model's defining parameters, for content-addressed caching.

        Covers everything the constructor accepts except a custom
        pre-built ``thermal`` model (whose behaviour is pinned by the
        ``p1_watts``/``t1_celsius``/``ambient_celsius`` calibration for
        the stock compact model).
        """
        return {
            "kind": "analytical-chip",
            "tech": self.tech,
            "n_cores_max": self.n_cores_max,
            "p1_watts": self.p1_watts,
            "t1_celsius": self.t1_celsius,
            "ambient_celsius": self.ambient_celsius,
            "leakage": self.leakage,
        }

    def core_dynamic_power(self, v: float, f_hz: float) -> float:
        """Dynamic power of one active core at (V, f) — the aCV^2f term."""
        tech = self.tech
        return (
            self.p_dynamic_1
            * (v / tech.vdd_nominal) ** 2
            * (f_hz / tech.f_nominal)
        )

    def core_static_power(self, v: float, temperature_k: float) -> float:
        """Static power of one active core at (V, T) — the V*I_leak term."""
        return self.s1_std * self.leakage.multiplier(v, temperature_k)

    def chip_power(
        self, n_active: int, v: float, f_hz: float, temperature_k: float
    ) -> PowerBreakdown:
        """Chip power at a *given* temperature (no thermal feedback)."""
        self._check_point(n_active, v, f_hz)
        dynamic = n_active * self.core_dynamic_power(v, f_hz)
        static = n_active * self.core_static_power(v, temperature_k)
        return PowerBreakdown(dynamic_w=dynamic, static_w=static)

    #: Fixed-point temperatures beyond this are declared thermal runaway:
    #: the (N, V, f) point has no physical equilibrium (static power grows
    #: faster with temperature than the package can remove it).
    RUNAWAY_TEMPERATURE_K = 600.0

    def equilibrium(
        self,
        n_active: int,
        v: float,
        f_hz: float,
        tol_k: float = 1e-6,
        max_iterations: int = 1000,
    ) -> OperatingPoint:
        """Resolve the power/temperature fixed point at (N, V, f).

        Iterates ``T <- Thermal(P(T))`` (with mild damping for the hot,
        leaky corner cases) until the temperature moves by less than
        ``tol_k``.  Raises :class:`ConvergenceError` on thermal runaway —
        configurations whose leakage outruns the package have no
        equilibrium (Scenario II treats them as over budget).
        """
        self._check_point(n_active, v, f_hz)
        temperature = self.thermal.ambient_k
        damping = 0.5
        for _ in range(max_iterations):
            power = self.chip_power(n_active, v, f_hz, temperature)
            updated = self.thermal.temperature_k(power.total_w, n_active)
            if updated > self.RUNAWAY_TEMPERATURE_K:
                raise ConvergenceError(
                    f"thermal runaway at N={n_active}, V={v:.3f}, "
                    f"f={f_hz / GIGA:.3f} GHz"
                )
            if abs(updated - temperature) < tol_k:
                return OperatingPoint(
                    n_active=n_active,
                    voltage=v,
                    frequency_hz=f_hz,
                    temperature_k=updated,
                    power=self.chip_power(n_active, v, f_hz, updated),
                )
            temperature = temperature + damping * (updated - temperature)
        raise ConvergenceError(
            f"thermal fixed point did not converge at N={n_active}, "
            f"V={v:.3f}, f={f_hz / GIGA:.3f} GHz"
        )

    def reference_point(self) -> OperatingPoint:
        """The 1-core full-throttle design point (the normalisation anchor).

        By construction its total power is ``p1_watts`` and its
        temperature ``t1_celsius``.
        """
        return self.equilibrium(
            1, self.tech.vdd_nominal, self.tech.f_nominal
        )

    def _check_point(self, n_active: int, v: float, f_hz: float) -> None:
        if not 1 <= n_active <= self.n_cores_max:
            raise ConfigurationError(
                f"n_active must be in [1, {self.n_cores_max}], got {n_active}"
            )
        if not self.tech.legal_voltage(v):
            raise ConfigurationError(
                f"voltage {v:.3f} V outside "
                f"[{self.tech.v_min:.3f}, {self.tech.vdd_nominal:.3f}] V"
            )
        if f_hz <= 0:
            raise ConfigurationError("frequency must be positive")
        if f_hz > self.tech.fmax(v) * (1 + 1e-9):
            raise ConfigurationError(
                f"{f_hz / GIGA:.3f} GHz exceeds f_max({v:.3f} V) = "
                f"{self.tech.fmax(v) / GIGA:.3f} GHz"
            )
