"""Finding and rule types shared by every checker.

A :class:`Finding` is one structured diagnostic: a rule id, a location
(path relative to the analyzed root, 1-based line), a severity, a
human-readable message, and the offending source line.  Findings are
value objects — hashable, ordered by location — so reports sort
deterministically and the baseline can count identical findings.

The *baseline identity* of a finding (:attr:`Finding.key`) deliberately
excludes the line number: unrelated edits that shift code up or down
must not invalidate a committed baseline (see
:mod:`repro.analysis.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.errors import ConfigurationError

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Recognised severities, most severe first.  Every severity gates: the
#: split exists so reports can rank output, not to exempt warnings.
SEVERITIES: Tuple[str, ...] = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Rule:
    """One checker rule's identity and documentation."""

    id: str
    family: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"rule {self.id}: unknown severity {self.severity!r}"
            )


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic a checker emitted.

    Field order drives the sort order: reports list findings by file,
    then line, then rule.
    """

    path: str
    line: int
    rule: str
    severity: str
    message: str
    snippet: str = ""

    @property
    def key(self) -> str:
        """Line-insensitive baseline identity of this finding."""
        return f"{self.rule}::{self.path}::{self.message}"

    @property
    def location(self) -> str:
        """``path:line`` for human-readable output."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (one entry of ``repro check --format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "snippet": self.snippet,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict`; rejects malformed documents."""
        try:
            return cls(
                path=str(document["path"]),
                line=int(document["line"]),
                rule=str(document["rule"]),
                severity=str(document["severity"]),
                message=str(document["message"]),
                snippet=str(document.get("snippet", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed finding entry: {document!r}"
            ) from exc
