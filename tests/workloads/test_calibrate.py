"""Tests for the automatic workload calibrator."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import workload_by_name
from repro.workloads.calibrate import (
    CalibrationResult,
    Signature,
    SignatureTarget,
    calibrate_workload,
    measure_signature,
)


class TestSignatureTarget:
    def test_loss_zero_at_target(self):
        target = SignatureTarget(eps_high=0.7, stall1=0.4, l1_miss1=0.05)
        assert target.loss(Signature(0.7, 0.4, 0.05)) == pytest.approx(0.0)

    def test_loss_grows_with_distance(self):
        target = SignatureTarget(eps_high=0.7)
        near = target.loss(Signature(0.65, 0.0, 0.0))
        far = target.loss(Signature(0.40, 0.0, 0.0))
        assert far > near > 0

    def test_unconstrained_fields_ignored(self):
        target = SignatureTarget(stall1=0.5)
        a = target.loss(Signature(0.1, 0.5, 0.9))
        b = target.loss(Signature(0.9, 0.5, 0.0))
        assert a == pytest.approx(b) == pytest.approx(0.0)

    def test_weights(self):
        heavy = SignatureTarget(eps_high=0.5, weights=(10.0, 1.0, 1.0))
        light = SignatureTarget(eps_high=0.5, weights=(1.0, 1.0, 1.0))
        signature = Signature(0.6, 0.0, 0.0)
        assert heavy.loss(signature) == pytest.approx(10 * light.loss(signature))


class TestMeasure:
    def test_measures_known_model(self):
        signature = measure_signature(
            workload_by_name("FMM").spec, n_high=4, scale=0.05
        )
        assert 0.1 < signature.eps_high <= 1.2
        assert 0.0 <= signature.stall1 <= 1.0
        assert 0.0 <= signature.l1_miss1 <= 1.0

    def test_deterministic(self):
        spec = workload_by_name("Barnes").spec
        a = measure_signature(spec, n_high=2, scale=0.05)
        b = measure_signature(spec, n_high=2, scale=0.05)
        assert a == b


class TestCalibrate:
    def test_loss_never_increases(self):
        spec = workload_by_name("Barnes").spec
        # Push stall1 up from its current value.
        target = SignatureTarget(stall1=0.85, weights=(0.0, 1.0, 0.0))
        result = calibrate_workload(
            spec, target, iterations=2, n_high=2, scale=0.04,
            knobs=["hot_fraction", "locality"],
        )
        assert isinstance(result, CalibrationResult)
        assert result.history[-1] <= result.history[0]
        assert result.evaluations >= 3

    def test_moves_toward_memory_bound_target(self):
        spec = workload_by_name("Water-Sp").spec  # compute-bound start
        target = SignatureTarget(stall1=0.9, weights=(0.0, 1.0, 0.0))
        start = measure_signature(spec, n_high=2, scale=0.04)
        result = calibrate_workload(
            spec, target, iterations=3, n_high=2, scale=0.04,
            knobs=["hot_fraction", "locality"],
        )
        assert result.signature.stall1 > start.stall1
        # The calibrator turned the reuse knobs down.
        assert result.spec.hot_fraction <= spec.hot_fraction

    def test_validation(self):
        spec = workload_by_name("Barnes").spec
        with pytest.raises(ConfigurationError):
            calibrate_workload(spec, SignatureTarget(), iterations=0)
        with pytest.raises(ConfigurationError):
            calibrate_workload(
                spec, SignatureTarget(), knobs=["not_a_knob"]
            )
