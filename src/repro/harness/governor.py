"""Online DVFS governors: replacing the paper's offline profiling.

The paper picks operating points *offline*: profile first, compute the
Eq. 7 frequency or the budget-legal point, then re-run.  A production
chip does it *online* — a governor watches recent behaviour and steps
the frequency at intervals.  This harness implements that control loop
on top of the simulator by slicing a workload's phases into windows and
carrying cache state forward between them:

1. run one barrier-delimited window at the current operating point;
2. feed the window's measurements to a :class:`Governor`;
3. apply the governor's frequency for the next window.

Because the simulator charges DVFS through clock domains only, a
sequence of windows at different points composes exactly.  Two governors
are provided:

* :class:`PerformanceGovernor` — a budget-chasing controller in the
  spirit of Scenario II: step down when measured chip power exceeds the
  budget, step up when there is headroom (a textbook ondemand-style
  ladder walk);
* :class:`MemorySlackGovernor` — steps down when the window is
  memory-stall dominated (the frequency barely matters, Section 4.1's
  insight) and back up when compute-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.sim.cmp import ChipSession
from repro.sim.ops import OP_BARRIER
from repro.telemetry.timeseries import get_sampler
from repro.units import GIGA
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class WindowMeasurement:
    """What the governor sees after each control window."""

    index: int
    frequency_hz: float
    execution_time_s: float
    power_w: float
    memory_stall_fraction: float


class Governor(Protocol):
    """Policy: map the last window's measurement to the next frequency."""

    def next_frequency(self, measurement: WindowMeasurement) -> float:
        """Frequency for the next window (will be clamped to the table)."""


def _clamp_to_range(
    f_hz: float, f_max_hz: Optional[float], f_min_hz: Optional[float]
) -> float:
    """Clamp a requested frequency into the governor's own range.

    A ``None`` bound means "no intrinsic limit": :func:`run_governed`
    always clamps the decision into the *context's* V/f table, so a
    governor built without explicit bounds is correct on any technology
    node (the 130 nm table tops out at 1.6 GHz, not the 65 nm 3.2 GHz).
    """
    if f_max_hz is not None:
        f_hz = min(f_max_hz, f_hz)
    if f_min_hz is not None:
        f_hz = max(f_min_hz, f_hz)
    return f_hz


@dataclass
class PerformanceGovernor:
    """Chase a power budget with a frequency ladder walk."""

    budget_w: float
    step_hz: float = 200e6
    #: Optional intrinsic ceiling/floor; ``None`` defers to the
    #: context's V/f table (see :meth:`for_context` to pin them to a
    #: specific technology node's range).
    f_max_hz: Optional[float] = None
    f_min_hz: Optional[float] = None
    #: Step up only when power is below this fraction of the budget.
    headroom: float = 0.85

    @classmethod
    def for_context(
        cls, context: ExperimentContext, budget_w: float, **overrides
    ) -> "PerformanceGovernor":
        """A governor whose ladder range is the context's scaling range."""
        overrides.setdefault("f_max_hz", context.f_nominal)
        overrides.setdefault("f_min_hz", context.f_min)
        return cls(budget_w=budget_w, **overrides)

    def next_frequency(self, measurement: WindowMeasurement) -> float:
        f = measurement.frequency_hz
        if measurement.power_w > self.budget_w:
            f -= self.step_hz
        elif measurement.power_w < self.headroom * self.budget_w:
            f += self.step_hz
        return _clamp_to_range(f, self.f_max_hz, self.f_min_hz)


@dataclass
class MemorySlackGovernor:
    """Slow down while memory-bound; speed back up when compute-bound."""

    stall_down_threshold: float = 0.6
    stall_up_threshold: float = 0.35
    step_hz: float = 400e6
    f_max_hz: Optional[float] = None
    f_min_hz: Optional[float] = None

    @classmethod
    def for_context(
        cls, context: ExperimentContext, **overrides
    ) -> "MemorySlackGovernor":
        """A governor whose ladder range is the context's scaling range."""
        overrides.setdefault("f_max_hz", context.f_nominal)
        overrides.setdefault("f_min_hz", context.f_min)
        return cls(**overrides)

    def next_frequency(self, measurement: WindowMeasurement) -> float:
        f = measurement.frequency_hz
        if measurement.memory_stall_fraction > self.stall_down_threshold:
            f -= self.step_hz
        elif measurement.memory_stall_fraction < self.stall_up_threshold:
            f += self.step_hz
        return _clamp_to_range(f, self.f_max_hz, self.f_min_hz)


@dataclass(frozen=True)
class GovernedRun:
    """Outcome of a governed execution."""

    windows: Tuple[WindowMeasurement, ...]
    total_time_s: float
    total_energy_j: float

    @property
    def average_power_w(self) -> float:
        """Energy over time."""
        return self.total_energy_j / self.total_time_s if self.total_time_s else 0.0

    @property
    def frequency_trajectory(self) -> Tuple[float, ...]:
        """The per-window frequencies the governor chose."""
        return tuple(w.frequency_hz for w in self.windows)


def _split_into_windows(ops: List[tuple], barriers_per_window: int) -> List[List[tuple]]:
    """Split one thread's op list at every k-th barrier."""
    windows: List[List[tuple]] = [[]]
    barriers = 0
    for op in ops:
        windows[-1].append(op)
        if op[0] == OP_BARRIER:
            barriers += 1
            if barriers % barriers_per_window == 0:
                windows.append([])
    if not windows[-1]:
        windows.pop()
    return windows


def run_governed(
    context: ExperimentContext,
    model: WorkloadModel,
    n_threads: int,
    governor: Governor,
    initial_frequency_hz: Optional[float] = None,
    barriers_per_window: int = 2,
) -> GovernedRun:
    """Execute a workload under an online DVFS governor.

    The workload's phases are grouped into control windows of
    ``barriers_per_window`` barriers; each window runs at the frequency
    the governor chose from the previous window's measurement.  The
    machine persists across windows (a :class:`repro.sim.cmp.ChipSession`),
    so caches stay warm through operating-point changes — the first
    window, which includes the workload's initialization phase, is the
    only cold one.
    """
    if barriers_per_window < 1:
        raise ConfigurationError("barriers_per_window must be >= 1")
    scaled = model
    if context.workload_scale != 1.0:
        scaled = WorkloadModel(model.spec.scaled(context.workload_scale))
    per_thread = [list(scaled.thread_ops(t, n_threads)) for t in range(n_threads)]
    window_count = min(
        len(_split_into_windows(ops, barriers_per_window)) for ops in per_thread
    )
    thread_windows = [
        _split_into_windows(ops, barriers_per_window)[:window_count]
        for ops in per_thread
    ]

    frequency = context.clamp_frequency(
        initial_frequency_hz or context.f_nominal
    )
    voltage = context.vf_table.voltage_for_frequency(frequency)
    session = ChipSession(
        context.cmp_config.with_operating_point(frequency, voltage),
        n_threads=n_threads,
        timing=scaled.core_timing(),
    )
    measurements: List[WindowMeasurement] = []
    total_time = 0.0
    total_energy = 0.0
    for index in range(window_count):
        result = session.run_window(
            [thread_windows[t][index] for t in range(n_threads)]
        )
        power = context.chip_power.evaluate(result)
        measurement = WindowMeasurement(
            index=index,
            frequency_hz=frequency,
            execution_time_s=result.execution_time_s,
            power_w=power.total_w,
            memory_stall_fraction=result.memory_stall_fraction(),
        )
        measurements.append(measurement)
        total_time += result.execution_time_s
        total_energy += power.energy_j
        frequency = context.clamp_frequency(governor.next_frequency(measurement))
        voltage = context.vf_table.voltage_for_frequency(frequency)
        session.set_operating_point(frequency, voltage)
        sampler = get_sampler()
        if sampler.enabled:
            # One reading per governor decision: the frequency it chose
            # for the *next* window, against what it measured.
            sampler.sample("governor.frequency_ghz", frequency / GIGA)
            sampler.sample("governor.power_w", measurement.power_w)
            sampler.sample(
                "governor.stall_fraction", measurement.memory_stall_fraction
            )

    return GovernedRun(
        windows=tuple(measurements),
        total_time_s=total_time,
        total_energy_j=total_energy,
    )
