#!/usr/bin/env python
"""Quickstart: the library's two halves in two minutes.

1. The **analytical model** (paper Section 2): how many cores should a
   parallel application use, and at what voltage/frequency, to minimise
   power at fixed performance — or maximise performance at fixed power?
2. The **experimental model** (Sections 3-4): the same questions asked of
   a cycle-level CMP simulator running a synthetic SPLASH-2 workload.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalChipModel,
    MeasuredEfficiency,
    PerformanceOptimizationScenario,
    PowerOptimizationScenario,
)
from repro.area import CMPAreaModel
from repro.harness import ExperimentContext, render_table
from repro.tech import NODE_65NM
from repro.workloads import workload_by_name


def table1_configuration() -> None:
    """Print the machine of the paper's Table 1."""
    area = CMPAreaModel()
    print(
        render_table(
            ["parameter", "value"],
            [
                ["CMP size", "16-way"],
                ["core", "Alpha 21264 (EV6)-class"],
                ["process", "65 nm"],
                ["nominal frequency", "3.2 GHz"],
                ["nominal Vdd / Vth", "1.1 V / 0.18 V"],
                ["ambient temperature", "45 C"],
                ["die size", f"{area.die_area_mm2():.1f} mm^2 "
                             f"({area.die_side_mm():.1f} mm square)"],
                ["L1 I/D", "64 KB, 64 B lines, 2-way, 2-cycle RT"],
                ["L2 (shared)", "4 MB, 128 B lines, 8-way, 12-cycle RT"],
                ["memory", "75 ns RT"],
            ],
            title="Table 1: the modelled CMP",
        )
    )
    print()


def analytical_half() -> None:
    """Scenario I and II on the closed-form model."""
    chip = AnalyticalChipModel(NODE_65NM)

    # An application measured at eps_n = 0.9/0.8/0.65/0.5 on 2/4/8/16
    # cores (the paper's Figure 1 sample application).
    app = MeasuredEfficiency({2: 0.9, 4: 0.8, 8: 0.65, 16: 0.5})

    power_opt = PowerOptimizationScenario(chip)
    best = power_opt.best_configuration(app, (2, 4, 8, 16, 32))
    print(
        f"Scenario I (match 1-core performance, minimise power):\n"
        f"  best configuration: {best.n} cores at "
        f"{best.frequency_hz / 1e9:.2f} GHz / {best.voltage:.2f} V\n"
        f"  chip power: {best.normalized_power:.0%} of the 1-core baseline, "
        f"die at {best.temperature_celsius:.0f} C\n"
    )

    perf_opt = PerformanceOptimizationScenario(chip)
    best = perf_opt.best_configuration(app, range(1, 33))
    print(
        f"Scenario II (1-core power budget, maximise speedup):\n"
        f"  best configuration: {best.n} cores at "
        f"{best.frequency_hz / 1e9:.2f} GHz / {best.voltage:.2f} V "
        f"({best.regime} regime)\n"
        f"  speedup {best.speedup:.2f}x within "
        f"{best.power.total_w:.0f} W\n"
    )


def experimental_half() -> None:
    """One simulated data point: FMM on 4 cores, nominal vs scaled."""
    print("Simulating FMM on the 16-way CMP (short run)...")
    context = ExperimentContext(workload_scale=0.1)
    fmm = workload_by_name("FMM")

    nominal, nominal_power = context.run(fmm, 4)
    t1, _ = context.run(fmm, 1)
    eps = t1.execution_time_ps / (4 * nominal.execution_time_ps)
    target_f = context.clamp_frequency(context.f_nominal / (4 * eps))
    scaled, scaled_power = context.run(fmm, 4, target_f)

    print(
        render_table(
            ["configuration", "f (GHz)", "time (us)", "power (W)", "T avg (C)"],
            [
                [
                    "4 cores, nominal V/f",
                    3.2,
                    nominal.execution_time_s * 1e6,
                    nominal_power.total_w,
                    nominal_power.average_temperature_c,
                ],
                [
                    "4 cores, iso-performance DVFS",
                    target_f / 1e9,
                    scaled.execution_time_s * 1e6,
                    scaled_power.total_w,
                    scaled_power.average_temperature_c,
                ],
            ],
            title=f"FMM, nominal efficiency eps_n(4) = {eps:.2f}",
        )
    )


def main() -> None:
    table1_configuration()
    analytical_half()
    experimental_half()


if __name__ == "__main__":
    main()
