"""Tests for run manifests, JSONL logs, and their validation."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.harness.executor import PointOutcome, SweepFailure
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA,
    TIMELINE_SCHEMA,
    TelemetryRun,
    git_sha,
    latest_run_dir,
    list_run_dirs,
    load_events,
    load_manifest,
    load_spans,
    load_timeline,
    resolve_run_dir,
    validate_run_dir,
)
from repro.telemetry.record import KernelRecord, PointTelemetry
from repro.telemetry.timeseries import (
    CounterSampler,
    SampleRecord,
    get_sampler,
    set_sampler,
)
from repro.telemetry.trace import SpanRecord


def kernel_record(total_ops=100):
    return KernelRecord(
        mode="fast",
        total_ops=total_ops,
        fast_path_ops=80,
        slow_path_ops=15,
        barrier_ops=5,
        sim_wall_s=0.25,
        compile_s=0.01,
        compile_cache_hit=True,
        subsystem_s=(("memory", 0.1),),
    )


def outcome(
    index=0, cached=False, failed=False, kernels=1, spans=(), samples=(),
    lane="inline",
):
    telemetry = PointTelemetry(
        pid=4242,
        start_us=1e12,
        wall_s=0.5,
        kernels=tuple(kernel_record() for _ in range(kernels)),
        spans=tuple(spans),
        samples=tuple(samples),
    )
    failure = SweepFailure(error_type="SimulationError", message="x") if failed else None
    return PointOutcome(
        index=index,
        key=f"k{index}",
        value=None if failed else index,
        failure=failure,
        cached=cached,
        telemetry=telemetry,
        lane=lane,
    )


class TestTelemetryRun:
    def test_creation_writes_a_running_manifest(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3", argv=["--scale", "0.1"])
        manifest = load_manifest(run.directory)
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["status"] == "running"
        assert manifest["command"] == "fig3"
        assert manifest["argv"] == ["--scale", "0.1"]
        run.finalize()

    def test_round_trip_points_events_and_counters(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.set_context_fingerprint("abc123")
        run.record_point(outcome(0))
        run.record_point(outcome(1, cached=True))
        run.record_point(outcome(2, failed=True))
        run.finalize()

        manifest = load_manifest(run.directory)
        assert manifest["status"] == "complete"
        assert manifest["context_fingerprint"] == "abc123"
        assert manifest["points"] == {
            "total": 3,
            "ok": 2,
            "failed": 1,
            "cached": 1,
            "evaluated": 2,
            "retried": 0,
            "quarantined": 0,
        }
        assert manifest["kernel"]["runs"] == 2
        assert manifest["kernel"]["cached_runs"] == 1
        assert manifest["kernel"]["total_ops"] == 300

        events = load_events(run.directory)
        assert [e["index"] for e in events] == [0, 1, 2]
        assert [e["status"] for e in events] == ["ok", "ok", "error"]
        assert [e["cached"] for e in events] == [False, True, False]
        assert events[2]["error_type"] == "SimulationError"
        assert all(e["pid"] == 4242 and e["ops"] == 100 for e in events)

    def test_finalize_records_executor_and_cache_stats(self, tmp_path):
        class FakeCacheStats:
            hits, misses, stores, quarantined = 3, 2, 2, 0

        class FakeCache:
            stats = FakeCacheStats()

        class FakeStats:
            evaluated, cache_hits, failures, uncacheable = 2, 3, 0, 1

        class FakeExecutor:
            stats = FakeStats()
            cache = FakeCache()

        run = TelemetryRun(tmp_path)
        run.finalize(executor=FakeExecutor())
        manifest = load_manifest(run.directory)
        assert manifest["executor"] == {
            "evaluated": 2,
            "cache_hits": 3,
            "failures": 0,
            "uncacheable": 1,
            "retries": 0,
            "quarantined": 0,
        }
        assert manifest["cache"] == {
            "hits": 3,
            "misses": 2,
            "stores": 2,
            "quarantined": 0,
        }

    def test_finalize_is_idempotent(self, tmp_path):
        run = TelemetryRun(tmp_path)
        first = run.finalize()
        assert run.finalize() == first

    def test_point_spans_land_in_spans_jsonl(self, tmp_path):
        record = SpanRecord(name="kernel.window", start_us=10.0, duration_us=5.0)
        run = TelemetryRun(tmp_path)
        run.record_point(outcome(0, spans=(record,)))
        run.finalize()
        (entry,) = load_spans(run.directory)
        assert entry["pid"] == 4242
        assert entry["span"]["name"] == "kernel.window"


class TestRunDirectoryLookup:
    def test_list_latest_and_resolve(self, tmp_path):
        a = TelemetryRun(tmp_path, run_id="20260101T000000Z-1")
        a.finalize()
        b = TelemetryRun(tmp_path, run_id="20260102T000000Z-1")
        b.finalize()
        assert [p.name for p in list_run_dirs(tmp_path)] == [
            "20260101T000000Z-1",
            "20260102T000000Z-1",
        ]
        assert latest_run_dir(tmp_path).name == "20260102T000000Z-1"
        assert resolve_run_dir(tmp_path).name == "20260102T000000Z-1"
        assert (
            resolve_run_dir(tmp_path, "20260101T000000Z-1").name
            == "20260101T000000Z-1"
        )

    def test_missing_directory_and_run_raise(self, tmp_path):
        with pytest.raises(ConfigurationError):
            list_run_dirs(tmp_path / "nope")
        with pytest.raises(ConfigurationError):
            latest_run_dir(tmp_path)  # exists but empty
        run = TelemetryRun(tmp_path)
        run.finalize()
        with pytest.raises(ConfigurationError):
            resolve_run_dir(tmp_path, "not-a-run")


class TestValidation:
    def make_run(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(outcome(0))
        run.record_point(outcome(1, cached=True))
        run.record_spans(
            [
                SpanRecord(
                    name="power.solve",
                    start_us=1.0,
                    duration_us=9.0,
                    children=(
                        SpanRecord(
                            name="thermal.solve", start_us=2.0, duration_us=3.0
                        ),
                    ),
                )
            ]
        )
        run.finalize()
        return run

    def test_validate_accepts_a_complete_run(self, tmp_path):
        run = self.make_run(tmp_path)
        summary = validate_run_dir(run.directory)
        assert summary["points"] == 2
        assert summary["spans"] == 2  # the hand-written tree, both nodes
        assert summary["manifest"]["status"] == "complete"

    def test_validate_rejects_missing_manifest_key(self, tmp_path):
        run = self.make_run(tmp_path)
        path = run.directory / "manifest.json"
        manifest = json.loads(path.read_text())
        del manifest["points"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="points"):
            validate_run_dir(run.directory)

    def test_validate_rejects_event_count_mismatch(self, tmp_path):
        run = self.make_run(tmp_path)
        events = run.directory / "events.jsonl"
        lines = events.read_text().splitlines()
        events.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ConfigurationError, match="events.jsonl logs 1"):
            validate_run_dir(run.directory)

    def test_validate_rejects_corrupt_jsonl_line(self, tmp_path):
        run = self.make_run(tmp_path)
        with (run.directory / "events.jsonl").open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            validate_run_dir(run.directory)

    def test_validate_rejects_bad_span_tree(self, tmp_path):
        run = self.make_run(tmp_path)
        with (run.directory / "spans.jsonl").open("a") as handle:
            handle.write(
                json.dumps(
                    {"event": "span", "pid": 1, "span": {"name": "x"}}
                )
                + "\n"
            )
        with pytest.raises(ConfigurationError, match="start_us"):
            validate_run_dir(run.directory)


class TestGitSha:
    def test_reads_the_repo_head(self):
        sha = git_sha()
        assert sha is not None and len(sha) == 40

    def test_returns_none_outside_a_checkout(self, tmp_path):
        assert git_sha(tmp_path) is None


class TestFaultToleranceTelemetry:
    def retried_outcome(self, index=0, quarantined=False):
        failure = (
            SweepFailure(
                error_type="WorkerCrash", message="died", retryable=True
            )
            if quarantined
            else None
        )
        return PointOutcome(
            index=index,
            key=f"k{index}",
            value=None if quarantined else index,
            failure=failure,
            attempts=3,
            telemetry=PointTelemetry(
                pid=4242, start_us=1e12, wall_s=0.5, kernels=(), spans=()
            ),
        )

    def test_retries_and_quarantine_reach_events_and_counters(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig1")
        run.record_point(self.retried_outcome(0))
        run.record_point(self.retried_outcome(1, quarantined=True))
        run.finalize()

        manifest = load_manifest(run.directory)
        assert manifest["points"]["retried"] == 2
        assert manifest["points"]["quarantined"] == 1
        events = load_events(run.directory)
        assert [e["attempts"] for e in events] == [3, 3]
        assert events[1]["error_type"] == "WorkerCrash"
        assert events[1]["retryable"] is True
        assert "retryable" not in events[0]

    def test_fault_plan_and_resume_land_in_manifest(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig1")
        run.set_fault_plan("seed=7,rate=0.5,kinds=raise")
        run.set_resume("20260101T000000Z-1", already_complete=41)
        run.finalize()

        manifest = load_manifest(run.directory)
        assert manifest["fault_injection"] == "seed=7,rate=0.5,kinds=raise"
        assert manifest["resume"] == {
            "run_id": "20260101T000000Z-1",
            "already_complete": 41,
        }
        resume_events = [
            e for e in load_events(run.directory) if e["event"] == "resume"
        ]
        assert resume_events == [
            {
                "event": "resume",
                "run_id": "20260101T000000Z-1",
                "already_complete": 41,
            }
        ]

    def test_clean_manifests_mark_no_fault_injection(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig1")
        run.finalize()
        manifest = load_manifest(run.directory)
        assert manifest["fault_injection"] is None
        assert manifest["resume"] is None

    def test_validate_accepts_a_fault_tolerant_run(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig1")
        run.set_resume("earlier-run", already_complete=1)
        run.record_point(self.retried_outcome(0, quarantined=True))
        run.finalize()
        summary = validate_run_dir(run.directory)
        assert summary["points"] == 1


def samples_for(point, channel="power.total_w", values=(40.0,)):
    return tuple(
        SampleRecord(channel=channel, t_us=1e12 + point * 10 + i, value=value)
        for i, value in enumerate(values)
    )


class TestTimeline:
    @pytest.fixture(autouse=True)
    def restore_global_sampler(self):
        previous = get_sampler()
        yield
        set_sampler(previous)

    def test_sampling_off_runs_write_no_timeline_file(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(outcome(0))
        run.finalize()
        assert not (run.directory / "timeline.jsonl").exists()
        assert load_timeline(run.directory) == ([], 0)
        manifest = load_manifest(run.directory)
        assert manifest["timeline"]["written"] == 0
        assert manifest["alerts"] == []

    def test_point_samples_round_trip_with_attribution(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(
            outcome(0, samples=samples_for(0, values=(40.0, 41.0)), lane="pool")
        )
        run.record_point(
            outcome(1, cached=True, samples=samples_for(1, values=(39.0,)))
        )
        run.finalize()

        lines = (run.directory / "timeline.jsonl").read_text().splitlines()
        header = json.loads(lines[0])
        assert header == {"schema": TIMELINE_SCHEMA, "run_id": run.run_id}

        entries, torn = load_timeline(run.directory)
        assert torn == 0
        assert [e["point"] for e in entries] == [0, 0, 1]
        assert [e["cached"] for e in entries] == [False, False, True]
        assert all(e["pid"] == 4242 for e in entries)
        assert [e["value"] for e in entries] == [40.0, 41.0, 39.0]

        manifest = load_manifest(run.directory)
        assert manifest["coordinator_pid"] == os.getpid()
        assert manifest["timeline"]["written"] == 3
        stats = manifest["timeline"]["channels"]["power.total_w"]
        assert stats["count"] == 3
        assert stats["min"] == 39.0 and stats["max"] == 41.0

    def test_events_carry_the_executor_lane(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(outcome(0, lane="farm"))
        run.record_point(outcome(1, cached=True, lane="cache"))
        run.finalize()
        events = load_events(run.directory)
        assert [e["lane"] for e in events] == ["farm", "cache"]

    def test_finalize_drains_coordinator_readings_as_pointless(self, tmp_path):
        sampler = CounterSampler(enabled=True, max_samples=8)
        set_sampler(sampler)
        sampler.sample("calibration.probe", 1.5)
        run = TelemetryRun(tmp_path, command="fig3")
        run.finalize()
        (entry,) = load_timeline(run.directory)[0]
        assert entry["point"] is None
        assert entry["channel"] == "calibration.probe"
        assert entry["pid"] == os.getpid()
        assert sampler.count == 0  # drained

    def test_seeded_violations_land_as_manifest_alerts(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(
            outcome(
                0,
                samples=samples_for(
                    0, channel="power.peak_temperature_c", values=(60.0, 97.0)
                ),
            )
        )
        run.record_point(
            outcome(
                1, samples=samples_for(1, channel="power.total_w", values=(65.0,))
            )
        )
        run.finalize()
        manifest = load_manifest(run.directory)
        assert {a["rule"] for a in manifest["alerts"]} == {
            "thermal-ceiling",
            "power-budget",
        }
        by_rule = {a["rule"]: a for a in manifest["alerts"]}
        assert by_rule["thermal-ceiling"]["value"] == 97.0
        assert by_rule["power-budget"]["threshold"] == 60.0

    def test_overflow_alert_reads_the_global_samplers_drop_count(self, tmp_path):
        sampler = CounterSampler(enabled=True, max_samples=1)
        set_sampler(sampler)
        sampler.sample("c", 1.0)
        sampler.sample("c", 2.0)  # dropped
        run = TelemetryRun(tmp_path, command="fig3")
        run.finalize()
        manifest = load_manifest(run.directory)
        assert manifest["timeline"]["dropped"] == 1
        assert "sampler-overflow" in {a["rule"] for a in manifest["alerts"]}


class TestTimelineValidation:
    def make_run(self, tmp_path):
        run = TelemetryRun(tmp_path, command="fig3")
        run.record_point(outcome(0, samples=samples_for(0, values=(40.0, 41.0))))
        run.finalize()
        return run

    def test_validate_counts_samples(self, tmp_path):
        run = self.make_run(tmp_path)
        summary = validate_run_dir(run.directory)
        assert summary["samples"] == 2
        assert summary["torn_samples"] == 0

    def test_torn_tail_is_tolerated_and_counted(self, tmp_path):
        run = self.make_run(tmp_path)
        with (run.directory / "timeline.jsonl").open("a") as handle:
            handle.write('{"event": "sample", "chan')  # crash mid-write
        summary = validate_run_dir(run.directory)
        assert summary["samples"] == 2
        assert summary["torn_samples"] == 1

    def test_declared_timeline_without_file_is_an_error(self, tmp_path):
        run = self.make_run(tmp_path)
        (run.directory / "timeline.jsonl").unlink()
        with pytest.raises(ConfigurationError, match="timeline.jsonl is missing"):
            validate_run_dir(run.directory)

    def test_complete_run_with_count_mismatch_is_an_error(self, tmp_path):
        run = self.make_run(tmp_path)
        path = run.directory / "timeline.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one sample
        with pytest.raises(ConfigurationError, match="timeline.jsonl logs 1"):
            validate_run_dir(run.directory)

    def test_malformed_sample_entry_is_an_error(self, tmp_path):
        run = self.make_run(tmp_path)
        with (run.directory / "timeline.jsonl").open("a") as handle:
            handle.write(json.dumps({"event": "sample", "channel": "c"}) + "\n")
        with pytest.raises(ConfigurationError, match="missing/invalid"):
            validate_run_dir(run.directory)

    def test_foreign_timeline_schema_is_rejected(self, tmp_path):
        run = self.make_run(tmp_path)
        path = run.directory / "timeline.jsonl"
        lines = path.read_text().splitlines()
        lines[0] = json.dumps({"schema": "someone-elses-v9"})
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="timeline schema"):
            load_timeline(run.directory)

    def test_headerless_timeline_is_rejected(self, tmp_path):
        run = self.make_run(tmp_path)
        path = run.directory / "timeline.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ConfigurationError, match="missing timeline header"):
            load_timeline(run.directory)
