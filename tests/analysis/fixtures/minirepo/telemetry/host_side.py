"""Telemetry is host-side by contract: determinism rules do not apply."""

import time


def wall_now() -> float:
    return time.time()  # exempt: telemetry/ is outside the DET scope
