"""Seeded SI-unit violations (analyzer fixture; never imported)."""


def configure(frequency_hz: float) -> float:
    return frequency_hz


def mixed_dimensions(clock_hz: float, wall_s: float) -> float:
    return clock_hz + wall_s  # UNIT-MIXED (frequency + time)


def mixed_scales(fast_hz: float, slow_mhz: float) -> bool:
    return fast_hz < slow_mhz  # UNIT-MIXED (same dimension, scales differ)


def magic_conversion(frequency_hz: float) -> float:
    return frequency_hz / 1e9  # UNIT-MAGIC (bare 1e9)


def magic_spelled_out(delay_ns: float) -> float:
    return delay_ns * 1000.0  # UNIT-MAGIC (1000.0 == KILO)


def call_mismatch(speed_mhz: float) -> float:
    return configure(speed_mhz)  # UNIT-ARG (mhz into an hz parameter)


def keyword_mismatch(speed_mhz: float) -> float:
    return configure(frequency_hz=speed_mhz)  # UNIT-ARG (keyword form)
