"""Figure 4 — experimental Scenario II: nominal vs actual speedup.

Regenerates the paper's Figure 4: for FMM, Cholesky and Radix (descending
computational intensity), the nominal speedup (from the profiled
efficiency, no power constraint) versus the actual speedup under the
single-core power budget derived by microbenchmarking, N = 1..16.

Shape assertions (the paper's Section 4.2 observations):

* actual <= nominal everywhere;
* the nominal/actual gap is largest for FMM and smallest for Radix;
* Radix runs at nominal V/f — actual == nominal — up to eight cores,
  because its stalls keep it far under the budget.
"""

import pytest

from repro.harness import render_table, run_scenario2
from repro.workloads import workload_by_name

FIG4_APPS = ("FMM", "Cholesky", "Radix")
FIG4_CORE_COUNTS = (1, 2, 4, 6, 8, 10, 12, 14, 16)


@pytest.fixture(scope="module")
def scenario2_results(experiment_context):
    models = [workload_by_name(a) for a in FIG4_APPS]
    return run_scenario2(experiment_context, models, core_counts=FIG4_CORE_COUNTS)


def test_figure4_pipeline(benchmark, experiment_context):
    """Time one (application, N) budget search + final run (Cholesky, 8)."""
    rows = benchmark.pedantic(
        lambda: run_scenario2(
            experiment_context, [workload_by_name("Cholesky")], core_counts=(8,)
        ),
        rounds=1,
        iterations=1,
    )
    assert rows["Cholesky"][0].power_w <= rows["Cholesky"][0].budget_w * 1.05


def test_figure4_series(benchmark, scenario2_results):
    benchmark.pedantic(lambda: scenario2_results, rounds=1, iterations=1)
    print()
    table_rows = []
    for app in FIG4_APPS:
        for r in scenario2_results[app]:
            table_rows.append(
                [
                    app,
                    r.n,
                    r.nominal_speedup,
                    r.actual_speedup,
                    r.frequency_hz / 1e9,
                    r.power_w,
                ]
            )
    print(
        render_table(
            ["app", "N", "nominal", "actual", "f (GHz)", "P (W)"],
            table_rows,
            title="Figure 4: nominal vs actual speedup under the 1-core budget",
        )
    )

    for app in FIG4_APPS:
        for r in scenario2_results[app]:
            # Budget respected and actual never beats nominal (small
            # tolerance for simulator noise at equal operating points).
            assert r.power_w <= r.budget_w * 1.05, (app, r.n)
            assert r.actual_speedup <= r.nominal_speedup * 1.02, (app, r.n)


def test_figure4_gap_ordering(benchmark, scenario2_results):
    """The nominal/actual gap orders FMM > Cholesky > Radix at 16 cores."""
    benchmark.pedantic(lambda: scenario2_results, rounds=1, iterations=1)

    def gap(app):
        row = [r for r in scenario2_results[app] if r.n == 16][0]
        return (row.nominal_speedup - row.actual_speedup) / row.nominal_speedup

    assert gap("FMM") > gap("Cholesky") > gap("Radix")


def test_figure4_radix_nominal_through_8_cores(benchmark, scenario2_results):
    """Radix fits the budget at nominal V/f up to eight cores."""
    benchmark.pedantic(lambda: scenario2_results, rounds=1, iterations=1)
    for r in scenario2_results["Radix"]:
        if r.n <= 8:
            assert r.runs_at_nominal, r.n
            assert r.actual_speedup == pytest.approx(r.nominal_speedup, rel=1e-9)


def test_figure4_fmm_throttles_early(benchmark, scenario2_results):
    """The compute-intensive FMM must throttle from small N."""
    benchmark.pedantic(lambda: scenario2_results, rounds=1, iterations=1)
    throttled = [r.n for r in scenario2_results["FMM"] if not r.runs_at_nominal]
    assert throttled and min(throttled) <= 4
