"""Declarative alert rules over sampled counter timelines.

A rule names a channel and a condition over that channel's running
statistics; findings are produced once per rule at evaluation time (end
of a telemetry run, or on demand from a persisted ``timeline.jsonl``).
Rules deliberately read *aggregated* channel statistics rather than raw
samples so the :class:`~repro.telemetry.manifest.TelemetryRun` can fold
samples into :class:`ChannelStats` incrementally and never hold a whole
sweep's timeline in memory.

Four rule kinds cover the failure modes the paper's trajectories make
visible:

``above``
    The channel's maximum reached ``threshold`` — used for the
    thermal-ceiling proximity and power-budget rules.
``below``
    The channel's minimum fell to ``threshold`` or under.
``collapse``
    The channel's minimum fell below ``threshold`` × its maximum — a
    relative drop, used to catch IPC collapsing past the optimal
    thread count regardless of the workload's absolute IPC.
``overflow``
    The sampler dropped readings (its bounded buffer filled); the
    timeline is truncated and the other findings may under-report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class AlertRule:
    """One declarative condition over a sampled channel."""

    name: str
    kind: str  # "above" | "below" | "collapse" | "overflow"
    channel: str = ""
    threshold: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _RULE_KINDS:
            raise ValueError(
                f"unknown alert rule kind {self.kind!r}; expected one of {sorted(_RULE_KINDS)}"
            )
        if self.kind != "overflow" and not self.channel:
            raise ValueError(f"alert rule {self.name!r} ({self.kind}) needs a channel")


@dataclass(frozen=True)
class AlertFinding:
    """One fired rule, with the observed value that tripped it."""

    rule: str
    kind: str
    channel: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "channel": self.channel,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


@dataclass
class ChannelStats:
    """Running statistics for one channel; O(1) per observed sample."""

    count: int = 0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))
    total: float = 0.0
    last: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.total += value
        self.last = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean(),
            "last": self.last,
        }


_RULE_KINDS = frozenset({"above", "below", "collapse", "overflow"})

#: Built-in rules evaluated on every telemetry run.  Thresholds are
#: indicative defaults for the paper's calibration: the thermal model
#: is calibrated against a 100 °C junction ceiling, so 95 °C flags
#: proximity; 60 W is the budget scale of the studied CMP envelope;
#: IPC dropping under half its own peak marks the post-optimal-N
#: collapse regardless of absolute throughput.
DEFAULT_RULES: Tuple[AlertRule, ...] = (
    AlertRule(
        name="thermal-ceiling",
        kind="above",
        # Watches the *converged* fixed-point peak, not the raw
        # ``thermal.peak_c`` solver channel: calibration probes and
        # early fixed-point iterations legitimately overshoot before
        # settling, and an alert that fires on every run says nothing.
        channel="power.peak_temperature_c",
        threshold=95.0,
        message="peak temperature within 5 degC of the 100 degC calibration ceiling",
    ),
    AlertRule(
        name="power-budget",
        kind="above",
        channel="power.total_w",
        threshold=60.0,
        message="chip power exceeded the 60 W sweep budget",
    ),
    AlertRule(
        name="ipc-collapse",
        kind="collapse",
        channel="sim.ipc",
        threshold=0.5,
        message="per-window IPC fell below half its peak (past the optimal thread count)",
    ),
    AlertRule(
        name="sampler-overflow",
        kind="overflow",
        message="counter sampler dropped readings; the timeline is truncated",
    ),
)


def stats_from_samples(samples: Iterable[Any]) -> Dict[str, ChannelStats]:
    """Fold SampleRecord-shaped readings into per-channel statistics."""
    stats: Dict[str, ChannelStats] = {}
    for record in samples:
        entry = stats.get(record.channel)
        if entry is None:
            entry = stats[record.channel] = ChannelStats()
        entry.observe(record.value)
    return stats


def evaluate_rules(
    stats: Mapping[str, ChannelStats],
    rules: Optional[Sequence[AlertRule]] = None,
    dropped: int = 0,
) -> List[AlertFinding]:
    """Evaluate rules against channel statistics; one finding per fired rule.

    ``dropped`` is the sampler's drop count (the ``overflow`` kind has
    no channel to read it from).  Rules whose channel was never sampled
    simply do not fire.
    """
    findings: List[AlertFinding] = []
    for rule in DEFAULT_RULES if rules is None else rules:
        if rule.kind == "overflow":
            if dropped > rule.threshold:
                findings.append(
                    AlertFinding(
                        rule=rule.name,
                        kind=rule.kind,
                        channel=rule.channel,
                        value=float(dropped),
                        threshold=rule.threshold,
                        message=rule.message,
                    )
                )
            continue
        entry = stats.get(rule.channel)
        if entry is None or not entry.count:
            continue
        fired = False
        value = 0.0
        if rule.kind == "above":
            fired = entry.maximum >= rule.threshold
            value = entry.maximum
        elif rule.kind == "below":
            fired = entry.minimum <= rule.threshold
            value = entry.minimum
        elif rule.kind == "collapse":
            fired = entry.count >= 2 and entry.minimum < rule.threshold * entry.maximum
            value = entry.minimum
        if fired:
            findings.append(
                AlertFinding(
                    rule=rule.name,
                    kind=rule.kind,
                    channel=rule.channel,
                    value=value,
                    threshold=rule.threshold,
                    message=rule.message,
                )
            )
    return findings
