"""UNIT-* rules: suffix inference, magic constants, call-site mismatches."""

import ast

from repro.analysis.unitcheck import infer_unit, unit_of_name

from tests.analysis.conftest import findings_for

BAD = "power/bad_units.py"
OK = "power/ok_units.py"


def test_mixed_units_flagged(fixture_report):
    found = findings_for(fixture_report, "UNIT-MIXED", BAD)
    assert len(found) == 2
    dimensions = [f for f in found if "different dimensions" in f.message]
    scales = [f for f in found if "different scales" in f.message]
    assert len(dimensions) == 1 and len(scales) == 1


def test_magic_constants_flagged(fixture_report):
    found = findings_for(fixture_report, "UNIT-MAGIC", BAD)
    assert len(found) == 2
    assert any("GIGA" in f.message for f in found)
    assert any("KILO" in f.message for f in found)  # 1000.0 matches by value


def test_call_site_mismatch_flagged(fixture_report):
    found = findings_for(fixture_report, "UNIT-ARG", BAD)
    assert len(found) == 2  # positional and keyword forms
    assert all("frequency_hz" in f.message for f in found)


def test_clean_units_not_flagged(fixture_report):
    assert not [f for f in fixture_report.findings if f.path == OK]


def test_unit_of_name():
    assert unit_of_name("frequency_hz") == "hz"
    assert unit_of_name("wall_s") == "s"
    assert unit_of_name("die_area_m2") == "m2"
    assert unit_of_name("temperature_k") == "k"
    assert unit_of_name("ns") == "ns"  # bare multi-char token
    assert unit_of_name("s") is None  # bare single letters never match
    assert unit_of_name("plain_name") is None
    assert unit_of_name("hz_table") is None  # suffix position only


def _unit_of(expression: str):
    return infer_unit(ast.parse(expression, mode="eval").body)


def test_inference_through_expressions():
    assert _unit_of("frequency_hz") == "hz"
    assert _unit_of("chip.frequency_hz") == "hz"
    assert _unit_of("event['wall_s']") == "s"
    assert _unit_of("access_time_ns(geometry)") == "ns"
    assert _unit_of("-duration_us") == "us"
    assert _unit_of("rise_s + fall_s") == "s"
    assert _unit_of("rise_s + fall_ms") is None  # mixed: no single unit
    assert _unit_of("wall_s * 3") == "s"  # dimensionless scaling
    assert _unit_of("start_ns / 1000.0") is None  # conversion erases unit
    assert _unit_of("start_ns / KILO") is None  # named conversion too
