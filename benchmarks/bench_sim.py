"""Wall-clock benchmark of the simulation kernel: fast path vs reference.

Run directly (not collected by pytest, which only looks in ``tests/``)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_sim.py \
        [--quick] [--mode full|layout] \
        [--output BENCH_sim.json] [--check BASELINE.json]

``--mode layout`` skips the simulations and instead micro-benchmarks the
kernel's data structures (flat-array cache lookup/insert/evict and the
bitmask coherence sharer cycle) in ns/op; see
:func:`run_layout_benchmark`.  The default ``--mode full`` measures
whole simulations:

For each (workload, core count) point the benchmark measures simulated
ops per host second three ways:

1. ``reference`` — the pre-fast-path execution model: streams generated
   fresh (lazy generators) and interpreted one op per scheduler step
   through the full controller call chain;
2. ``fast_cold`` — compiled streams (compile time included) on the
   fast-path kernel;
3. ``fast_warm`` — compile cache warm (the sweep steady state: every
   V/f point after the first reuses the compiled streams);
4. ``fast_warm_telemetry`` — same as ``fast_warm`` but with an enabled
   :class:`repro.telemetry.trace.Tracer` installed, measuring what
   ``--telemetry-dir`` costs in the kernel loop.  The run doubles the
   geomean tracing overhead into the summary, and the benchmark exits
   non-zero when it exceeds ``--max-telemetry-overhead`` (default 15%);
5. ``fast_warm_sampling`` — same as ``fast_warm`` but with an enabled
   :class:`repro.telemetry.timeseries.CounterSampler` installed (tracer
   off), isolating the cost of counter sampling alone.  Gated by
   ``--max-sampling-overhead`` (default 10%) the same way.

Each mode runs ``--repeats`` times and keeps the best (least-noise)
time.  Counters are asserted identical between reference, fast,
fast-with-telemetry, and fast-with-sampling on every point, so the
benchmark doubles as an end-to-end equivalence check.

``--check BASELINE.json`` guards against perf regressions in CI: for
every point present in both runs it compares ``speedup_warm`` (warm
fast-path ops/sec over reference ops/sec *from the same run on the same
machine*) and fails if it dropped by more than ``--tolerance`` (default
30%).  Comparing the ratio rather than raw ops/sec keeps the check
meaningful across machines of different speeds.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import asdict

from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OpStreamCache, compile_workload
from repro.telemetry.timeseries import CounterSampler, get_sampler, set_sampler
from repro.telemetry.trace import Tracer, get_tracer, set_tracer
from repro.workloads import WorkloadModel, workload_by_name

FULL_APPS = ("FMM", "LU", "Ocean", "Radix")
FULL_CORE_COUNTS = (1, 4, 16)
QUICK_APPS = ("FMM", "Ocean")
QUICK_CORE_COUNTS = (4,)
SCHEMA = "bench-sim-v1"


def counters(result):
    """The simulated counters of one run (for the equivalence assert)."""
    return (
        result.execution_time_ps,
        [asdict(s) for s in result.core_stats],
        asdict(result.coherence),
        result.memory_requests,
        result.lock_acquires,
        result.barriers,
    )


def bench_point(app: str, n: int, scale: float, repeats: int) -> dict:
    """Measure one (workload, core count) point in all three modes."""
    model = WorkloadModel(workload_by_name(app).spec.scaled(scale))
    config = CMPConfig(n_cores=n)
    timing = model.core_timing()
    warmup = model.warmup_barriers

    def reference_run():
        start = time.perf_counter()
        result = ChipMultiprocessor(config, fast_path=False).run(
            [model.thread_ops(t, n) for t in range(n)],
            timing,
            warmup_barriers=warmup,
        )
        return result, time.perf_counter() - start

    def fast_run(cache):
        start = time.perf_counter()
        compiled = compile_workload(model, n, cache=cache)
        # The whole program, not just its streams: the kernel consumes
        # the memoized private-line classification for the wide horizon.
        result = ChipMultiprocessor(config, fast_path=True).run(
            compiled.program, timing, warmup_barriers=warmup
        )
        return result, time.perf_counter() - start

    def traced_fast_run(cache):
        tracer = Tracer(enabled=True)
        previous = get_tracer()
        set_tracer(tracer)
        try:
            return fast_run(cache)
        finally:
            tracer.drain_records()
            set_tracer(previous)

    def sampled_fast_run(cache):
        sampler = CounterSampler(enabled=True)
        previous = get_sampler()
        set_sampler(sampler)
        try:
            return fast_run(cache)
        finally:
            set_sampler(previous)

    best = {}
    reference = fast = traced = sampled = None
    for _ in range(repeats):
        reference, t_ref = reference_run()
        cold_cache = OpStreamCache()
        fast, t_cold = fast_run(cold_cache)  # compile included
        fast, t_warm = fast_run(cold_cache)  # cache hit
        traced, t_traced = traced_fast_run(cold_cache)  # cache hit + tracer
        sampled, t_sampled = sampled_fast_run(cold_cache)  # cache hit + sampler
        for mode, seconds in (
            ("reference", t_ref),
            ("fast_cold", t_cold),
            ("fast_warm", t_warm),
            ("fast_warm_telemetry", t_traced),
            ("fast_warm_sampling", t_sampled),
        ):
            best[mode] = min(best.get(mode, math.inf), seconds)

    if counters(reference) != counters(fast):
        raise AssertionError(
            f"{app} n={n}: fast path diverged from the reference interpreter"
        )
    if counters(reference) != counters(traced):
        raise AssertionError(
            f"{app} n={n}: enabling telemetry changed the simulated counters"
        )
    if counters(reference) != counters(sampled):
        raise AssertionError(
            f"{app} n={n}: enabling counter sampling changed the simulated "
            "counters"
        )

    ops = reference.kernel.total_ops
    point = {
        "app": app,
        "n": n,
        "scale": scale,
        "ops": ops,
        "fast_path_ratio": round(fast.kernel.fast_path_ratio, 4),
    }
    for mode, seconds in best.items():
        point[f"{mode}_ops_per_sec"] = round(ops / seconds, 1)
    point["speedup_cold"] = round(best["reference"] / best["fast_cold"], 3)
    point["speedup_warm"] = round(best["reference"] / best["fast_warm"], 3)
    point["telemetry_overhead"] = round(
        best["fast_warm_telemetry"] / best["fast_warm"] - 1.0, 4
    )
    point["sampling_overhead"] = round(
        best["fast_warm_sampling"] / best["fast_warm"] - 1.0, 4
    )
    return point


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


# ---------------------------------------------------------------------------
# --mode layout: data-structure micro-benchmarks.
# ---------------------------------------------------------------------------

LAYOUT_SCHEMA = "bench-sim-layout-v1"


def _time_loop(fn, iterations: int, repeats: int) -> float:
    """Best-of-``repeats`` nanoseconds per call of ``fn(iterations)``."""
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn(iterations)
        best = min(best, time.perf_counter() - start)
    return 1e9 * best / iterations


def run_layout_benchmark(args) -> dict:
    """Isolate the flat-array cache and bitmask-coherence op costs.

    Four micro-kernels, each reported as best-of-``--repeats`` ns/op:

    - ``lookup_hit``     — resident-line lookups (move-to-front path);
    - ``lookup_miss``    — non-resident lookups (full-set scan, no fill);
    - ``insert_evict``   — inserts into full sets (victim + shift-down);
    - ``sharer_cycle``   — coherence reads cycling a line through all
      cores (bitmask add/iterate) then a write (mask invalidation).
    """
    from repro.sim.bus import BusConfig, SharedBus
    from repro.sim.cache import Cache, CacheConfig
    from repro.sim.clock import ClockDomain
    from repro.sim.coherence import MESIController
    from repro.sim.memory import MainMemory

    config = CacheConfig(capacity_bytes=32 * 1024, line_bytes=32, associativity=4)
    n_lines = config.n_sets * config.associativity

    # Cache methods take *line* addresses; consecutive integers stripe
    # the sets evenly (set = line % n_sets).
    def bench_lookup_hit(iterations: int) -> None:
        cache = Cache(config)
        for line in range(n_lines):
            cache.insert(line, state=1)
        lookup = cache.lookup
        for i in range(iterations):
            lookup(i % n_lines)

    def bench_lookup_miss(iterations: int) -> None:
        cache = Cache(config)
        for line in range(n_lines):
            cache.insert(line, state=1)
        lookup = cache.lookup
        for i in range(iterations):
            lookup(n_lines + i % n_lines)

    def bench_insert_evict(iterations: int) -> None:
        cache = Cache(config)
        insert = cache.insert
        for line in range(iterations):
            insert(line, state=1)

    def bench_sharer_cycle(iterations: int) -> None:
        n_cores = 8
        clock = ClockDomain(3.2e9)
        ctrl = MESIController(
            l1_caches=[Cache(config) for _ in range(n_cores)],
            l2=Cache(
                CacheConfig(
                    capacity_bytes=4 * 1024 * 1024,
                    line_bytes=config.line_bytes,
                    associativity=8,
                )
            ),
            bus=SharedBus(BusConfig(), clock),
            memory=MainMemory(),
            clock=clock,
        )
        now_ps = 0
        for i in range(max(iterations // (n_cores + 1), 1)):
            addr = (i % 64) * config.line_bytes
            for core in range(n_cores):
                now_ps += ctrl.read(core, addr, now_ps)
            now_ps += ctrl.write(0, addr, now_ps)

    kernels = {
        "lookup_hit": (bench_lookup_hit, 200_000),
        "lookup_miss": (bench_lookup_miss, 200_000),
        "insert_evict": (bench_insert_evict, 100_000),
        "sharer_cycle": (bench_sharer_cycle, 90_000),
    }
    results = {}
    for name, (fn, iterations) in kernels.items():
        ns = _time_loop(fn, iterations, args.repeats)
        results[name] = round(ns, 1)
        print(f"{name:13s}: {ns:8.1f} ns/op  ({iterations:,} iterations)")
    return {
        "schema": LAYOUT_SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {"repeats": args.repeats},
        "ns_per_op": results,
    }


def run_benchmark(args) -> dict:
    apps = QUICK_APPS if args.quick else FULL_APPS
    core_counts = QUICK_CORE_COUNTS if args.quick else FULL_CORE_COUNTS
    points = []
    for app in apps:
        for n in core_counts:
            point = bench_point(app, n, args.scale, args.repeats)
            points.append(point)
            print(
                f"{app:6s} n={n:2d}: ref {point['reference_ops_per_sec']:>11,.0f} "
                f"ops/s, warm {point['fast_warm_ops_per_sec']:>11,.0f} ops/s "
                f"({point['speedup_warm']:.2f}x, "
                f"fast-path {100 * point['fast_path_ratio']:.1f}%, "
                f"telemetry {100 * point['telemetry_overhead']:+.1f}%, "
                f"sampling {100 * point['sampling_overhead']:+.1f}%)"
            )
    warm = [p["speedup_warm"] for p in points]
    overhead_ratios = [1.0 + p["telemetry_overhead"] for p in points]
    sampling_ratios = [1.0 + p["sampling_overhead"] for p in points]
    return {
        "schema": SCHEMA,
        "host": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "config": {
            "scale": args.scale,
            "repeats": args.repeats,
            "quick": args.quick,
        },
        "points": points,
        "summary": {
            "geomean_speedup_warm": round(geomean(warm), 3),
            "min_speedup_warm": min(warm),
            "max_speedup_warm": max(warm),
            "geomean_telemetry_overhead": round(
                geomean(overhead_ratios) - 1.0, 4
            ),
            "max_telemetry_overhead": max(p["telemetry_overhead"] for p in points),
            "geomean_sampling_overhead": round(
                geomean(sampling_ratios) - 1.0, 4
            ),
            "max_sampling_overhead": max(p["sampling_overhead"] for p in points),
        },
    }


def check_regression(report: dict, baseline_path: str, tolerance: float) -> int:
    """Exit code 1 if any shared point regressed beyond ``tolerance``."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    reference = {
        (p["app"], p["n"], p["scale"]): p for p in baseline.get("points", [])
    }
    failures = []
    compared = 0
    for point in report["points"]:
        key = (point["app"], point["n"], point["scale"])
        old = reference.get(key)
        if old is None:
            continue
        compared += 1
        floor = (1.0 - tolerance) * old["speedup_warm"]
        if point["speedup_warm"] < floor:
            failures.append(
                f"{point['app']} n={point['n']}: speedup_warm "
                f"{point['speedup_warm']:.2f}x < {floor:.2f}x "
                f"(baseline {old['speedup_warm']:.2f}x - {tolerance:.0%})"
            )
    if not compared:
        print(f"[check] no comparable points in {baseline_path}", file=sys.stderr)
        return 1
    if failures:
        for line in failures:
            print(f"[check] REGRESSION: {line}", file=sys.stderr)
        return 1
    print(f"[check] {compared} points within {tolerance:.0%} of baseline")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small point set for CI smoke runs",
    )
    parser.add_argument(
        "--mode",
        choices=("full", "layout"),
        default="full",
        help=(
            "'full' benchmarks whole simulations; 'layout' micro-benchmarks "
            "the flat-array cache and bitmask coherence ops (ns/op)"
        ),
    )
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per mode, best kept (default: 3)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the JSON report to PATH",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="fail if speedup_warm regressed vs a previous report",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression for --check (default: 0.30)",
    )
    parser.add_argument(
        "--max-telemetry-overhead",
        type=float,
        default=0.15,
        help=(
            "fail when the geomean tracing slowdown exceeds this fraction "
            "(default: 0.15 — the kernel-v2 fast path roughly halved warm "
            "run time, so the tracer's fixed per-slow-op cost is a "
            "proportionally larger slice; negative disables the gate)"
        ),
    )
    parser.add_argument(
        "--max-sampling-overhead",
        type=float,
        default=0.10,
        help=(
            "fail when the geomean counter-sampling slowdown exceeds this "
            "fraction (default: 0.10 — the sampler only fires at window "
            "boundaries, so it should cost far less than the per-slow-op "
            "tracer; negative disables the gate)"
        ),
    )
    args = parser.parse_args()

    if args.mode == "layout":
        report = run_layout_benchmark(args)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.output}")
        if args.check:
            print("[check] --check applies to --mode full only", file=sys.stderr)
            return 2
        return 0

    report = run_benchmark(args)
    summary = report["summary"]
    print(
        f"speedup_warm: geomean {summary['geomean_speedup_warm']:.2f}x, "
        f"min {summary['min_speedup_warm']:.2f}x, "
        f"max {summary['max_speedup_warm']:.2f}x"
    )
    overhead = summary["geomean_telemetry_overhead"]
    print(f"telemetry overhead: geomean {100 * overhead:+.1f}%")
    if 0 <= args.max_telemetry_overhead < overhead:
        print(
            f"[check] REGRESSION: telemetry overhead {overhead:.1%} exceeds "
            f"the {args.max_telemetry_overhead:.0%} budget",
            file=sys.stderr,
        )
        return 1
    sampling_overhead = summary["geomean_sampling_overhead"]
    print(f"sampling overhead: geomean {100 * sampling_overhead:+.1f}%")
    if 0 <= args.max_sampling_overhead < sampling_overhead:
        print(
            f"[check] REGRESSION: sampling overhead {sampling_overhead:.1%} "
            f"exceeds the {args.max_sampling_overhead:.0%} budget",
            file=sys.stderr,
        )
        return 1
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    if args.check:
        return check_regression(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
