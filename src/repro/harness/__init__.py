"""Experiment pipelines for the paper's evaluation section (Section 4).

* :mod:`~repro.harness.context` — shared infrastructure: the Table 1
  machine, thermal model, Wattch energies, the Section 3.3 calibration,
  and the Pentium-M-style V/f table.
* :mod:`~repro.harness.profiling` — nominal-V/f profiling runs that
  produce each application's nominal-efficiency curve (Section 4.1's
  first step).
* :mod:`~repro.harness.scenario1` — the experimental power-optimization
  pipeline behind Figure 3's five panels.
* :mod:`~repro.harness.scenario2` — the experimental
  performance-under-budget pipeline behind Figure 4.
* :mod:`~repro.harness.tables` — plain-text rendering of the
  paper-style tables and series.
* :mod:`~repro.harness.executor` — the parallel sweep executor and its
  memoizing, content-addressed result cache; every experiment pipeline
  above fans its independent points out through it.
"""

from repro.harness.context import ExperimentContext
from repro.harness.executor import (
    PointOutcome,
    ResultCache,
    SweepExecutor,
    SweepFailure,
    config_key,
)
from repro.harness.profiling import (
    ApplicationProfile,
    KernelAggregate,
    ProfileEntry,
    SimPointRow,
    SimPointTask,
    profile_rows,
    simulate_point,
)
from repro.harness.scenario1 import Scenario1Row, run_scenario1
from repro.harness.scenario2 import (
    OverclockRow,
    Scenario2Row,
    run_overclocking_study,
    run_scenario2,
)
from repro.harness.optimizer import (
    MaxSpeedupUnderBudget,
    MinEnergyDelay,
    MinPowerAtIsoPerformance,
    OBJECTIVES,
    OptimizerCampaign,
    OptimizerRow,
    objective_by_name,
    run_optimizer,
    run_scenario1_adaptive,
    run_scenario2_adaptive,
)
from repro.harness.percore import (
    PerCoreDVFSResult,
    plan_core_frequencies,
    run_percore_dvfs,
    run_percore_dvfs_suite,
)
from repro.harness.designspace import (
    DesignPoint,
    DesignRunRow,
    bus_width_variants,
    interconnect_variants,
    l2_capacity_variants,
    memory_latency_variants,
    sweep_design_parameter,
)
from repro.harness.thermal_transient import ThermalTransient, thermal_step_response
from repro.harness.migration import (
    MigrationResult,
    compare_migration,
    run_activity_migration,
)
from repro.harness.governor import (
    GovernedRun,
    MemorySlackGovernor,
    PerformanceGovernor,
    WindowMeasurement,
    run_governed,
)
from repro.harness.replication import ReplicationSummary, replicate, reseeded
from repro.harness.compare import (
    AgreementPoint,
    AgreementSummary,
    compare_scenario1,
)
from repro.harness.store import load_results, save_results
from repro.harness.asciichart import bar_chart, xy_chart
from repro.harness.tables import render_table

__all__ = [
    "ExperimentContext",
    "SweepExecutor",
    "ResultCache",
    "PointOutcome",
    "SweepFailure",
    "config_key",
    "ApplicationProfile",
    "KernelAggregate",
    "ProfileEntry",
    "SimPointRow",
    "SimPointTask",
    "profile_rows",
    "simulate_point",
    "Scenario1Row",
    "run_scenario1",
    "Scenario2Row",
    "run_scenario2",
    "OverclockRow",
    "run_overclocking_study",
    "MaxSpeedupUnderBudget",
    "MinEnergyDelay",
    "MinPowerAtIsoPerformance",
    "OBJECTIVES",
    "OptimizerCampaign",
    "OptimizerRow",
    "objective_by_name",
    "run_optimizer",
    "run_scenario1_adaptive",
    "run_scenario2_adaptive",
    "PerCoreDVFSResult",
    "plan_core_frequencies",
    "run_percore_dvfs",
    "run_percore_dvfs_suite",
    "DesignPoint",
    "DesignRunRow",
    "bus_width_variants",
    "interconnect_variants",
    "l2_capacity_variants",
    "memory_latency_variants",
    "sweep_design_parameter",
    "ThermalTransient",
    "thermal_step_response",
    "MigrationResult",
    "compare_migration",
    "run_activity_migration",
    "GovernedRun",
    "MemorySlackGovernor",
    "PerformanceGovernor",
    "WindowMeasurement",
    "run_governed",
    "ReplicationSummary",
    "replicate",
    "reseeded",
    "AgreementPoint",
    "AgreementSummary",
    "compare_scenario1",
    "load_results",
    "save_results",
    "bar_chart",
    "xy_chart",
    "render_table",
]
