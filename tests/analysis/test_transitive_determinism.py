"""Transitive determinism taint: hazards reached through call chains."""

from tests.analysis.conftest import findings_for

TRANSITIVE = "sim/transitive.py"


def _transitive(report):
    # Transitive findings are the ones whose message carries a taint
    # path; direct findings say what the statement itself does.
    return [
        f
        for f in findings_for(report, "DET-WALLCLOCK", TRANSITIVE)
        if "transitively reaches" in f.message
    ]


def test_boundary_call_is_flagged_with_the_taint_path(fixture_report):
    found = _transitive(fixture_report)
    assert [f.line for f in found] == [13]
    message = found[0].message
    assert "call to `outer_helper`" in message
    # The hazard's true location, two frames down...
    assert "harness/clocky.py:19" in message
    # ...and the chain that reaches it.
    assert "via outer_helper -> inner_helper" in message


def test_only_the_tainted_step_is_flagged(fixture_report):
    # audited_step (suppressed hazard), exempt_step (telemetry/), and
    # clean_step must all stay silent: exactly one finding in the file.
    in_file = [
        f for f in fixture_report.findings if f.path == TRANSITIVE
    ]
    assert [f.line for f in in_file] == [13]


def test_audited_hazard_does_not_taint_callers(fixture_report):
    # The suppression sits on the hazard in harness/clocky.py; no
    # finding may anchor at audited_step's call site (line 19).
    assert not any(
        f.path == TRANSITIVE and f.line == 19
        for f in fixture_report.findings
    )


def test_out_of_scope_helpers_are_not_flagged_directly(fixture_report):
    # harness/ is outside the determinism scope: the hazards there feed
    # taint but never produce findings of their own.
    assert not any(
        f.path == "harness/clocky.py" for f in fixture_report.findings
    )


def test_live_tree_has_no_transitive_leaks(live_report):
    assert not any(
        "transitively reaches" in f.message for f in live_report.findings
    )
