"""Tests for the JSON results store."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.harness.designspace import DesignPoint
from repro.harness.percore import PerCoreDVFSResult
from repro.harness.scenario1 import Scenario1Row
from repro.harness.scenario2 import Scenario2Row
from repro.harness.store import SCHEMA_VERSION, load_results, save_results


def sample_rows():
    return {
        "fig3": [
            Scenario1Row(
                app="FMM",
                n=4,
                nominal_efficiency=0.85,
                actual_speedup=1.2,
                normalized_power=0.45,
                normalized_power_density=0.12,
                average_temperature_c=48.5,
                frequency_hz=0.9e9,
                voltage=0.73,
                total_power_w=4.0,
            )
        ],
        "fig4": [
            Scenario2Row(
                app="Radix",
                n=8,
                nominal_speedup=6.5,
                actual_speedup=6.5,
                frequency_hz=3.2e9,
                voltage=1.1,
                power_w=12.0,
                budget_w=17.2,
            )
        ],
        "percore": [
            PerCoreDVFSResult(
                app="Cholesky",
                n=4,
                uniform_time_s=1e-5,
                uniform_energy_j=1e-4,
                percore_time_s=1.1e-5,
                percore_energy_j=8e-5,
                core_frequencies_hz=(3.2e9, 2.4e9, 2.4e9, 2.6e9),
                core_voltages=(1.1, 0.97, 0.97, 1.0),
            )
        ],
        "design": [
            DesignPoint(
                label="L2=4MB",
                n=8,
                execution_time_s=1e-5,
                nominal_efficiency=0.7,
                l1_miss_rate=0.05,
                memory_stall_fraction=0.4,
                bus_utilisation=0.5,
            )
        ],
    }


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        path = tmp_path / "campaign.json"
        original = sample_rows()
        save_results(original, path)
        loaded = load_results(path)
        assert loaded == original

    def test_tuples_restored(self, tmp_path):
        path = tmp_path / "c.json"
        save_results(sample_rows(), path)
        loaded = load_results(path)
        row = loaded["percore"][0]
        assert isinstance(row.core_frequencies_hz, tuple)
        assert row.energy_saving == pytest.approx(0.2)

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "c.json"
        save_results(sample_rows(), path)
        document = json.loads(path.read_text())
        assert document["schema"] == SCHEMA_VERSION
        assert set(document["groups"]) == {"fig3", "fig4", "percore", "design"}


class TestValidation:
    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 999, "groups": {}}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_results(path)

    def test_rejects_unknown_fields(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "groups": {
                        "g": [{"type": "scenario2", "data": {"bogus": 1}}]
                    },
                }
            )
        )
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_unknown_row_type(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(
            json.dumps(
                {
                    "schema": SCHEMA_VERSION,
                    "groups": {"g": [{"type": "mystery", "data": {}}]},
                }
            )
        )
        with pytest.raises(ConfigurationError):
            load_results(path)

    def test_rejects_unsupported_row_objects(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_results({"g": [object()]}, tmp_path / "x.json")
