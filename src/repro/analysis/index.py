"""A light symbol/call index over one parsed source tree.

The checkers need three things beyond raw ASTs:

* every function definition with its qualified name, parameter names,
  and hot-marker state (:class:`FunctionInfo`);
* every class definition with enough structure to answer picklability
  questions — module-level?, dataclass?, ``__slots__``?, annotated
  fields (:class:`ClassInfo`);
* name-based call resolution: given a call site ``f(x)`` or ``obj.f(x)``,
  the candidate definitions of ``f`` anywhere in the tree.

Resolution is deliberately *name-based*, not type-based: this is a
convention checker for one repository, and in this codebase bare
function/method names are near-unique.  Checkers treat ambiguous names
(multiple definitions with conflicting signatures) as unresolvable and
stay silent rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.source import (
    FunctionNode,
    SourceError,
    SourceFile,
    load_source_file,
)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str
    file: SourceFile
    node: FunctionNode
    #: Positional-parameter names in order, ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    is_method: bool
    is_hot: bool
    #: Whether the return annotation is a ``set``/``Set``/``frozenset``.
    returns_set: bool


@dataclass(frozen=True)
class ClassInfo:
    """One class definition."""

    name: str
    qualname: str
    file: SourceFile
    node: ast.ClassDef
    module_level: bool
    is_dataclass: bool
    has_slots: bool
    #: Class-level ``name: annotation`` pairs (dataclass fields).
    field_annotations: Tuple[Tuple[str, ast.expr], ...]


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """Whether an annotation names an unordered set type."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    return name in ("set", "Set", "frozenset", "FrozenSet", "AbstractSet")


def _decorator_name(decorator: ast.expr) -> str:
    node = decorator
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


@dataclass
class TreeIndex:
    """Every definition in one analyzed tree, keyed by bare name."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)
    errors: List[SourceError] = field(default_factory=list)
    functions: Dict[str, List[FunctionInfo]] = field(default_factory=dict)
    classes: Dict[str, List[ClassInfo]] = field(default_factory=dict)

    def callable_params(self, name: str) -> Optional[Tuple[str, ...]]:
        """Unambiguous parameter names of callable ``name``, if known.

        Resolves plain functions and methods by definition name, and
        classes through their dataclass fields or ``__init__``.  Returns
        ``None`` when the name is unknown or its definitions disagree.
        """
        signatures = []
        for info in self.functions.get(name, []):
            signatures.append(info.params)
        for cls in self.classes.get(name, []):
            if cls.is_dataclass:
                signatures.append(
                    tuple(field_name for field_name, _ in cls.field_annotations)
                )
        unique = set(signatures)
        if len(unique) != 1:
            return None
        return signatures[0]


def _index_file(index: TreeIndex, source: SourceFile) -> None:
    """Register every function and class of one file.

    ``parent`` tracks the immediately enclosing scope kind:
    ``"module"``, ``"class"``, or ``"function"`` — a def directly inside
    a class body is a method; anything defined under a function is local.
    """

    def visit(node: ast.AST, scope: Tuple[str, ...], parent: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                is_method = parent == "class"
                params = tuple(a.arg for a in child.args.args)
                if is_method and params and params[0] in ("self", "cls"):
                    params = params[1:]
                index.functions.setdefault(child.name, []).append(
                    FunctionInfo(
                        name=child.name,
                        qualname=".".join(scope + (child.name,)),
                        file=source,
                        node=child,
                        params=params,
                        is_method=is_method,
                        is_hot=source.is_hot(child),
                        returns_set=_annotation_is_set(child.returns),
                    )
                )
                visit(child, scope + (child.name,), "function")
            elif isinstance(child, ast.ClassDef):
                decorators = {_decorator_name(d) for d in child.decorator_list}
                has_slots = any(
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(target, ast.Name) and target.id == "__slots__"
                        for target in stmt.targets
                    )
                    for stmt in child.body
                )
                annotations = tuple(
                    (stmt.target.id, stmt.annotation)
                    for stmt in child.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                )
                index.classes.setdefault(child.name, []).append(
                    ClassInfo(
                        name=child.name,
                        qualname=".".join(scope + (child.name,)),
                        file=source,
                        node=child,
                        module_level=parent == "module",
                        is_dataclass="dataclass" in decorators,
                        has_slots=has_slots,
                        field_annotations=annotations,
                    )
                )
                visit(child, scope + (child.name,), "class")
            else:
                # Defs nested in plain statements (if/try/with bodies)
                # keep their enclosing scope kind.
                visit(child, scope, parent)

    visit(source.tree, (), "module")


def build_index(root: Path, rel_paths: Optional[List[str]] = None) -> TreeIndex:
    """Parse and index every ``*.py`` under ``root``.

    ``rel_paths`` restricts the walk to an explicit list of files
    (relative to ``root``); the default walks the whole tree in sorted
    order so analysis output is deterministic.
    """
    index = TreeIndex(root=root)
    if rel_paths is None:
        paths = sorted(
            path.relative_to(root).as_posix()
            for path in root.rglob("*.py")
            if "__pycache__" not in path.parts
        )
    else:
        paths = sorted(rel_paths)
    for rel in paths:
        source, error = load_source_file(root / rel, rel)
        if error is not None:
            index.errors.append(error)
        if source is not None:
            index.files.append(source)
            _index_file(index, source)
    return index
