"""Tests for Scenario II: performance under a power budget (Sec. 2.3)."""

import pytest

from repro.core import (
    AnalyticalChipModel,
    ConstantEfficiency,
    PerformanceOptimizationScenario,
)
from repro.errors import InfeasibleOperatingPoint
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module")
def scenario_130():
    return PerformanceOptimizationScenario(AnalyticalChipModel(NODE_130NM))


@pytest.fixture(scope="module")
def scenario_65():
    return PerformanceOptimizationScenario(AnalyticalChipModel(NODE_65NM))


class TestBudget:
    def test_default_budget_is_1core_power(self, scenario_130):
        assert scenario_130.budget_w == pytest.approx(60.0, rel=1e-6)

    def test_all_solutions_respect_budget(self, scenario_130):
        for n in (1, 2, 4, 8, 16, 32):
            point = scenario_130.solve(n, 1.0)
            assert point.power.total_w <= scenario_130.budget_w * (1 + 1e-4)

    def test_single_core_runs_nominal(self, scenario_130):
        point = scenario_130.solve(1, 1.0)
        assert point.regime == "nominal"
        assert point.speedup == pytest.approx(1.0)

    def test_custom_budget(self):
        chip = AnalyticalChipModel(NODE_130NM)
        generous = PerformanceOptimizationScenario(chip, budget_w=120.0)
        tight = PerformanceOptimizationScenario(chip, budget_w=30.0)
        assert generous.solve(4, 1.0).speedup > tight.solve(4, 1.0).speedup


class TestRegimes:
    def test_regime_progression_with_n(self, scenario_130):
        regimes = [scenario_130.solve(n, 1.0).regime for n in (1, 8, 32)]
        assert regimes[0] == "nominal"
        assert regimes[1] == "voltage-scaling"
        assert regimes[2] == "frequency-only"

    def test_voltage_scaling_meets_budget_exactly(self, scenario_130):
        point = scenario_130.solve(8, 1.0)
        assert point.regime == "voltage-scaling"
        assert point.power.total_w == pytest.approx(scenario_130.budget_w, rel=1e-3)

    def test_frequency_only_sits_at_voltage_floor(self, scenario_130):
        point = scenario_130.solve(32, 1.0)
        assert point.regime == "frequency-only"
        assert point.voltage == pytest.approx(scenario_130.chip.tech.v_min)


class TestFigure2Properties:
    def test_speedup_grows_then_declines(self, scenario_130):
        speedups = [scenario_130.solve(n, 1.0).speedup for n in range(1, 33)]
        peak_idx = speedups.index(max(speedups))
        # Grows up to the peak...
        assert all(b > a for a, b in zip(speedups[:peak_idx], speedups[1 : peak_idx + 1]))
        # ...and strictly declines after it (the paper's headline result).
        tail = speedups[peak_idx:]
        assert all(b < a for a, b in zip(tail, tail[1:]))
        assert 0 < peak_idx < 31  # interior peak even at eps_n = 1

    def test_peak_a_little_over_4_at_130nm(self, scenario_130):
        speedups = [scenario_130.solve(n, 1.0).speedup for n in range(1, 33)]
        assert 4.0 < max(speedups) < 5.0

    def test_65nm_peaks_lower_and_earlier(self, scenario_130, scenario_65):
        s130 = [scenario_130.solve(n, 1.0).speedup for n in range(1, 33)]
        peak130 = max(s130)
        n65, s65 = [], []
        for n in range(1, 33):
            try:
                s65.append(scenario_65.solve(n, 1.0).speedup)
                n65.append(n)
            except InfeasibleOperatingPoint:
                break
        peak65 = max(s65)
        assert peak65 < peak130
        assert n65[s65.index(peak65)] < s130.index(peak130) + 1

    def test_65nm_below_130nm_at_large_n(self, scenario_130, scenario_65):
        # The 65 nm node's larger static share makes its curve collapse;
        # beyond the peak it runs clearly below the 130 nm curve.
        for n in (10, 12, 16):
            assert scenario_65.solve(n, 1.0).speedup < scenario_130.solve(n, 1.0).speedup

    def test_speedup_curve_skips_infeasible_tail(self, scenario_65):
        points = scenario_65.speedup_curve(ConstantEfficiency(1.0), range(1, 33))
        ns = [p.n for p in points]
        assert ns == sorted(ns)
        assert ns[0] == 1

    def test_best_configuration_interior(self, scenario_130):
        best = scenario_130.best_configuration(ConstantEfficiency(1.0), range(1, 33))
        assert 1 < best.n < 32

    def test_lower_efficiency_lowers_speedup(self, scenario_130):
        perfect = scenario_130.solve(8, 1.0).speedup
        imperfect = scenario_130.solve(8, 0.7).speedup
        assert imperfect < perfect
        # V/f depend only on the power side, so the ratio is exactly eps.
        assert imperfect == pytest.approx(0.7 * perfect)
