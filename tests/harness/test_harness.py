"""Integration tests for the Figure 3 / Figure 4 experiment pipelines.

These use heavily scaled-down workloads so the whole module stays within
a normal test-suite budget; the benchmarks run the full-scale versions.
"""

import pytest

from repro.errors import ConfigurationError
from repro.harness import (
    ExperimentContext,
    render_table,
    run_scenario1,
    run_scenario2,
)
from repro.harness.profiling import profile_application
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.08)


@pytest.fixture(scope="module")
def fmm_profile(context):
    return profile_application(context, workload_by_name("FMM"), (1, 2, 4))


class TestContext:
    def test_vf_table_range(self, context):
        assert context.f_min == pytest.approx(200e6)
        assert context.f_nominal == pytest.approx(3.2e9)
        assert context.vf_table.voltage_for_frequency(3.2e9) == pytest.approx(1.1)

    def test_clamp(self, context):
        assert context.clamp_frequency(5e9) == pytest.approx(3.2e9)
        assert context.clamp_frequency(50e6) == pytest.approx(200e6)

    def test_run_returns_power(self, context):
        result, power = context.run(workload_by_name("Barnes"), 2)
        assert result.execution_time_ps > 0
        assert power.total_w > 0

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ExperimentContext(workload_scale=0.0)


class TestProfiling:
    def test_entries_for_requested_counts(self, fmm_profile):
        assert fmm_profile.core_counts() == [1, 2, 4]

    def test_efficiency_reasonable(self, fmm_profile):
        eps2 = fmm_profile.nominal_efficiency(2)
        eps4 = fmm_profile.nominal_efficiency(4)
        assert 0.3 < eps4 <= eps2 <= 1.2

    def test_nominal_speedup_monotone(self, fmm_profile):
        assert fmm_profile.nominal_speedup(2) > 1.0
        assert fmm_profile.nominal_speedup(4) > fmm_profile.nominal_speedup(2)

    def test_missing_entry_raises(self, fmm_profile):
        with pytest.raises(ConfigurationError):
            fmm_profile.nominal_efficiency(8)

    def test_power_of_two_filtering(self, context):
        profile = profile_application(context, workload_by_name("FFT"), (1, 2, 3, 4))
        assert profile.core_counts() == [1, 2, 4]


class TestScenario1:
    @pytest.fixture(scope="class")
    def rows(self, context):
        results = run_scenario1(
            context, [workload_by_name("FMM")], core_counts=(1, 2, 4)
        )
        return results["FMM"]

    def test_row_per_core_count(self, rows):
        assert [r.n for r in rows] == [1, 2, 4]

    def test_baseline_normalised_to_one(self, rows):
        assert rows[0].normalized_power == 1.0
        assert rows[0].actual_speedup == 1.0
        assert rows[0].normalized_power_density == 1.0

    def test_scaled_configs_save_power(self, rows):
        for row in rows[1:]:
            assert row.normalized_power < 1.0

    def test_actual_speedup_at_least_iso(self, rows):
        # Memory-gap narrowing means the scaled runs meet or beat the
        # 1-core target.
        for row in rows[1:]:
            assert row.actual_speedup >= 0.95

    def test_density_collapses(self, rows):
        densities = [r.normalized_power_density for r in rows]
        assert all(b < a for a, b in zip(densities, densities[1:]))

    def test_temperature_declines(self, rows):
        temps = [r.average_temperature_c for r in rows]
        assert all(b <= a + 0.5 for a, b in zip(temps, temps[1:]))
        assert all(t >= 45.0 - 1e-6 for t in temps)

    def test_frequency_follows_eq7(self, rows, context):
        for row in rows[1:]:
            expected = context.clamp_frequency(
                3.2e9 / (row.n * row.nominal_efficiency)
            )
            assert row.frequency_hz == pytest.approx(expected)


class TestScenario2:
    @pytest.fixture(scope="class")
    def radix_rows(self, context):
        results = run_scenario2(
            context, [workload_by_name("Radix")], core_counts=(1, 2, 4)
        )
        return results["Radix"]

    def test_budget_respected(self, radix_rows):
        for row in radix_rows:
            assert row.power_w <= row.budget_w * 1.05

    def test_power_thrifty_app_runs_at_nominal(self, radix_rows):
        # Radix's nominal power is far below the budget at small N
        # (Section 4.2: actual == nominal up to 8 cores).
        for row in radix_rows:
            assert row.runs_at_nominal
            assert row.actual_speedup == pytest.approx(row.nominal_speedup, rel=1e-6)

    def test_throttled_app_shows_gap(self, context):
        results = run_scenario2(
            context, [workload_by_name("FMM")], core_counts=(4,)
        )
        row = results["FMM"][0]
        assert not row.runs_at_nominal
        assert row.actual_speedup < row.nominal_speedup

    def test_custom_budget(self, context):
        generous = run_scenario2(
            context,
            [workload_by_name("Radix")],
            core_counts=(2,),
            budget_w=1000.0,
        )["Radix"][0]
        assert generous.runs_at_nominal


class TestRenderTable:
    def test_renders_headers_and_rows(self):
        text = render_table(
            ["app", "eps"], [["FMM", 0.85], ["Radix", 0.6]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "app" in lines[1] and "eps" in lines[1]
        assert "0.850" in text
        assert "Radix" in text

    def test_column_alignment(self):
        text = render_table(["n"], [[1], [100]])
        lines = text.splitlines()
        assert len(lines[-1]) == len(lines[-2])
