"""Tests for clock domains, the shared bus, and the DRAM model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.sim.bus import BusConfig, SharedBus
from repro.sim.clock import ClockDomain, ns_to_ps
from repro.sim.memory import MainMemory, MemoryConfig


class TestClockDomain:
    def test_period_at_3_2ghz(self):
        clock = ClockDomain(3.2e9)
        assert clock.period_ps == 312 or clock.period_ps == 313

    def test_cycles_round_trip(self):
        clock = ClockDomain(1e9)  # 1000 ps period
        assert clock.cycles_to_ps(10) == 10_000
        assert clock.ps_to_cycles(10_000) == pytest.approx(10.0)

    def test_dvfs_slows_cycles(self):
        fast = ClockDomain(3.2e9)
        slow = ClockDomain(200e6)
        assert slow.cycles_to_ps(100) > fast.cycles_to_ps(100)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClockDomain(0.0)

    def test_ns_to_ps(self):
        assert ns_to_ps(75.0) == 75_000


class TestSharedBus:
    def make_bus(self, frequency=3.2e9):
        return SharedBus(BusConfig(), ClockDomain(frequency))

    def test_uncontended_grant_is_immediate(self):
        bus = self.make_bus()
        grant, release = bus.acquire(1000, with_data=True)
        assert grant == 1000
        assert release > grant

    def test_back_to_back_serialised(self):
        bus = self.make_bus()
        _, release1 = bus.acquire(0, with_data=True)
        grant2, _ = bus.acquire(0, with_data=True)
        assert grant2 == release1

    def test_address_only_shorter_than_data(self):
        bus = self.make_bus()
        g1, r1 = bus.acquire(0, with_data=False)
        bus2 = self.make_bus()
        g2, r2 = bus2.acquire(0, with_data=True)
        assert (r1 - g1) < (r2 - g2)

    def test_idle_gap_not_charged(self):
        bus = self.make_bus()
        _, release = bus.acquire(0, with_data=True)
        grant, _ = bus.acquire(release + 10_000, with_data=True)
        assert grant == release + 10_000

    def test_occupancy_scales_with_dvfs(self):
        fast = self.make_bus(3.2e9)
        slow = self.make_bus(200e6)
        _, r_fast = fast.acquire(0, with_data=True)
        _, r_slow = slow.acquire(0, with_data=True)
        # 3.2 GHz / 200 MHz = 16x, up to picosecond period rounding.
        assert r_slow == pytest.approx(16 * r_fast, rel=0.01)

    def test_wait_accounting(self):
        bus = self.make_bus()
        bus.acquire(0, with_data=True)
        grant, _ = bus.acquire(0, with_data=True)
        assert bus.wait_ps == grant

    def test_utilisation(self):
        bus = self.make_bus()
        _, release = bus.acquire(0, with_data=True)
        assert bus.utilisation(release) == pytest.approx(1.0)
        assert bus.utilisation(2 * release) == pytest.approx(0.5)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BusConfig(address_cycles=0)

    @given(times=st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=50))
    @settings(max_examples=25)
    def test_grants_never_overlap(self, times):
        bus = self.make_bus()
        windows = []
        for t in sorted(times):
            windows.append(bus.acquire(t, with_data=True))
        for (g1, r1), (g2, r2) in zip(windows, windows[1:]):
            assert g2 >= r1


class TestMainMemory:
    def test_fixed_latency(self):
        memory = MainMemory()
        done = memory.access(0, line_addr=0)
        assert done == 75_000  # 75 ns in ps

    def test_latency_independent_of_issue_time(self):
        memory = MainMemory()
        assert memory.access(10_000, 1) == 10_000 + 75_000

    def test_bank_conflict_delays(self):
        config = MemoryConfig(n_banks=1, bank_busy_ns=12.0)
        memory = MainMemory(config)
        first = memory.access(0, 0)
        second = memory.access(0, 0)
        assert second == first + 12_000

    def test_different_banks_concurrent(self):
        config = MemoryConfig(n_banks=2)
        memory = MainMemory(config)
        assert memory.access(0, 0) == memory.access(0, 1)

    def test_request_counter(self):
        memory = MainMemory()
        memory.access(0, 0)
        memory.access(0, 1)
        assert memory.requests == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MemoryConfig(round_trip_ns=0.0)
        with pytest.raises(ConfigurationError):
            MemoryConfig(n_banks=0)

    def test_reset_timing(self):
        config = MemoryConfig(n_banks=1)
        memory = MainMemory(config)
        memory.access(0, 0)
        memory.reset_timing()
        assert memory.access(0, 0) == 75_000
