"""Pickle-clean outcome types (analyzer fixture; never imported)."""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class SpanRecord:
    name: str
    start_us: float


@dataclass(frozen=True)
class KernelRecord:
    mode: str
    spans: Tuple[SpanRecord, ...] = ()


class SlottedHelper:
    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value


@dataclass(frozen=True)
class PointTelemetry:
    kernel: KernelRecord
    helper_count: int = 0


class Unreachable:  # not referenced by any pickle root: never flagged
    def __init__(self) -> None:
        self.data = {}
