"""Tests for the Chrome trace exporter and the plain-text metrics table."""

import json
import os

from repro.harness.executor import PointOutcome
from repro.telemetry.chrometrace import (
    _format_indices,
    _process_names,
    chrome_trace_document,
    export_chrome_trace,
    metrics_table,
)
from repro.telemetry.manifest import TelemetryRun
from repro.telemetry.record import KernelRecord, PointTelemetry
from repro.telemetry.timeseries import SampleRecord
from repro.telemetry.trace import SpanRecord


def traced_run(tmp_path):
    """A finalized run with spans from two pids and one point event."""
    run = TelemetryRun(tmp_path, command="fig3")
    run.record_spans(
        [
            SpanRecord(
                name="kernel.window",
                start_us=1_000.0,
                duration_us=500.0,
                args=(("mode", "fast"),),
                children=(
                    SpanRecord(
                        name="kernel.slow_path.memory",
                        start_us=1_100.0,
                        duration_us=200.0,
                        args=(("aggregated", True), ("count", 40)),
                    ),
                ),
            )
        ],
        pid=111,
    )
    run.record_spans(
        [SpanRecord(name="power.solve", start_us=1_600.0, duration_us=100.0)],
        pid=222,
    )
    telemetry = PointTelemetry(
        pid=111,
        start_us=990.0,
        wall_s=0.0008,
        kernels=(
            KernelRecord(
                mode="fast",
                total_ops=120,
                fast_path_ops=100,
                slow_path_ops=15,
                barrier_ops=5,
                sim_wall_s=0.0005,
                compile_s=0.0,
                compile_cache_hit=False,
            ),
        ),
    )
    run.record_point(
        PointOutcome(index=0, key="k0", value=1, telemetry=telemetry)
    )
    run.finalize()
    return run


class TestChromeTraceDocument:
    def test_schema_of_every_event(self, tmp_path):
        run = traced_run(tmp_path)
        document = chrome_trace_document(run.directory)
        events = document["traceEvents"]
        assert events, "expected trace events"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            assert event["ph"] in ("X", "M")
            if event["ph"] == "X":
                assert isinstance(event["ts"], (int, float))
                assert isinstance(event["dur"], (int, float))
                assert event["ts"] >= 0 and event["dur"] >= 0
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["run_id"] == run.run_id
        assert document["otherData"]["command"] == "fig3"

    def test_spans_points_and_metadata_rows(self, tmp_path):
        run = traced_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        spans = [e for e in events if e["ph"] == "X" and e["cat"] == "span"]
        points = [e for e in events if e["ph"] == "X" and e["cat"] == "point"]
        names = {e["name"] for e in spans}
        assert names == {
            "kernel.window",
            "kernel.slow_path.memory",
            "power.solve",
        }
        assert {e["pid"] for e in spans} == {111, 222}
        (point,) = points
        assert point["name"] == "point[0]"
        assert point["tid"] != spans[0]["tid"]  # separate track
        assert point["args"]["ops"] == 120
        metadata = [e for e in events if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {111, 222}
        assert {e["name"] for e in metadata} == {"process_name", "thread_name"}

    def test_timestamps_are_rebased_to_near_zero(self, tmp_path):
        run = traced_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == 0.0
        nested = next(e for e in xs if e["name"] == "kernel.slow_path.memory")
        window = next(e for e in xs if e["name"] == "kernel.window")
        assert window["ts"] <= nested["ts"]
        assert nested["ts"] + nested["dur"] <= window["ts"] + window["dur"]

    def test_export_writes_parseable_json(self, tmp_path):
        run = traced_run(tmp_path)
        output = tmp_path / "trace.json"
        document = export_chrome_trace(run.directory, output)
        parsed = json.loads(output.read_text())
        assert parsed == json.loads(json.dumps(document))
        assert parsed["traceEvents"]


class TestMetricsTable:
    def test_table_aggregates_phases_with_counts(self, tmp_path):
        run = traced_run(tmp_path)
        text = metrics_table(run.directory)
        assert "1 points" in text and "120 simulated ops" in text
        lines = {
            line.split()[0]: line.split()
            for line in text.splitlines()
            if line.strip().startswith(("kernel.", "power."))
        }
        # Aggregated spans contribute their event count, not 1.
        assert lines["kernel.slow_path.memory"][1] == "40"
        assert lines["kernel.window"][1] == "1"
        assert lines["power.solve"][1] == "1"

    def test_table_mentions_missing_spans(self, tmp_path):
        run = TelemetryRun(tmp_path)
        run.finalize()
        assert "no spans recorded" in metrics_table(run.directory)


def sampled_run(tmp_path):
    """A finalized run with one pool-lane point carrying counter samples."""
    run = TelemetryRun(tmp_path, command="fig3")
    telemetry = PointTelemetry(
        pid=111,
        start_us=990.0,
        wall_s=0.0008,
        kernels=(),
        samples=(
            SampleRecord(channel="sim.ipc", t_us=1_000.0, value=1.5),
            SampleRecord(channel="power.total_w", t_us=1_200.0, value=41.0),
        ),
    )
    run.record_point(
        PointOutcome(index=0, key="k0", value=1, telemetry=telemetry, lane="pool")
    )
    run.record_samples(
        [SampleRecord(channel="thermal.peak_c", t_us=1_400.0, value=55.0)],
        point=None,
    )
    run.finalize()
    return run


class TestCounterTracks:
    def test_samples_become_counter_events(self, tmp_path):
        run = sampled_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "sim.ipc",
            "power.total_w",
            "thermal.peak_c",
        }
        for event in counters:
            assert event["cat"] == "counter"
            assert "dur" not in event
            assert isinstance(event["args"]["value"], float)
        by_name = {e["name"]: e for e in counters}
        assert by_name["sim.ipc"]["pid"] == 111
        assert by_name["sim.ipc"]["args"]["value"] == 1.5
        assert by_name["thermal.peak_c"]["pid"] == os.getpid()

    def test_counter_timestamps_share_the_rebased_timebase(self, tmp_path):
        run = sampled_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        timed = [e for e in events if e["ph"] in ("X", "C")]
        assert min(e["ts"] for e in timed) == 0.0
        assert all(e["ts"] >= 0 for e in timed)
        by_name = {e["name"]: e for e in timed if e["ph"] == "C"}
        # Emission order survives the rebase.
        assert (
            by_name["sim.ipc"]["ts"]
            < by_name["power.total_w"]["ts"]
            < by_name["thermal.peak_c"]["ts"]
        )

    def test_export_round_trips_counter_events(self, tmp_path):
        run = sampled_run(tmp_path)
        output = tmp_path / "trace.json"
        export_chrome_trace(run.directory, output)
        parsed = json.loads(output.read_text())
        assert any(e["ph"] == "C" for e in parsed["traceEvents"])


class TestFormatIndices:
    def test_singletons_and_ranges(self):
        assert _format_indices([3]) == "3"
        assert _format_indices([0, 1, 2, 5, 7, 8, 9]) == "0-2,5,7-9"
        assert _format_indices(list(range(40))) == "0-39"

    def test_long_lists_collapse_to_an_ellipsis(self):
        evens = list(range(0, 16, 2))  # eight disjoint ranges
        assert _format_indices(evens, limit=6) == "0,2,4,6,8,10,…"


class TestProcessNames:
    def point_event(self, pid, index, lane):
        return {"event": "point", "pid": pid, "index": index, "lane": lane}

    def test_workers_show_lane_and_point_ranges(self):
        events = [
            self.point_event(111, 0, "pool"),
            self.point_event(111, 1, "pool"),
            self.point_event(222, 2, "pool"),
        ]
        names = _process_names(events, coordinator_pid=999)
        assert names[111] == "repro pool worker 111 · points 0-1"
        assert names[222] == "repro pool worker 222 · points 2"
        assert names[999] == "repro coordinator 999"

    def test_cache_lane_defers_to_the_working_lane(self):
        events = [
            self.point_event(111, 0, "farm"),
            self.point_event(111, 1, "cache"),
        ]
        names = _process_names(events, coordinator_pid=None)
        assert names[111] == "repro farm worker 111 · points 0-1"

    def test_pure_cache_replays_keep_the_cache_label(self):
        events = [self.point_event(111, 0, "cache")]
        names = _process_names(events, coordinator_pid=None)
        assert names[111] == "repro cache worker 111 · points 0"

    def test_document_metadata_uses_the_lane_names(self, tmp_path):
        run = sampled_run(tmp_path)
        events = chrome_trace_document(run.directory)["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[111] == "repro pool worker 111 · points 0"
        assert names[os.getpid()] == f"repro coordinator {os.getpid()}"
