"""EV6-like core timing model.

We do not model the 21264's out-of-order machinery structurally; what the
paper's experiments need from a core is (a) an application-dependent base
CPI for cache-resident work, (b) realistic stalls on memory misses with a
bounded amount of latency overlap (the EV6 sustains several outstanding
misses), and (c) statistical instruction-fetch behaviour.  Those are the
three knobs :class:`CoreTimingConfig` exposes; everything else (hit
latencies, coherence, contention) is emergent from the memory system.

A core consumes its thread's operation stream one op per scheduler step
and advances its local picosecond clock.  Barriers are reported to the
scheduler (:mod:`repro.sim.cmp`), which parks the core until release;
critical sections serialise through a shared lock table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.coherence import MESIController
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE

# Core.step() statuses.
RUNNING = 0
AT_BARRIER = 1
DONE = 2


@dataclass(frozen=True)
class CoreTimingConfig:
    """Per-application core-timing knobs.

    Parameters
    ----------
    base_cpi:
        Cycles per instruction for cache-resident work on the 4-wide
        EV6-like core; compute-intensive codes with ILP sit near 0.6,
        branchy pointer-chasing codes near 1.2.
    icache_miss_rate:
        Statistical instruction-fetch miss rate; each miss stalls for an
        L2 hit.  SPLASH-2 codes have tiny instruction footprints.
    memory_parallelism:
        How much data-miss latency the core overlaps (outstanding-miss
        MLP).  1.0 = fully blocking; the EV6's non-blocking loads justify
        values up to ~2.
    lock_overhead_cycles:
        Pipeline cost of an acquire/release pair (LL/SC sequences).
    """

    base_cpi: float = 0.8
    icache_miss_rate: float = 0.001
    memory_parallelism: float = 1.5
    lock_overhead_cycles: int = 20

    def __post_init__(self) -> None:
        if self.base_cpi <= 0:
            raise ConfigurationError("base_cpi must be positive")
        if not 0.0 <= self.icache_miss_rate < 1.0:
            raise ConfigurationError("icache_miss_rate must be in [0, 1)")
        if self.memory_parallelism < 1.0:
            raise ConfigurationError("memory_parallelism must be >= 1")
        if self.lock_overhead_cycles < 0:
            raise ConfigurationError("lock_overhead_cycles must be >= 0")


@dataclass
class CoreStats:
    """Activity counters for one core (the Wattch inputs)."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    icache_accesses: int = 0
    critical_sections: int = 0
    busy_ps: int = 0
    stall_mem_ps: int = 0
    sync_wait_ps: int = 0
    #: Time spent in the thrifty-barrier sleep state (near-zero power).
    sleep_ps: int = 0
    end_time_ps: int = 0

    @property
    def total_active_ps(self) -> int:
        """Time the core was doing or waiting on work (not parked)."""
        return self.busy_ps + self.stall_mem_ps


class LockTable:
    """Shared lock state: grant times per lock id, FIFO by request time."""

    def __init__(self) -> None:
        self._free_at: Dict[int, int] = {}
        self.contended_acquires = 0
        self.acquires = 0

    def acquire(self, lock_id: int, now_ps: int) -> int:
        """Request the lock at ``now_ps``; returns the grant time."""
        grant = max(now_ps, self._free_at.get(lock_id, 0))
        self.acquires += 1
        if grant > now_ps:
            self.contended_acquires += 1
        return grant

    def release(self, lock_id: int, at_ps: int) -> None:
        """Release the lock at ``at_ps``."""
        self._free_at[lock_id] = at_ps


class Core:
    """One EV6-like core executing a thread's operation stream."""

    def __init__(
        self,
        core_id: int,
        ops: Iterator[tuple],
        controller: MESIController,
        clock: ClockDomain,
        timing: CoreTimingConfig,
        locks: LockTable,
    ) -> None:
        self.core_id = core_id
        self._ops = iter(ops)
        self.controller = controller
        self.clock = clock
        self.timing = timing
        self.locks = locks
        self.time_ps = 0
        self.stats = CoreStats()
        #: Barrier index the core is waiting at (valid after AT_BARRIER).
        self.pending_barrier: Optional[int] = None

    def set_clock(self, clock: ClockDomain) -> None:
        """DVFS: subsequent cycle costs use the new period."""
        self.clock = clock

    # -- op execution -------------------------------------------------------

    def _run_burst(self, n_instructions: int) -> None:
        timing = self.timing
        cycles = n_instructions * timing.base_cpi
        # Statistical I-cache misses each stall for an L2 hit.
        cycles += (
            n_instructions
            * timing.icache_miss_rate
            * self.controller.l2_hit_cycles
        )
        duration = self.clock.cycles_to_ps(cycles)
        self.time_ps += duration
        self.stats.busy_ps += duration
        self.stats.instructions += n_instructions
        self.stats.icache_accesses += n_instructions

    def _run_memory_op(self, byte_address: int, is_write: bool) -> None:
        now = self.time_ps
        if is_write:
            done = self.controller.write(self.core_id, byte_address, now)
            self.stats.stores += 1
        else:
            done = self.controller.read(self.core_id, byte_address, now)
            self.stats.loads += 1
        self.stats.instructions += 1
        self.stats.icache_accesses += 1
        stall = done - now
        hit_ps = self.clock.cycles_to_ps(self.controller.l1_hit_cycles)
        if stall <= hit_ps:
            # L1 hits are fully pipelined on the EV6; their cost is part
            # of the application's base CPI.
            stall = 0
        else:
            # The OoO window overlaps part of the miss latency.
            stall = int((stall - hit_ps) / self.timing.memory_parallelism)
        self.time_ps += stall
        self.stats.stall_mem_ps += stall

    def _run_critical(self, lock_id: int, n_instructions: int, address: int) -> None:
        grant = self.locks.acquire(lock_id, self.time_ps)
        waited = grant - self.time_ps
        self.time_ps = grant
        self.stats.sync_wait_ps += waited
        overhead = self.clock.cycles_to_ps(self.timing.lock_overhead_cycles)
        self.time_ps += overhead
        self.stats.busy_ps += overhead
        if n_instructions:
            self._run_burst(n_instructions)
        # The protected data: a read-modify-write that ping-pongs between
        # lock holders, generating the coherence traffic real critical
        # sections do.
        self._run_memory_op(address, is_write=True)
        self.locks.release(lock_id, self.time_ps)
        self.stats.critical_sections += 1

    def step(self) -> int:
        """Execute one operation; returns RUNNING, AT_BARRIER, or DONE."""
        op = next(self._ops, None)
        if op is None:
            self.stats.end_time_ps = self.time_ps
            return DONE
        kind = op[0]
        if kind == OP_COMPUTE:
            self._run_burst(op[1])
            return RUNNING
        if kind == OP_LOAD:
            self._run_memory_op(op[1], is_write=False)
            return RUNNING
        if kind == OP_STORE:
            self._run_memory_op(op[1], is_write=True)
            return RUNNING
        if kind == OP_BARRIER:
            self.pending_barrier = op[1]
            return AT_BARRIER
        if kind == OP_CRITICAL:
            self._run_critical(op[1], op[2], op[3])
            return RUNNING
        raise ConfigurationError(f"unknown op kind {kind}")
