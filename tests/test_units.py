"""Tests for the physical-constant and unit helpers."""

import math

from hypothesis import given, strategies as st

from repro import units


def test_celsius_kelvin_round_trip():
    assert units.celsius_to_kelvin(0.0) == 273.15
    assert units.kelvin_to_celsius(273.15) == 0.0
    assert units.celsius_to_kelvin(100.0) == 373.15


def test_room_temperature_is_25c():
    assert math.isclose(units.kelvin_to_celsius(units.ROOM_TEMPERATURE_K), 25.0)


@given(st.floats(min_value=-200.0, max_value=500.0))
def test_celsius_kelvin_inverse(temperature_c):
    roundtrip = units.kelvin_to_celsius(units.celsius_to_kelvin(temperature_c))
    assert math.isclose(roundtrip, temperature_c, abs_tol=1e-9)


def test_thermal_voltage_at_room_temperature():
    # kT/q at 300 K is the textbook ~25.85 mV.
    assert math.isclose(units.thermal_voltage(300.0), 0.025852, rel_tol=1e-3)


def test_thermal_voltage_scales_linearly_with_temperature():
    assert math.isclose(
        units.thermal_voltage(600.0), 2.0 * units.thermal_voltage(300.0)
    )


@given(st.floats(min_value=1e-9, max_value=1e6))
def test_area_conversions_inverse(area_mm2):
    assert math.isclose(units.m2_to_mm2(units.mm2_to_m2(area_mm2)), area_mm2)


def test_area_conversion_known_value():
    # The paper's die: 244.5 mm^2.
    assert math.isclose(units.mm2_to_m2(244.5), 2.445e-4)


def test_si_prefixes():
    assert units.GIGA == 1e9
    assert units.NANO * units.GIGA == 1.0
