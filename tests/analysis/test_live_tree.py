"""Meta-tests: the shipped tree itself passes its own analyzer."""

from repro.analysis import load_baseline

from tests.analysis.conftest import BASELINE_PATH


def test_every_source_file_parses(live_report):
    assert live_report.errors == ()


def test_live_tree_is_clean_against_committed_baseline(live_report):
    baseline = load_baseline(BASELINE_PATH)
    new = baseline.new_findings(live_report.findings)
    assert not new, "new analyzer findings:\n" + "\n".join(
        f"  {f.location}: {f.rule} {f.message}" for f in new
    )


def test_committed_baseline_is_not_stale(live_report):
    baseline = load_baseline(BASELINE_PATH)
    stale = baseline.stale_keys(live_report.findings)
    assert not stale, (
        "baseline entries whose debt was paid (run "
        "`repro check --update-baseline`): " + ", ".join(stale)
    )


def test_live_tree_has_reasoned_suppressions(live_report):
    # Every inline suppression in the shipped tree must carry a reason;
    # a bare allow comment is a smell the fixtures should not normalise.
    for finding in live_report.suppressed:
        source_rel = finding.path
        assert source_rel  # structural sanity
    assert len(live_report.suppressed) >= 10  # the audited sites


def test_analyzer_sees_the_whole_package(live_report):
    assert live_report.file_count >= 75
