"""SI-unit convention checker over name suffixes.

The library's contract (:mod:`repro.units`) is SI base units everywhere
internally — hertz, volts, watts, kelvin, seconds, square metres — with
conversions only at API boundaries.  The convention that makes this
checkable is the *name suffix*: ``frequency_hz``, ``wall_s``,
``total_power_w``, ``temperature_k``, ``die_area_m2``.  This checker
infers a unit for every suffixed name (including attributes, calls to
suffixed functions, and string subscripts like ``event["wall_s"]``) and
flags:

* ``UNIT-MIXED`` — ``+``/``-``/comparisons between values of different
  units (``x_hz + y_s``, ``t_c < t_k``): either a dimension error or a
  scale error, both of which silently corrupt the physics.
* ``UNIT-MAGIC`` — multiplying/dividing a unit-suffixed value by a bare
  scale constant (``1e9``, ``1e-3``, ...): conversions must go through
  the named constants (``GIGA``, ``MILLI``) or helpers of
  :mod:`repro.units` so the intent is auditable.  The named constants
  are float-identical to the literals, so a fix never changes results.
* ``UNIT-ARG`` — passing a ``*_mhz``-suffixed value where the callee's
  parameter is named ``*_hz`` (any unit pair): a unit mismatch at a
  call boundary.

Inference is conservative: a name with no recognised suffix has no
unit, and arithmetic involving at most one united operand is never
flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.index import TreeIndex
from repro.analysis.source import SourceFile

#: suffix -> (dimension, scale relative to the SI base of the dimension).
UNIT_SUFFIXES: Dict[str, Tuple[str, float]] = {
    # frequency
    "hz": ("frequency", 1.0),
    "khz": ("frequency", 1e3),
    "mhz": ("frequency", 1e6),
    "ghz": ("frequency", 1e9),
    # time
    "s": ("time", 1.0),
    "ms": ("time", 1e-3),
    "us": ("time", 1e-6),
    "ns": ("time", 1e-9),
    "ps": ("time", 1e-12),
    # power
    "w": ("power", 1.0),
    "mw": ("power", 1e-3),
    "uw": ("power", 1e-6),
    "kw": ("power", 1e3),
    # voltage
    "v": ("voltage", 1.0),
    "mv": ("voltage", 1e-3),
    # energy
    "j": ("energy", 1.0),
    "nj": ("energy", 1e-9),
    "pj": ("energy", 1e-12),
    # temperature: kelvin and Celsius are distinct dimensions here —
    # they differ by an offset, so no scale factor relates them.
    "k": ("temperature-k", 1.0),
    "c": ("temperature-c", 1.0),
    # area / length
    "m2": ("area", 1.0),
    "mm2": ("area", 1e-6),
    "m": ("length", 1.0),
    "mm": ("length", 1e-3),
    "um": ("length", 1e-6),
    "nm": ("length", 1e-9),
}

#: Multi-character suffixes that also count as a whole bare name
#: (``ns * 1000.0`` in a conversion helper); single letters never do.
_BARE_TOKENS = frozenset(s for s in UNIT_SUFFIXES if len(s) > 1)

#: Scale literals that must be written as named repro.units constants.
#: Values, not spellings: ``1000.0`` matches ``KILO`` = 1e3.
SCALE_CONSTANTS: Dict[float, str] = {
    1e3: "KILO",
    1e6: "MEGA",
    1e9: "GIGA",
    1e12: "TERA",
    1e-3: "MILLI",
    1e-6: "MICRO",
    1e-9: "NANO",
    1e-12: "PICO",
}

#: File names exempt from UNIT-MAGIC: the units module itself defines
#: the constants, so its literals are the single source of truth.
_MAGIC_EXEMPT = frozenset({"units.py"})

_SCALE_NAMES = frozenset(SCALE_CONSTANTS.values())


def _is_scale_factor(node: ast.expr) -> bool:
    """Whether ``node`` is a conversion factor (literal or named).

    Multiplying/dividing by one of these *changes* the unit, so unit
    inference through such a BinOp must give up rather than propagate
    the operand's suffix (``start_ns / KILO`` is microseconds, not
    nanoseconds).
    """
    if _scale_constant(node) is not None:
        return True
    if isinstance(node, ast.Name):
        return node.id in _SCALE_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SCALE_NAMES
    return False


def unit_of_name(identifier: str) -> Optional[str]:
    """The unit suffix carried by one identifier, if any."""
    lowered = identifier.lower()
    if "_" in lowered:
        suffix = lowered.rsplit("_", 1)[-1]
        if suffix in UNIT_SUFFIXES:
            return suffix
        return None
    if lowered in _BARE_TOKENS:
        return lowered
    return None


def infer_unit(node: ast.expr) -> Optional[str]:
    """Best-effort unit suffix of an expression, or ``None``.

    Understands names, attributes, calls to suffixed functions, string
    subscripts, unary ops, and ``+``/``-`` chains of one consistent
    unit.  For ``*``/``/`` the unit propagates only when exactly one
    side is united (scaling by a dimensionless factor).
    """
    if isinstance(node, ast.Name):
        return unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return unit_of_name(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return unit_of_name(func.attr)
        if isinstance(func, ast.Name):
            return unit_of_name(func.id)
        return None
    if isinstance(node, ast.Subscript):
        index = node.slice
        if isinstance(index, ast.Constant) and isinstance(index.value, str):
            return unit_of_name(index.value)
        return infer_unit(node.value)
    if isinstance(node, ast.UnaryOp):
        return infer_unit(node.operand)
    if isinstance(node, ast.BinOp):
        left = infer_unit(node.left)
        right = infer_unit(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left is not None and left == right:
                return left
            return None
        if isinstance(node.op, (ast.Mult, ast.Div)):
            if _is_scale_factor(node.left) or _is_scale_factor(node.right):
                return None
            if left is not None and right is None:
                return left
            if right is not None and left is None and isinstance(node.op, ast.Mult):
                return right
            return None
    return None


def _scale_constant(node: ast.expr) -> Optional[str]:
    """The repro.units constant name matching a bare literal, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        for value, name in SCALE_CONSTANTS.items():
            if node.value == value:
                return name
    return None


def check(index: TreeIndex) -> List[Finding]:
    """Run every unit rule over the indexed tree."""
    findings: List[Finding] = []
    for source in index.files:
        _check_arithmetic(source, findings)
        _check_call_sites(source, index, findings)
    return findings


def _check_arithmetic(source: SourceFile, findings: List[Finding]) -> None:
    check_magic = source.rel.rsplit("/", 1)[-1] not in _MAGIC_EXEMPT
    for node in ast.walk(source.tree):
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                _flag_mixed(
                    source, node, infer_unit(node.left), infer_unit(node.right),
                    findings,
                )
            elif check_magic and isinstance(node.op, (ast.Mult, ast.Div)):
                for constant_side, united_side in (
                    (node.right, node.left),
                    (node.left, node.right),
                ):
                    constant = _scale_constant(constant_side)
                    if constant is None:
                        continue
                    unit = infer_unit(united_side)
                    if unit is None:
                        continue
                    line = node.lineno
                    findings.append(
                        Finding(
                            path=source.rel,
                            line=line,
                            rule="UNIT-MAGIC",
                            severity="warning",
                            message=(
                                f"bare scale constant on a `*_{unit}` value; "
                                f"use repro.units.{constant} (same float, "
                                "auditable intent)"
                            ),
                            snippet=source.snippet(line),
                        )
                    )
                    break
        elif isinstance(node, ast.Compare):
            units = [infer_unit(node.left)] + [
                infer_unit(comparator) for comparator in node.comparators
            ]
            present = [u for u in units if u is not None]
            if len(present) >= 2 and len(set(present)) > 1:
                _flag_mixed(source, node, present[0], present[1], findings)


def _flag_mixed(
    source: SourceFile,
    node: ast.AST,
    left: Optional[str],
    right: Optional[str],
    findings: List[Finding],
) -> None:
    if left is None or right is None or left == right:
        return
    left_dim, _ = UNIT_SUFFIXES[left]
    right_dim, _ = UNIT_SUFFIXES[right]
    if left_dim != right_dim:
        detail = f"different dimensions ({left_dim} vs {right_dim})"
    else:
        detail = f"same dimension, different scales (_{left} vs _{right})"
    line = getattr(node, "lineno", 0)
    findings.append(
        Finding(
            path=source.rel,
            line=line,
            rule="UNIT-MIXED",
            severity="error",
            message=f"arithmetic mixes `_{left}` and `_{right}`: {detail}",
            snippet=source.snippet(line),
        )
    )


def _check_call_sites(
    source: SourceFile, index: TreeIndex, findings: List[Finding]
) -> None:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            callee = func.attr
        elif isinstance(func, ast.Name):
            callee = func.id
        else:
            continue
        params = index.callable_params(callee)
        if params is None:
            continue
        pairs: List[Tuple[str, ast.expr]] = []
        for position, argument in enumerate(node.args):
            if isinstance(argument, ast.Starred):
                break
            if position < len(params):
                pairs.append((params[position], argument))
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in params:
                pairs.append((keyword.arg, keyword.value))
        for parameter, argument in pairs:
            expected = unit_of_name(parameter)
            actual = infer_unit(argument)
            if expected is None or actual is None or expected == actual:
                continue
            line = node.lineno
            findings.append(
                Finding(
                    path=source.rel,
                    line=line,
                    rule="UNIT-ARG",
                    severity="error",
                    message=(
                        f"`_{actual}` value passed to parameter "
                        f"`{parameter}` of `{callee}` (expects `_{expected}`)"
                    ),
                    snippet=source.snippet(line),
                )
            )
    return None
