"""Wall-clock budgets for the static analyzer.

``repro check`` runs as a required CI job and as a pre-commit habit, so
it must stay interactive-fast.  Two budgets are enforced:

* the full lexical tree analysis (index + per-statement rules) under
  ``--budget-s`` (default 10 s);
* the interprocedural flow passes (call graph, dimensional fixpoint,
  determinism taint, fork-safety closure) under ``--flow-budget-s``
  (default 20 s).

Run directly::

    PYTHONPATH=src python benchmarks/bench_analysis.py [--budget-s 10]

Exits non-zero when the best of three runs exceeds either budget.
Three runs because the first pays filesystem cache warmup; the check
applies to the *best* run, the others are reported for context.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, List, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis import (  # noqa: E402
    AnalysisOptions,
    analyze_tree,
    build_index,
    dimensions,
    forksafety,
    taint,
)
from repro.analysis.flow import build_call_graph  # noqa: E402

LIVE_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _time_runs(runs: int, work: Callable[[], object]) -> Tuple[List[float], object]:
    timings = []
    result = None
    for _ in range(max(1, runs)):
        start = time.perf_counter()
        result = work()
        timings.append(time.perf_counter() - start)
    return timings, result


def _flow_passes() -> int:
    """One full interprocedural cycle; returns the node count."""
    index = build_index(LIVE_ROOT, None)
    graph = build_call_graph(index)
    summaries = dimensions.solve_return_summaries(index, graph)
    dimensions.check(index, graph, summaries=summaries)
    taint.check(index, graph)
    forksafety.check(index, graph)
    return len(graph.nodes)


def _report(label: str, timings: List[float], budget: float) -> bool:
    best = min(timings)
    print(
        f"{label} x{len(timings)}: "
        + ", ".join(f"{t:.3f}s" for t in timings)
        + f" (best {best:.3f}s, budget {budget:.1f}s)"
    )
    if best > budget:
        print(f"FAIL: {label} took {best:.3f}s > {budget:.1f}s")
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget-s", type=float, default=10.0)
    parser.add_argument("--flow-budget-s", type=float, default=20.0)
    parser.add_argument("--runs", type=int, default=3)
    args = parser.parse_args(argv)

    tree_timings, report = _time_runs(
        args.runs, lambda: analyze_tree(AnalysisOptions(root=LIVE_ROOT))
    )
    flow_timings, node_count = _time_runs(args.runs, _flow_passes)

    ok = _report(
        f"analyzed {report.file_count} files", tree_timings, args.budget_s
    )
    ok = (
        _report(
            f"flow passes over {node_count} functions",
            flow_timings,
            args.flow_budget_s,
        )
        and ok
    )
    if not ok:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
