"""Fork-safety checker: module-level mutable state vs executor workers.

The sweep harness runs every point three ways — inline, pool, farm —
and the bitwise-equivalence guarantee across lanes assumes worker
processes compute from their *arguments*, not from module-level state
that happens to differ between the coordinator and a fork/spawn child.
This pass makes that assumption checkable:

1. **Worker closure** — the functions reachable (call *and* ref edges:
   a worker entry is usually passed as a value, ``Process(target=...)``)
   from the executor lanes' entry points.  Entry points are discovered
   from ``target=``/``initializer=`` keywords and first arguments of
   ``.map(...)``-style calls, plus the known lane entries
   (:data:`DEFAULT_WORKER_ENTRIES`).
2. **Module-mutable registry** — top-level ``NAME = <mutable>``
   bindings anywhere in the tree (dict/list/set displays,
   comprehensions, constructor calls).  Tuples, frozensets, and scalar
   constants are immutable and exempt.  Matching is by bare name, the
   same convention the call graph uses — ``from repro.sim.ops import
   stream_cache`` keeps referring to the same global.
3. **Rules**, evaluated only inside the worker closure:

   * ``FORK-GLOBAL-WRITE`` (error) — a worker-reachable function
     rebinding (``global``), item/attribute-storing, or calling a
     mutator method on a module-mutable.  Lane divergence: the write
     lands in one worker's copy, not the coordinator's or the inline
     lane's.
   * ``FORK-LAZY-INIT`` (warning) — ``if NAME is None:`` /
     ``if not NAME:`` guarding a global rebind: each worker initializes
     its own copy at an order-dependent moment; on fork the parent's
     half-built value may leak through.
   * ``FORK-UNPICKLED-STATE`` (warning) — a worker-reachable *read* of
     a module-mutable whose only function writers are
     coordinator-side: on spawn platforms the worker sees the
     import-time default, silently missing whatever the coordinator
     installed.  Import-time population (``_NODES = {...}`` with no
     function writers) is fork-safe and not flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import (
    CallGraph,
    call_candidates,
    node_id,
    owned_nodes,
)
from repro.analysis.index import FunctionInfo, TreeIndex

#: Lane worker entries that are invoked through objects the call graph
#: cannot resolve (a ``_PointCall`` instance passed to ``pool.map``).
DEFAULT_WORKER_ENTRIES: Tuple[str, ...] = (
    "_PointCall.__call__",
    "_farm_worker",
    "_seed_stream_cache",
)

#: Keyword arguments whose value is a function executed in a child.
_WORKER_KEYWORDS = frozenset({"target", "initializer"})

#: ``executor.map(fn, ...)``-style methods whose first argument runs in
#: workers.
_MAP_METHODS = frozenset({"map", "map_values", "submit", "apply_async"})

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "put",
        "seed",
        "push",
        "record",
        "sort",
        "reverse",
    }
)

#: Value expressions that build a mutable object at module level.
_MUTABLE_DISPLAYS = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
    ast.Call,
)


@dataclass(frozen=True)
class ModuleGlobal:
    """One module-level mutable binding."""

    name: str
    file: str
    line: int


def _module_mutables(index: TreeIndex) -> Dict[str, ModuleGlobal]:
    """Bare name → module-level mutable binding, tree-wide.

    On a (rare) cross-module name collision the first definition in
    path order wins; the checker only needs *a* definition site for the
    message.
    """
    registry: Dict[str, ModuleGlobal] = {}
    for source in index.files:
        for stmt in source.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not isinstance(value, _MUTABLE_DISPLAYS):
                continue
            if isinstance(value, ast.Call):
                # `tuple(...)`/`frozenset(...)` construct immutables.
                _, attr = _callee_name(value)
                if attr in ("tuple", "frozenset", "namedtuple"):
                    continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id not in registry:
                    registry[target.id] = ModuleGlobal(
                        name=target.id, file=source.rel, line=stmt.lineno
                    )
    return registry


def _callee_name(call: ast.Call) -> Tuple[Optional[str], str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        base = func.value.id if isinstance(func.value, ast.Name) else None
        return base, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, ""


def _locally_bound(info: FunctionInfo) -> Set[str]:
    """Names bound inside the function (params, assigns, loops, ...)."""
    bound: Set[str] = set()
    args = info.node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    declared_global: Set[str] = set()
    for node in owned_nodes(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(node.name)
        elif isinstance(node, ast.ImportFrom) or isinstance(node, ast.Import):
            for alias in node.names:
                bound.add(alias.asname or alias.name.split(".")[0])
    return bound - declared_global


@dataclass
class _Access:
    """Every interaction one function has with module-mutables."""

    #: global name → line of first rebind via ``global`` statement.
    rebinds: Dict[str, int]
    #: rebind lines that sit under an ``if NAME is None/not NAME`` guard.
    lazy_lines: Set[int]
    #: global name → line of first in-place mutation (store or mutator).
    mutations: Dict[str, int]
    #: global name → line of first plain read.
    reads: Dict[str, int]


def _guarded_lazy_lines(info: FunctionInfo, name: str) -> Set[int]:
    """Lines of ``name = ...`` under an ``is None``/``not name`` guard."""
    lines: Set[int] = set()
    for node in owned_nodes(info.node):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        guarded = (
            isinstance(test, ast.Compare)
            and isinstance(test.left, ast.Name)
            and test.left.id == name
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Is)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ) or (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id == name
        )
        if not guarded:
            continue
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        lines.add(stmt.lineno)
    return lines


def _scan_function(
    info: FunctionInfo, mutables: Dict[str, ModuleGlobal]
) -> _Access:
    """Classify every module-mutable access inside one function."""
    bound = _locally_bound(info)
    declared_global: Set[str] = set()
    for node in owned_nodes(info.node):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def is_global_ref(name: str) -> bool:
        if name not in mutables and name not in declared_global:
            return False
        return name in declared_global or name not in bound

    access = _Access(rebinds={}, lazy_lines=set(), mutations={}, reads={})
    for node in owned_nodes(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    access.rebinds.setdefault(target.id, node.lineno)
                elif isinstance(target, (ast.Subscript, ast.Attribute)):
                    root = target.value
                    if (
                        isinstance(root, ast.Name)
                        and is_global_ref(root.id)
                        and root.id in mutables
                    ):
                        access.mutations.setdefault(root.id, node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.attr in _MUTATOR_METHODS
                and is_global_ref(func.value.id)
                and func.value.id in mutables
            ):
                access.mutations.setdefault(func.value.id, node.lineno)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if is_global_ref(node.id) and node.id in mutables:
                access.reads.setdefault(node.id, node.lineno)
    for name in set(access.rebinds):
        access.lazy_lines.update(_guarded_lazy_lines(info, name))
    return access


def worker_roots(index: TreeIndex, graph: CallGraph) -> Tuple[str, ...]:
    """Node ids of every function that runs in a child process."""
    roots: Set[str] = set()
    for entry in DEFAULT_WORKER_ENTRIES:
        roots.update(graph.ids_for_name(entry))
    for nid in graph.nodes:
        info = graph.nodes[nid]
        for node in owned_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            candidates: List[ast.expr] = []
            for keyword in node.keywords:
                if keyword.arg in _WORKER_KEYWORDS:
                    candidates.append(keyword.value)
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MAP_METHODS
                and node.args
            ):
                candidates.append(node.args[0])
            for expr in candidates:
                if isinstance(expr, (ast.Name, ast.Attribute)):
                    _, resolved = call_candidates(index, expr)
                    for target in resolved:
                        roots.add(node_id(target))
    return tuple(sorted(roots))


def check(index: TreeIndex, graph: CallGraph) -> List[Finding]:
    """Run FORK-GLOBAL-WRITE / FORK-LAZY-INIT / FORK-UNPICKLED-STATE."""
    mutables = _module_mutables(index)
    if not mutables:
        return []
    roots = worker_roots(index, graph)
    closure = graph.reachable(roots, include_refs=True)

    accesses: Dict[str, _Access] = {
        nid: _scan_function(graph.nodes[nid], mutables) for nid in graph.nodes
    }
    #: global name → function node ids that write it (anywhere in tree).
    writers: Dict[str, Set[str]] = {}
    for nid, access in accesses.items():
        for name in set(access.rebinds) | set(access.mutations):
            writers.setdefault(name, set()).add(nid)

    findings: List[Finding] = []
    emitted: Set[Tuple[str, str, str]] = set()

    def emit(
        nid: str, rule: str, severity: str, line: int, message: str
    ) -> None:
        info = graph.nodes[nid]
        key = (nid, rule, message)
        if key in emitted:
            return
        emitted.add(key)
        findings.append(
            Finding(
                path=info.file.rel,
                line=line,
                rule=rule,
                severity=severity,
                message=message,
                snippet=info.file.snippet(line),
            )
        )

    for nid in sorted(closure):
        info = graph.nodes[nid]
        access = accesses[nid]
        for name, line in sorted(access.rebinds.items()):
            which = mutables.get(name)
            origin = (
                f" (defined at {which.file}:{which.line})" if which else ""
            )
            if line in access.lazy_lines or access.lazy_lines & set(
                range(line, line + 1)
            ):
                emit(
                    nid,
                    "FORK-LAZY-INIT",
                    "warning",
                    line,
                    f"`{info.qualname}` lazily initializes module global "
                    f"`{name}`{origin} inside a worker-reachable path; each "
                    "lane initializes its own copy at a different moment",
                )
            else:
                emit(
                    nid,
                    "FORK-GLOBAL-WRITE",
                    "error",
                    line,
                    f"`{info.qualname}` rebinds module global `{name}`"
                    f"{origin} while worker-reachable; the write diverges "
                    "between inline, pool, and farm lanes",
                )
        for name, line in sorted(access.mutations.items()):
            which = mutables[name]
            emit(
                nid,
                "FORK-GLOBAL-WRITE",
                "error",
                line,
                f"`{info.qualname}` mutates module global `{name}` "
                f"(defined at {which.file}:{which.line}) while "
                "worker-reachable; the write diverges between inline, "
                "pool, and farm lanes",
            )
        for name, line in sorted(access.reads.items()):
            if name in access.rebinds or name in access.mutations:
                continue  # initializer pattern: handled above
            writer_ids = writers.get(name, set())
            if not writer_ids:
                continue  # import-time population only: fork-safe
            if writer_ids & closure:
                continue  # a worker-side writer exists (seeding path)
            which = mutables[name]
            coordinator_side = ", ".join(
                sorted(graph.qualname(w) for w in writer_ids)[:3]
            )
            emit(
                nid,
                "FORK-UNPICKLED-STATE",
                "warning",
                line,
                f"`{info.qualname}` reads module global `{name}` (defined "
                f"at {which.file}:{which.line}) whose writers "
                f"({coordinator_side}) never run in workers; spawn-lane "
                "workers see the import-time default",
            )
    findings.sort()
    return findings
