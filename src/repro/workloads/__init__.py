"""Synthetic SPLASH-2 workload models (Table 2 stand-ins).

The paper runs the twelve SPLASH-2 applications [41] on its simulator.
Running the actual binaries would require a full-system functional
simulator; what the paper's conclusions actually depend on is each
application's *behavioural signature*:

* how its nominal parallel efficiency falls with core count (serial
  sections, load imbalance, lock contention, communication),
* how memory-bound it is (working-set size versus cache capacity,
  spatial locality, sharing intensity),
* how much dynamic power it draws (base CPI, stall fraction).

:mod:`repro.workloads.splash2` encodes those signatures, one
:class:`~repro.workloads.base.WorkloadSpec` per application, with
parameters set from the published SPLASH-2 characterisation and the
paper's own observations (e.g. FMM/Cholesky/Radix in descending order of
computational intensity, Section 4.2).  The generator in
:mod:`repro.workloads.base` turns a spec into deterministic per-thread
operation streams for the simulator.
"""

from repro.workloads.base import WorkloadModel, WorkloadSpec
from repro.workloads.splash2 import SPLASH2, workload_by_name
from repro.workloads.microbench import max_power_microbenchmark
from repro.workloads.trace import TraceWorkload, record_trace
from repro.workloads.multiprogram import MultiprogrammedWorkload, homogeneous_mix

__all__ = [
    "MultiprogrammedWorkload",
    "homogeneous_mix",
    "WorkloadModel",
    "WorkloadSpec",
    "SPLASH2",
    "workload_by_name",
    "max_power_microbenchmark",
    "TraceWorkload",
    "record_trace",
]
