"""Per-sweep run manifests and JSONL event logs.

Every sweep invoked with ``--telemetry-dir DIR`` produces one run
directory ``DIR/<run_id>/`` containing

* ``manifest.json`` — the :data:`MANIFEST_SCHEMA` document: run id,
  command, git SHA, context fingerprint, point/kernel totals, status;
* ``events.jsonl`` — one JSON object per line, currently ``point``
  events (index, cache key, status, cached flag, worker pid, wall time,
  op counts, start timestamp);
* ``spans.jsonl`` — one completed span tree per line (see
  :class:`~repro.telemetry.trace.SpanRecord`);
* ``timeline.jsonl`` — one sampled counter reading per line (see
  :class:`~repro.telemetry.timeseries.SampleRecord`), attributed to the
  sweep point that deposited it.  Created lazily on the first reading,
  so sampling-off runs stay two-file; headed by a schema line and read
  with the journal's torn-tail tolerance (a reading lost to a crash
  mid-write costs that line, not the artifact).

The manifest is written twice: once at creation (``status: "running"``,
so a crashed sweep leaves evidence) and once by :meth:`TelemetryRun.finalize`
(``status: "complete"`` plus totals, per-channel statistics, and the
findings of the :mod:`~repro.telemetry.alerts` rules).
:func:`validate_run_dir` checks a run directory against this schema —
the CI telemetry job and the test suite both use it — and
:func:`latest_run_dir` resolves the newest run under a
``--telemetry-dir`` (run ids sort chronologically).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple, Union

from repro.errors import ConfigurationError
from repro.telemetry.alerts import AlertRule, ChannelStats, evaluate_rules
from repro.telemetry.record import PointTelemetry
from repro.telemetry.timeseries import SampleRecord, get_sampler
from repro.telemetry.trace import SpanRecord, get_tracer

PathLike = Union[str, Path]

MANIFEST_SCHEMA = "repro-telemetry-v1"
TIMELINE_SCHEMA = "repro-timeline-v1"

#: Keys every finalized manifest must carry, with their expected types.
_MANIFEST_REQUIRED = {
    "schema": str,
    "run_id": str,
    "created_utc": str,
    "command": str,
    "python": str,
    "status": str,
    "points": dict,
    "kernel": dict,
}
_POINT_COUNTERS = (
    "total",
    "ok",
    "failed",
    "cached",
    "evaluated",
    "retried",
    "quarantined",
)
_KERNEL_COUNTERS = (
    "runs",
    "total_ops",
    "fast_path_ops",
    "slow_path_ops",
    "barrier_ops",
    "sim_wall_s",
)
_POINT_EVENT_REQUIRED = {
    "event": str,
    "index": int,
    "status": str,
    "cached": bool,
    "pid": int,
    "wall_s": (int, float),
    "ops": int,
    "runs": int,
    "attempts": int,
}


def git_sha(start: Optional[PathLike] = None) -> Optional[str]:
    """Best-effort commit SHA of the enclosing git checkout.

    Reads ``.git/HEAD`` (and the ref file it names) directly — no
    subprocess — walking up from ``start``; returns ``None`` outside a
    checkout or on any read problem.
    """
    directory = Path(start or os.getcwd()).resolve()
    for candidate in (directory, *directory.parents):
        git = candidate / ".git"
        if not git.is_dir():
            continue
        try:
            head = (git / "HEAD").read_text(encoding="utf-8").strip()
            if head.startswith("ref:"):
                ref = head.partition(":")[2].strip()
                return (git / ref).read_text(encoding="utf-8").strip() or None
            return head or None
        except OSError:
            return None
    return None


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class TelemetryRun:
    """One sweep's telemetry artifact: manifest + JSONL event/span logs.

    Create it before the sweep, hand it to the executor (its
    ``telemetry_run`` attribute), and :meth:`finalize` it afterwards —
    the CLI does all three under ``--telemetry-dir``.
    """

    def __init__(
        self,
        directory: PathLike,
        command: str = "sweep",
        argv: Optional[Sequence[str]] = None,
        context_fingerprint: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> None:
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        self.run_id = run_id or f"{stamp}-{os.getpid()}"
        self.directory = Path(directory) / self.run_id
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.directory} as a telemetry directory: {exc}"
            ) from exc
        self.command = command
        self.argv = list(argv) if argv is not None else None
        self.context_fingerprint = context_fingerprint
        self.fault_plan: Optional[str] = None
        self.resume: Optional[Dict[str, Any]] = None
        self.finalized = False
        self._started = time.perf_counter()
        self.points = {name: 0 for name in _POINT_COUNTERS}
        self.kernel = {
            name: (0.0 if name == "sim_wall_s" else 0)
            for name in _KERNEL_COUNTERS
        }
        self.kernel["cached_runs"] = 0
        self.spans_written = 0
        self.samples_written = 0
        #: Per-channel running statistics over every recorded sample;
        #: what the alert rules are evaluated against at finalize.
        self.channel_stats: Dict[str, ChannelStats] = {}
        #: ``None`` means the built-in :data:`~repro.telemetry.alerts.DEFAULT_RULES`.
        self.alert_rules: Optional[Sequence[AlertRule]] = None
        self.alerts: List[Dict[str, Any]] = []
        self._events: TextIO = (self.directory / "events.jsonl").open(
            "a", encoding="utf-8"
        )
        self._spans: TextIO = (self.directory / "spans.jsonl").open(
            "a", encoding="utf-8"
        )
        #: Opened lazily by :meth:`record_samples` so sampling-off runs
        #: do not grow an empty third artifact.
        self._timeline: Optional[TextIO] = None
        self._write_manifest(status="running")

    # -- recording -----------------------------------------------------------

    def set_context_fingerprint(self, digest: Optional[str]) -> None:
        """Record the experiment context's cache-key digest."""
        self.context_fingerprint = digest

    def set_fault_plan(self, description: Optional[str]) -> None:
        """Record that this run injected faults (and which plan)."""
        self.fault_plan = description

    def set_resume(self, run_id: str, already_complete: int) -> None:
        """Record that this run resumed an earlier journal.

        Emits a ``resume`` event line as well, so the JSONL log shows
        *when* the resume happened relative to the point events.
        """
        self.resume = {"run_id": run_id, "already_complete": already_complete}
        self._event(
            {
                "event": "resume",
                "run_id": run_id,
                "already_complete": already_complete,
            }
        )

    def record_point(self, outcome: Any) -> None:
        """Log one sweep point's outcome (a ``PointOutcome``-shaped object)."""
        telemetry: Optional[PointTelemetry] = getattr(outcome, "telemetry", None)
        attempts = int(getattr(outcome, "attempts", 1))
        event: Dict[str, Any] = {
            "event": "point",
            "index": outcome.index,
            "key": outcome.key,
            "status": "ok" if outcome.failure is None else "error",
            "cached": bool(outcome.cached),
            "lane": str(getattr(outcome, "lane", "inline")),
            "attempts": attempts,
            "pid": telemetry.pid if telemetry else 0,
            "start_us": telemetry.start_us if telemetry else 0.0,
            "wall_s": telemetry.wall_s if telemetry else 0.0,
            "ops": telemetry.total_ops if telemetry else 0,
            "fast_path_ops": telemetry.fast_path_ops if telemetry else 0,
            "runs": len(telemetry.kernels) if telemetry else 0,
        }
        quarantined = False
        if outcome.failure is not None:
            event["error_type"] = outcome.failure.error_type
            quarantined = bool(getattr(outcome.failure, "retryable", False))
            event["retryable"] = quarantined
        self._event(event)
        self.points["total"] += 1
        self.points["ok" if outcome.failure is None else "failed"] += 1
        self.points["cached" if outcome.cached else "evaluated"] += 1
        if attempts > 1:
            self.points["retried"] += 1
        if quarantined:
            self.points["quarantined"] += 1
        if telemetry is not None:
            for kernel in telemetry.kernels:
                self.kernel["cached_runs" if outcome.cached else "runs"] += 1
                self.kernel["total_ops"] += kernel.total_ops
                self.kernel["fast_path_ops"] += kernel.fast_path_ops
                self.kernel["slow_path_ops"] += kernel.slow_path_ops
                self.kernel["barrier_ops"] += kernel.barrier_ops
                self.kernel["sim_wall_s"] += kernel.sim_wall_s
            self.record_spans(telemetry.spans, pid=telemetry.pid)
            self.record_samples(
                telemetry.samples,
                point=outcome.index,
                pid=telemetry.pid,
                cached=bool(outcome.cached),
            )

    def record_spans(
        self, spans: Sequence[SpanRecord], pid: Optional[int] = None
    ) -> None:
        """Append completed span trees to ``spans.jsonl``."""
        pid = os.getpid() if pid is None else pid
        for span in spans:
            line = {"event": "span", "pid": pid, "span": span.to_dict()}
            self._spans.write(json.dumps(line, sort_keys=True) + "\n")
            self.spans_written += 1
        if spans:
            self._spans.flush()

    def record_samples(
        self,
        samples: Sequence[SampleRecord],
        point: Optional[int] = None,
        pid: Optional[int] = None,
        cached: bool = False,
    ) -> None:
        """Append counter readings to ``timeline.jsonl``.

        ``point`` is the sweep-point index the readings belong to
        (``None`` for readings taken outside any point — context
        calibration, directly-run governor loops).  Every reading also
        feeds the run's per-channel statistics, which is what the alert
        rules see at finalize.
        """
        if not samples:
            return
        pid = os.getpid() if pid is None else pid
        if self._timeline is None:
            self._timeline = (self.directory / "timeline.jsonl").open(
                "a", encoding="utf-8"
            )
            header = {"schema": TIMELINE_SCHEMA, "run_id": self.run_id}
            self._timeline.write(json.dumps(header, sort_keys=True) + "\n")
        for record in samples:
            line = {"event": "sample", "point": point, "pid": pid,
                    "cached": cached}
            line.update(record.to_dict())
            self._timeline.write(json.dumps(line, sort_keys=True) + "\n")
            self.samples_written += 1
            stats = self.channel_stats.get(record.channel)
            if stats is None:
                stats = self.channel_stats[record.channel] = ChannelStats()
            stats.observe(record.value)
        self._timeline.flush()

    def _event(self, event: Dict[str, Any]) -> None:
        self._events.write(json.dumps(event, sort_keys=True) + "\n")
        self._events.flush()

    # -- lifecycle -----------------------------------------------------------

    def finalize(
        self,
        executor: Optional[Any] = None,
        drain_tracer: bool = True,
    ) -> Path:
        """Close the run: drain the process tracer, write final manifest.

        Also drains the coordinator's counter sampler (readings taken
        outside any point-capture window, e.g. during context
        calibration) and evaluates the alert rules over the whole run's
        channel statistics.  ``executor`` (a ``SweepExecutor``-shaped
        object) contributes its executor/cache counters to the manifest
        when given.  Idempotent.
        """
        if self.finalized:
            return self.directory / "manifest.json"
        if drain_tracer:
            tracer = get_tracer()
            self.record_spans(tracer.drain_records())
        sampler = get_sampler()
        self.record_samples(sampler.drain_records())
        self.alerts = [
            finding.to_dict()
            for finding in evaluate_rules(
                self.channel_stats, self.alert_rules, dropped=sampler.dropped
            )
        ]
        extra: Dict[str, Any] = {}
        if executor is not None:
            stats = executor.stats
            extra["executor"] = {
                "evaluated": stats.evaluated,
                "cache_hits": stats.cache_hits,
                "failures": stats.failures,
                "uncacheable": stats.uncacheable,
                "retries": getattr(stats, "retries", 0),
                "quarantined": getattr(stats, "quarantined", 0),
            }
            cache = getattr(executor, "cache", None)
            if cache is not None:
                extra["cache"] = {
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "stores": cache.stats.stores,
                    "quarantined": cache.stats.quarantined,
                }
        path = self._write_manifest(status="complete", extra=extra)
        self._events.close()
        self._spans.close()
        if self._timeline is not None:
            self._timeline.close()
        self.finalized = True
        return path

    def _write_manifest(
        self, status: str, extra: Optional[Dict[str, Any]] = None
    ) -> Path:
        tracer = get_tracer()
        document: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "run_id": self.run_id,
            "created_utc": _utc_stamp(),
            "command": self.command,
            "argv": self.argv,
            "git_sha": git_sha(),
            "python": platform.python_version(),
            "context_fingerprint": self.context_fingerprint,
            "fault_injection": self.fault_plan,
            "resume": self.resume,
            "status": status,
            "wall_s": round(time.perf_counter() - self._started, 6),
            "coordinator_pid": os.getpid(),
            "points": dict(self.points),
            "kernel": dict(self.kernel),
            "spans": {
                "written": self.spans_written,
                "dropped": tracer.dropped,
            },
            "timeline": {
                "written": self.samples_written,
                "dropped": get_sampler().dropped,
                "channels": {
                    name: stats.to_dict()
                    for name, stats in sorted(self.channel_stats.items())
                },
            },
            "alerts": list(self.alerts),
        }
        if extra:
            document.update(extra)
        path = self.directory / "manifest.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(
            json.dumps(document, indent=1, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp, path)
        return path


# ---------------------------------------------------------------------------
# Reading and validating run directories.
# ---------------------------------------------------------------------------


def list_run_dirs(telemetry_dir: PathLike) -> List[Path]:
    """Run directories under a ``--telemetry-dir``, oldest first."""
    root = Path(telemetry_dir)
    if not root.is_dir():
        raise ConfigurationError(f"{root}: not a telemetry directory")
    return sorted(
        p for p in root.iterdir() if p.is_dir() and (p / "manifest.json").exists()
    )


def latest_run_dir(telemetry_dir: PathLike) -> Path:
    """The newest run under a ``--telemetry-dir``."""
    runs = list_run_dirs(telemetry_dir)
    if not runs:
        raise ConfigurationError(
            f"{telemetry_dir}: contains no telemetry runs"
        )
    return runs[-1]


def resolve_run_dir(telemetry_dir: PathLike, run_id: Optional[str] = None) -> Path:
    """The run directory for ``run_id``, or the newest run when omitted."""
    if run_id is None:
        return latest_run_dir(telemetry_dir)
    path = Path(telemetry_dir) / run_id
    if not (path / "manifest.json").exists():
        raise ConfigurationError(f"{path}: no such telemetry run")
    return path


def load_manifest(run_dir: PathLike) -> Dict[str, Any]:
    """Parse (without validating) a run directory's manifest."""
    path = Path(run_dir) / "manifest.json"
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"{path}: unreadable manifest ({exc})") from exc
    if not isinstance(document, dict):
        raise ConfigurationError(f"{path}: manifest is not an object")
    return document


def _load_jsonl(path: Path) -> List[Dict[str, Any]]:
    if not path.exists():
        return []
    entries = []
    with path.open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{number}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(entry, dict):
                raise ConfigurationError(f"{path}:{number}: not an object")
            entries.append(entry)
    return entries


def load_events(run_dir: PathLike) -> List[Dict[str, Any]]:
    """The run's ``events.jsonl`` entries, in emission order."""
    return _load_jsonl(Path(run_dir) / "events.jsonl")


def load_spans(run_dir: PathLike) -> List[Dict[str, Any]]:
    """The run's ``spans.jsonl`` entries (``{"pid", "span"}`` objects)."""
    return _load_jsonl(Path(run_dir) / "spans.jsonl")


def load_timeline(run_dir: PathLike) -> Tuple[List[Dict[str, Any]], int]:
    """The run's ``timeline.jsonl`` sample entries, torn-tail tolerant.

    Returns ``(entries, skipped)``: parsed sample lines in emission
    order, and the count of lines that failed to parse (a crash
    mid-write tears at most the tail line — same convention as the
    sweep journal, and unlike :func:`load_events` the timeline loader
    never refuses the whole artifact over one lost reading).  A missing
    file is an empty timeline; a present file must lead with the
    :data:`TIMELINE_SCHEMA` header line.
    """
    path = Path(run_dir) / "timeline.jsonl"
    if not path.exists():
        return [], 0
    entries: List[Dict[str, Any]] = []
    skipped = 0
    header_seen = False
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(entry, dict):
                skipped += 1
                continue
            if not header_seen:
                header_seen = True
                if entry.get("schema") != TIMELINE_SCHEMA:
                    raise ConfigurationError(
                        f"{path}: timeline schema {entry.get('schema')!r} != "
                        f"supported {TIMELINE_SCHEMA!r}"
                    )
                continue
            entries.append(entry)
    if not header_seen:
        raise ConfigurationError(f"{path}: missing timeline header line")
    return entries, skipped


def _check_span_tree(node: Any, where: str) -> int:
    if not isinstance(node, dict):
        raise ConfigurationError(f"{where}: span is not an object")
    for key, kinds in (
        ("name", str),
        ("start_us", (int, float)),
        ("duration_us", (int, float)),
    ):
        if not isinstance(node.get(key), kinds):
            raise ConfigurationError(f"{where}: span missing/invalid {key!r}")
    count = 1
    for child in node.get("children", ()):
        count += _check_span_tree(child, where)
    return count


def validate_run_dir(run_dir: PathLike) -> Dict[str, Any]:
    """Validate one run directory against the telemetry schema.

    Checks the manifest's required keys and counter blocks, every event
    line, every span tree, and the cross-file invariant that the
    manifest's point totals match the logged events.  Returns a summary
    ``{"manifest", "points", "spans"}``; raises
    :class:`~repro.errors.ConfigurationError` on the first problem.
    """
    run_dir = Path(run_dir)
    manifest = load_manifest(run_dir)
    for key, kinds in _MANIFEST_REQUIRED.items():
        if not isinstance(manifest.get(key), kinds):
            raise ConfigurationError(
                f"{run_dir}/manifest.json: missing or invalid {key!r}"
            )
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise ConfigurationError(
            f"{run_dir}/manifest.json: schema {manifest['schema']!r} != "
            f"supported {MANIFEST_SCHEMA!r}"
        )
    for name in _POINT_COUNTERS:
        if not isinstance(manifest["points"].get(name), int):
            raise ConfigurationError(
                f"{run_dir}/manifest.json: points.{name} missing or non-integer"
            )
    for name in _KERNEL_COUNTERS:
        if not isinstance(manifest["kernel"].get(name), (int, float)):
            raise ConfigurationError(
                f"{run_dir}/manifest.json: kernel.{name} missing or non-numeric"
            )

    events = load_events(run_dir)
    point_events = 0
    for number, event in enumerate(events, start=1):
        if event.get("event") != "point":
            continue
        point_events += 1
        for key, kinds in _POINT_EVENT_REQUIRED.items():
            if not isinstance(event.get(key), kinds):
                raise ConfigurationError(
                    f"{run_dir}/events.jsonl:{number}: missing/invalid {key!r}"
                )
        if event["status"] not in ("ok", "error"):
            raise ConfigurationError(
                f"{run_dir}/events.jsonl:{number}: bad status {event['status']!r}"
            )
    if manifest["status"] == "complete" and point_events != manifest["points"]["total"]:
        raise ConfigurationError(
            f"{run_dir}: manifest counts {manifest['points']['total']} points "
            f"but events.jsonl logs {point_events}"
        )

    spans = 0
    for number, entry in enumerate(load_spans(run_dir), start=1):
        if entry.get("event") != "span" or not isinstance(entry.get("pid"), int):
            raise ConfigurationError(
                f"{run_dir}/spans.jsonl:{number}: not a span entry"
            )
        spans += _check_span_tree(
            entry.get("span"), f"{run_dir}/spans.jsonl:{number}"
        )

    samples, torn = _validate_timeline(run_dir, manifest)

    return {
        "manifest": manifest,
        "points": point_events,
        "spans": spans,
        "samples": samples,
        "torn_samples": torn,
    }


_SAMPLE_ENTRY_REQUIRED = {
    "event": str,
    "channel": str,
    "t_us": (int, float),
    "value": (int, float),
    "pid": int,
    "cached": bool,
}


def _validate_timeline(run_dir: Path, manifest: Dict[str, Any]) -> Tuple[int, int]:
    """Check ``timeline.jsonl`` against the manifest's declaration.

    A manifest that counts written samples while the file is missing is
    an error (the artifact was lost); a file torn mid-line is not — the
    parseable entries just have to be well-formed samples, mirroring
    the journal's crash-tolerance convention.
    """
    declared = manifest.get("timeline")
    path = run_dir / "timeline.jsonl"
    if declared is not None:
        if not isinstance(declared, dict) or not isinstance(
            declared.get("written"), int
        ):
            raise ConfigurationError(
                f"{run_dir}/manifest.json: malformed timeline declaration"
            )
        if declared["written"] > 0 and not path.exists():
            raise ConfigurationError(
                f"{run_dir}: manifest declares {declared['written']} timeline "
                "samples but timeline.jsonl is missing"
            )
    entries, torn = load_timeline(run_dir)
    for number, entry in enumerate(entries, start=1):
        for key, kinds in _SAMPLE_ENTRY_REQUIRED.items():
            if not isinstance(entry.get(key), kinds):
                raise ConfigurationError(
                    f"{run_dir}/timeline.jsonl: sample {number}: "
                    f"missing/invalid {key!r}"
                )
        if entry["event"] != "sample":
            raise ConfigurationError(
                f"{run_dir}/timeline.jsonl: sample {number}: "
                f"bad event {entry['event']!r}"
            )
        if entry.get("point") is not None and not isinstance(entry["point"], int):
            raise ConfigurationError(
                f"{run_dir}/timeline.jsonl: sample {number}: bad point index"
            )
    if (
        declared is not None
        and manifest.get("status") == "complete"
        and torn == 0
        and declared["written"] != len(entries)
    ):
        raise ConfigurationError(
            f"{run_dir}: manifest counts {declared['written']} timeline "
            f"samples but timeline.jsonl logs {len(entries)}"
        )
    return len(entries), torn
