"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures to quantify which modelling
ingredients its conclusions actually rest on:

* **leakage temperature feedback** — rerunning Scenario I with the
  thermal coupling frozen at the design temperature shows how much of
  the power savings come from the cooling feedback loop;
* **voltage floor** — sweeping the noise-margin factor moves the
  Figure 2 peak, demonstrating the floor is what caps budget-limited
  speedup;
* **static power share** — sweeping the node's static fraction
  reproduces the 130 nm -> 65 nm -> (projected) 32 nm trend: the more
  leakage-dominated the node, the earlier and lower the speedup peak;
* **projected 32 nm node** — the paper's trend extrapolated one node
  further (dark-silicon foreshadowing).
"""

from dataclasses import replace

import pytest

from repro.core import (
    AnalyticalChipModel,
    ConstantEfficiency,
    PerformanceOptimizationScenario,
    PowerOptimizationScenario,
    figure2_sweep,
)
from repro.harness import render_table
from repro.tech import NODE_130NM, NODE_32NM_PROJECTED, NODE_65NM
from repro.tech.leakage import LeakageFit, default_leakage_multiplier


class _FrozenTemperatureLeakage:
    """A leakage multiplier that ignores temperature (ablation)."""

    def __init__(self, base: LeakageFit, temperature_k: float) -> None:
        self._base = base
        self._temperature_k = temperature_k

    def multiplier(self, v: float, temperature_k: float) -> float:
        return self._base.multiplier(v, self._temperature_k)


def test_ablation_thermal_feedback(benchmark):
    """Scenario I with and without the leakage/temperature feedback."""
    from repro.units import celsius_to_kelvin

    coupled = AnalyticalChipModel(NODE_65NM)
    frozen = AnalyticalChipModel(
        NODE_65NM,
        leakage=_FrozenTemperatureLeakage(
            default_leakage_multiplier(NODE_65NM), celsius_to_kelvin(100.0)
        ),
    )

    def solve_both():
        a = PowerOptimizationScenario(coupled).solve(16, 1.0).normalized_power
        b = PowerOptimizationScenario(frozen).solve(16, 1.0).normalized_power
        return a, b

    with_feedback, without_feedback = benchmark.pedantic(
        solve_both, rounds=1, iterations=1
    )
    print(
        f"\nScenario I, N=16, eps=1: normalized power {with_feedback:.3f} "
        f"(thermal feedback) vs {without_feedback:.3f} (frozen at 100C)"
    )
    # Cooling the die reduces leakage: the coupled model saves more.
    assert with_feedback < without_feedback


@pytest.mark.parametrize("noise_margin", [2.0, 2.7, 3.4, 4.1])
def test_ablation_voltage_floor(benchmark, noise_margin):
    """The Figure 2 peak tracks the voltage floor."""
    node = replace(NODE_65NM, noise_margin_factor=noise_margin)
    chip = AnalyticalChipModel(node)
    curve = benchmark.pedantic(lambda: figure2_sweep(chip), rounds=1, iterations=1)
    n_peak, s_peak = curve.peak()
    print(
        f"\nvoltage floor {node.v_min:.2f} V -> peak speedup "
        f"{s_peak:.2f} at N={n_peak}"
    )
    assert s_peak > 1.0
    # A deeper floor (smaller margin) always allows at least as much
    # budget-limited speedup.
    if noise_margin == 2.0:
        reference = figure2_sweep(AnalyticalChipModel(NODE_65NM)).peak()[1]
        assert s_peak >= reference


def test_ablation_static_fraction_sweep(benchmark):
    """More leakage-dominated nodes collapse faster past the peak.

    With the 1-core total power held fixed, raising the static share
    *lowers* per-core dynamic power, so the peak itself does not fall;
    the leakage cost shows up in the post-peak region — at high N the
    per-core static floor eats the budget and speedup decays faster.
    """
    fractions = (0.15, 0.35, 0.50)

    def sweep():
        out = {}
        for fraction in fractions:
            node = replace(NODE_65NM, static_fraction_nominal=fraction)
            curve = figure2_sweep(AnalyticalChipModel(node))
            lookup = dict(zip(curve.core_counts, curve.speedups))
            out[fraction] = (curve.peak(), lookup[20])
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        render_table(
            ["static fraction", "peak N", "peak speedup", "speedup @ N=20"],
            [
                [f, results[f][0][0], results[f][0][1], results[f][1]]
                for f in fractions
            ],
            title="Figure 2 tail vs static power share",
        )
    )
    tails = [results[f][1] for f in fractions]
    assert tails[0] > tails[1] > tails[2]


def test_ablation_projected_32nm(benchmark):
    """One node beyond the paper: the collapse gets worse at 32 nm."""
    chip = AnalyticalChipModel(NODE_32NM_PROJECTED)
    curve = benchmark.pedantic(lambda: figure2_sweep(chip), rounds=1, iterations=1)
    n_peak, s_peak = curve.peak()
    curve65 = figure2_sweep(AnalyticalChipModel(NODE_65NM))
    print(
        f"\n32 nm projected: peak speedup {s_peak:.2f} at N={n_peak} "
        f"(65 nm: {curve65.peak()[1]:.2f} at N={curve65.peak()[0]})"
    )
    assert s_peak < curve65.peak()[1]


def test_ablation_interconnect(benchmark, experiment_context):
    """Bus versus banked crossbar on a bus-saturating workload.

    The paper's 16-way machine uses a single shared bus; this ablation
    shows how much of the high-N efficiency loss that one choice causes
    for the traffic-heavy applications.
    """
    from repro.harness.designspace import interconnect_variants, sweep_design_parameter
    from repro.workloads import workload_by_name
    from repro.workloads.base import WorkloadModel

    model = WorkloadModel(
        workload_by_name("Radix").spec.scaled(experiment_context.workload_scale)
    )

    points = benchmark.pedantic(
        lambda: sweep_design_parameter(
            model, interconnect_variants((8,)), n_threads=16
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["interconnect", "eps_n(16)", "utilisation", "mem-stall"],
            [
                [p.label, p.nominal_efficiency, p.bus_utilisation, p.memory_stall_fraction]
                for p in points
            ],
            title="Radix @ 16 cores: interconnect ablation",
        )
    )
    by_label = {p.label: p for p in points}
    assert (
        by_label["xbar-8ch"].nominal_efficiency
        > by_label["bus"].nominal_efficiency
    )


def test_ablation_prefetcher(benchmark, experiment_context):
    """Stream prefetching (off in the paper's machine) on Ocean.

    The instructive negative result: the prefetcher removes a good share
    of Ocean's L1 misses, but almost all of those misses were hitting
    the on-chip L2 anyway, so execution time barely moves (and the extra
    interconnect occupancy can even cost a little at higher core
    counts).  These codes' memory boundedness is off-chip latency and
    bus contention, not L1 misses — which is exactly why the paper's
    DVFS lever (shrinking the off-chip gap in cycles) matters more than
    a prefetcher would.
    """
    from dataclasses import replace as dc_replace

    from repro.sim.cmp import ChipMultiprocessor
    from repro.workloads import workload_by_name
    from repro.workloads.base import WorkloadModel

    model = WorkloadModel(
        workload_by_name("Ocean").spec.scaled(experiment_context.workload_scale)
    )

    def run_pair():
        out = {}
        for label, prefetch in (("off", False), ("on", True)):
            config = dc_replace(
                experiment_context.cmp_config, prefetch_next_line=prefetch
            )
            result = ChipMultiprocessor(config).run(
                [model.thread_ops(t, 4) for t in range(4)],
                model.core_timing(),
                warmup_barriers=model.warmup_barriers,
            )
            out[label] = result
        return out

    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    off, on = results["off"], results["on"]
    print(
        f"\nOcean@4: prefetch off: miss {off.l1_miss_rate():.3f}, "
        f"{off.execution_time_s * 1e6:.0f} us; on: miss {on.l1_miss_rate():.3f}, "
        f"{on.execution_time_s * 1e6:.0f} us "
        f"({on.coherence.prefetches} prefetches)"
    )
    assert on.l1_miss_rate() < off.l1_miss_rate()
    # Time moves little either way: the misses removed were L2 hits.
    ratio = on.execution_time_ps / off.execution_time_ps
    assert 0.7 < ratio < 1.35


def test_ablation_budget_sensitivity(benchmark):
    """Doubling the power budget pushes the optimum N up."""
    chip = AnalyticalChipModel(NODE_130NM)

    def best_pair():
        tight = PerformanceOptimizationScenario(chip)
        loose = PerformanceOptimizationScenario(chip, budget_w=2 * tight.budget_w)
        eff = ConstantEfficiency(1.0)
        return (
            tight.best_configuration(eff, range(1, 33)),
            loose.best_configuration(eff, range(1, 33)),
        )

    tight_best, loose_best = benchmark.pedantic(best_pair, rounds=1, iterations=1)
    print(
        f"\nbudget 1x: best N={tight_best.n} speedup={tight_best.speedup:.2f}; "
        f"budget 2x: best N={loose_best.n} speedup={loose_best.speedup:.2f}"
    )
    assert loose_best.speedup > tight_best.speedup
