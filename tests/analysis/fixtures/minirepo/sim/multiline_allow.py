"""Suppression-on-multi-line-statement fixture (analyzer fixture).

The wall-clock read sits on a continuation line of a multi-line
statement; the allow comment above the statement must cover every line
the statement spans.
"""

import time


def profiled_pair() -> tuple:
    # repro: allow[DET-WALLCLOCK] fixture: host-side timing pair
    stamps = (
        time.perf_counter(),
        time.perf_counter(),
    )
    return stamps
