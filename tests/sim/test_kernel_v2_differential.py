"""Property-based differential suite for the kernel-v2 fast path.

Random synthetic workloads — overlapping footprints, tight caches,
random barrier/critical placement — run through the reference
interpreter and the fast-path kernel, asserting bitwise-identical
counters (the same contract as tests/sim/test_fastpath_equivalence.py,
but over adversarial generated inputs instead of the bundled SPLASH-2
models).  A second fast run on the *same* compiled program re-uses the
memoized private-line classification and geometry-resolved streams, so
the warm path is exercised too.

Also here: the false-sharing regression tests for
:func:`repro.sim.ops.classify_private_lines` — two threads touching
*different bytes of one line* must never classify it private — and unit
coverage for the geometry-resolved streams and the bounded compile
cache's instrumentation.
"""

from dataclasses import asdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.cache import CacheConfig
from repro.sim.ops import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_CRITICAL,
    OP_LOAD,
    OP_STORE,
    CompiledProgram,
    OpStreamCache,
    classify_private_lines,
    compile_stream,
    resolve_address_streams,
)


def counters(result):
    """Every simulated counter of one run, as one comparable value."""
    return {
        "execution_time_ps": result.execution_time_ps,
        "core_stats": [asdict(s) for s in result.core_stats],
        "coherence": asdict(result.coherence),
        "l1": [
            (c.hits, c.misses, c.evictions, c.writebacks)
            for c in result.l1_caches
        ],
        "l2": (
            result.l2.hits,
            result.l2.misses,
            result.l2.evictions,
            result.l2.writebacks,
        ),
        "bus": (
            result.bus.transactions,
            result.bus.data_transfers,
            result.bus.busy_ps,
            result.bus.wait_ps,
        ),
        "memory_requests": result.memory_requests,
        "locks": (result.lock_acquires, result.lock_contended),
        "barriers": result.barriers,
    }


# ---------------------------------------------------------------------------
# Random workload generation.
# ---------------------------------------------------------------------------

#: A tiny address pool: some addresses land on lines only one thread
#: uses, others are shared or overlap within a line — the generator
#: draws from all of it, so private classification, invalidations, and
#: false sharing all occur.
LINE_BYTES = 32


def _segment(draw, rng, thread_id, n_threads):
    """One barrier-free run of ops for ``thread_id``."""
    ops = []
    for _ in range(draw(rng.integers(0, 12))):
        kind = draw(rng.integers(0, 6))
        if kind <= 1:
            ops.append((OP_COMPUTE, draw(rng.integers(1, 50))))
        elif kind <= 3:
            # Thread-striped region: mostly private, but offsets near
            # the stripe edge fall into a neighbour's line (false
            # sharing at line granularity).
            base = 0x1000 + thread_id * 0x40
            addr = base + draw(rng.integers(0, 0x50))
            op = OP_LOAD if kind == 2 else OP_STORE
            ops.append((op, addr))
        elif kind == 4:
            # Hot shared line, different bytes per thread.
            ops.append((OP_STORE, 0x8000 + thread_id * 4))
        else:
            ops.append((OP_CRITICAL, 0, draw(rng.integers(1, 10)), 0x9000))
    return ops


@st.composite
def synthetic_workloads(draw):
    n_threads = draw(st.integers(min_value=1, max_value=4))
    n_barriers = draw(st.integers(min_value=0, max_value=3))
    threads = []
    for t in range(n_threads):
        ops = []
        for b in range(n_barriers + 1):
            ops.extend(_segment(draw, st, t, n_threads))
            if b < n_barriers:
                ops.append((OP_BARRIER, b))
        threads.append(ops)
    # Tight caches force evictions and writebacks; tiny L2 forces memory
    # traffic.  Both keep the Table 1 power-of-two invariants.
    config = CMPConfig(
        n_cores=n_threads,
        l1_config=CacheConfig(
            capacity_bytes=draw(st.sampled_from((256, 512, 1024))),
            line_bytes=LINE_BYTES,
            associativity=draw(st.sampled_from((1, 2, 4))),
        ),
        l2_config=CacheConfig(
            capacity_bytes=4096,
            line_bytes=LINE_BYTES,
            associativity=4,
        ),
    )
    return threads, config


class TestRandomWorkloadDifferential:
    @settings(max_examples=60, deadline=None)
    @given(synthetic_workloads())
    def test_reference_fast_and_warm_agree(self, case):
        threads, config = case
        reference = ChipMultiprocessor(config, fast_path=False).run(
            [iter(t) for t in threads]
        )
        streams = [compile_stream(t) for t in threads]
        program = CompiledProgram(
            streams=streams,
            total_ops=sum(len(t) for t in threads),
            compiled_ops=sum(len(s) for s in streams),
        )
        fast = ChipMultiprocessor(config, fast_path=True).run(program)
        assert counters(reference) == counters(fast)
        # Warm rerun: memoized private classification + resolved streams.
        assert program._private_lines and program._resolved
        warm = ChipMultiprocessor(config, fast_path=True).run(program)
        assert counters(reference) == counters(warm)

    @settings(max_examples=25, deadline=None)
    @given(synthetic_workloads())
    def test_private_lines_disjoint_across_threads(self, case):
        threads, config = case
        streams = [compile_stream(t) for t in threads]
        private = classify_private_lines(
            streams, config.l1_config.line_shift
        )
        for i, mine in enumerate(private):
            for j, theirs in enumerate(private):
                if i != j:
                    assert not (mine & theirs)


# ---------------------------------------------------------------------------
# False-sharing regression: overlap within a line is never private.
# ---------------------------------------------------------------------------

LINE_SHIFT = 5  # 32-byte lines


class TestFalseSharingClassification:
    def test_different_bytes_of_one_line_not_private(self):
        # Thread 0 touches byte 0, thread 1 touches byte 8 of the same
        # 32-byte line: distinct addresses, one line — shared-visible.
        streams = [
            [(OP_LOAD, 0x2000)],
            [(OP_STORE, 0x2008)],
        ]
        private = classify_private_lines(streams, LINE_SHIFT)
        assert private == [frozenset(), frozenset()]

    def test_distinct_lines_are_private(self):
        streams = [
            [(OP_LOAD, 0x2000), (OP_STORE, 0x2004)],
            [(OP_STORE, 0x2020)],
        ]
        private = classify_private_lines(streams, LINE_SHIFT)
        assert private == [
            frozenset({0x2000 >> LINE_SHIFT}),
            frozenset({0x2020 >> LINE_SHIFT}),
        ]

    def test_critical_section_address_counts_as_a_touch(self):
        # The critical-section read-modify-write touches the protected
        # line, so a peer's plain load shares it.
        streams = [
            [(OP_CRITICAL, 0, 5, 0x3000)],
            [(OP_LOAD, 0x3010)],
        ]
        private = classify_private_lines(streams, LINE_SHIFT)
        assert private == [frozenset(), frozenset()]

    def test_single_thread_owns_everything_it_touches(self):
        streams = [[(OP_LOAD, 0x100), (OP_STORE, 0x200), (OP_CRITICAL, 0, 1, 0x300)]]
        private = classify_private_lines(streams, LINE_SHIFT)
        assert private == [
            frozenset({0x100 >> LINE_SHIFT, 0x200 >> LINE_SHIFT, 0x300 >> LINE_SHIFT})
        ]

    def test_line_shift_changes_the_verdict(self):
        # 0x2000 and 0x2008 share a 32-byte line but not an 8-byte one.
        streams = [[(OP_LOAD, 0x2000)], [(OP_STORE, 0x2008)]]
        assert classify_private_lines(streams, 5) == [frozenset(), frozenset()]
        assert classify_private_lines(streams, 3) == [
            frozenset({0x2000 >> 3}),
            frozenset({0x2008 >> 3}),
        ]


# ---------------------------------------------------------------------------
# Geometry-resolved streams.
# ---------------------------------------------------------------------------


class TestResolveAddressStreams:
    def test_loads_and_stores_gain_line_and_base(self):
        streams = [[(OP_LOAD, 0x2004), (OP_STORE, 0x2020), (OP_COMPUTE, 7)]]
        n_sets, way_shift, shift = 8, 2, 5
        resolved = resolve_address_streams(streams, shift, n_sets, way_shift)
        line = 0x2004 >> shift
        assert resolved[0][0] == (OP_LOAD, 0x2004, line, (line % n_sets) << way_shift)
        line2 = 0x2020 >> shift
        assert resolved[0][1] == (
            OP_STORE,
            0x2020,
            line2,
            (line2 % n_sets) << way_shift,
        )
        # Non-memory ops pass through by identity.
        assert resolved[0][2] == (OP_COMPUTE, 7)

    def test_byte_address_stays_at_index_one(self):
        # The slow-path replay reads op[1]; resolution must not move it.
        streams = [[(OP_LOAD, 0xABCD)]]
        resolved = resolve_address_streams(streams, 5, 8, 2)
        assert resolved[0][0][1] == 0xABCD

    def test_program_memo_is_per_geometry(self):
        program = CompiledProgram(
            streams=[[(OP_LOAD, 0x40)]], total_ops=1, compiled_ops=1
        )
        a = program.resolved_streams(5, 8, 2)
        b = program.resolved_streams(5, 8, 2)
        c = program.resolved_streams(6, 8, 2)
        assert a is b
        assert c is not a
        assert len(program._resolved) == 2


# ---------------------------------------------------------------------------
# Bounded compile-cache instrumentation.
# ---------------------------------------------------------------------------


def _program(tag):
    return CompiledProgram(
        streams=[[(OP_COMPUTE, tag)]], total_ops=1, compiled_ops=1
    )


class TestOpStreamCacheInstrumentation:
    def test_eviction_counter_and_put_return(self):
        cache = OpStreamCache(maxsize=2)
        assert cache.put("a", _program(1)) is False
        assert cache.put("b", _program(2)) is False
        assert cache.evictions == 0
        assert cache.put("c", _program(3)) is True
        assert cache.evictions == 1
        assert cache.get("a") is None

    def test_stats_snapshot(self):
        cache = OpStreamCache(maxsize=2)
        cache.put("a", _program(1))
        cache.get("a")
        cache.get("missing")
        cache.put("b", _program(2))
        cache.put("c", _program(3))
        assert cache.stats() == {
            "size": 2,
            "maxsize": 2,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
        }

    def test_seed_and_export_round_trip(self):
        cache = OpStreamCache(maxsize=4)
        program = _program(1)
        cache.put("a", program)
        entries = cache.export_entries()
        other = OpStreamCache(maxsize=4)
        for key, value in entries:
            other.seed(key, value)
        assert other.get("a") is not None
        # Seeding neither counts as a hit nor a miss.
        assert other.stats()["misses"] == 0
        assert other.stats()["hits"] == 1  # the get above
