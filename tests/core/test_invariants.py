"""Property-based invariants of the analytical scenarios (seeded random).

These encode the paper's qualitative claims as properties over randomly
drawn operating points, using only the standard library's ``random``:

* At perfect nominal efficiency (``eps_n = 1``), running N cores at the
  iso-performance point never costs more power than one nominal core on
  the paper's technology nodes (130 nm and 65 nm).  This is Figure 1's
  right edge.  (The repo's extrapolated 32 nm node deliberately breaks
  this — static power dominates there — so it is excluded.)
* Normalized power is monotone non-increasing in nominal efficiency at
  fixed N: a more efficient parallelisation never needs more power to
  hold 1-core performance.  Holds on every node.
* Scenario II never does worse than a single nominal core: the 1-core
  configuration always fits the 1-core power budget, so the best
  budget-legal speedup across candidates that include N = 1 is >= 1.
"""

import random

import pytest

from repro.core import AnalyticalChipModel
from repro.core.efficiency import AmdahlEfficiency
from repro.core.scenario1 import PowerOptimizationScenario
from repro.core.scenario2 import PerformanceOptimizationScenario
from repro.errors import ReproError
from repro.tech import technology_by_name

PAPER_NODES = ("130nm", "65nm")
ALL_NODES = ("130nm", "65nm", "32nm")
TOLERANCE = 1e-9
DRAWS = 40


def scenario1(tech_name):
    return PowerOptimizationScenario(AnalyticalChipModel(technology_by_name(tech_name)))


def scenario2(tech_name):
    return PerformanceOptimizationScenario(
        AnalyticalChipModel(technology_by_name(tech_name))
    )


@pytest.mark.parametrize("tech_name", PAPER_NODES)
def test_perfect_efficiency_never_beats_one_core_power(tech_name):
    rng = random.Random(20050320)
    scenario = scenario1(tech_name)
    for _ in range(DRAWS):
        n = rng.randint(2, 32)
        point = scenario.solve(n, 1.0)
        assert point.normalized_power <= 1.0 + TOLERANCE, (
            f"{tech_name}: N={n} at eps_n=1 needs "
            f"{point.normalized_power:.4f}x the 1-core power"
        )


@pytest.mark.parametrize("tech_name", ALL_NODES)
def test_power_is_monotone_non_increasing_in_efficiency(tech_name):
    rng = random.Random(7 * 104729)
    scenario = scenario1(tech_name)
    checked = 0
    for _ in range(DRAWS):
        n = rng.randint(2, 32)
        # Feasibility requires N * eps_n >= 1; draw a sorted ladder of
        # feasible efficiencies and walk it upward.
        lo = 1.0 / n
        ladder = sorted(rng.uniform(lo, 1.0) for _ in range(4))
        try:
            powers = [scenario.solve(n, eps).normalized_power for eps in ladder]
        except ReproError:
            # A rare thermal-runaway point; the property is about the
            # points that converge.
            continue
        for eps_pair, power_pair in zip(
            zip(ladder, ladder[1:]), zip(powers, powers[1:])
        ):
            assert power_pair[1] <= power_pair[0] + TOLERANCE, (
                f"{tech_name}: N={n}, power rose from {power_pair[0]:.6f} "
                f"to {power_pair[1]:.6f} as eps_n went "
                f"{eps_pair[0]:.4f} -> {eps_pair[1]:.4f}"
            )
        checked += 1
    assert checked >= DRAWS // 2  # the skip branch must stay rare


@pytest.mark.parametrize("tech_name", ALL_NODES)
def test_budget_speedup_never_below_one_core(tech_name):
    rng = random.Random(1234)
    scenario = scenario2(tech_name)
    for _ in range(DRAWS):
        serial_fraction = rng.uniform(0.0, 0.9)
        candidates = sorted({1, *(rng.randint(2, 32) for _ in range(4))})
        best = scenario.best_configuration(
            AmdahlEfficiency(serial_fraction), candidates
        )
        assert best.speedup >= 1.0 - TOLERANCE, (
            f"{tech_name}: best speedup {best.speedup:.6f} < 1 with "
            f"serial fraction {serial_fraction:.3f}, candidates {candidates}"
        )


@pytest.mark.parametrize("tech_name", ALL_NODES)
def test_one_nominal_core_is_exactly_the_reference(tech_name):
    point = scenario2(tech_name).solve(1, 1.0)
    assert point.regime == "nominal"
    assert point.speedup == pytest.approx(1.0, abs=TOLERANCE)
