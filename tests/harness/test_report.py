"""Tests for the markdown report generator."""

import pytest

from repro.harness.report import ReportOptions, generate_report


@pytest.fixture(scope="module")
def analytical_report():
    return generate_report(ReportOptions(include_experimental=False))


@pytest.fixture(scope="module")
def full_report():
    return generate_report(
        ReportOptions(
            include_experimental=True,
            workload_scale=0.05,
            scenario1_apps=("FMM",),
            scenario2_apps=("Radix",),
            scenario2_core_counts=(1, 2),
        )
    )


class TestAnalyticalReport:
    def test_has_all_sections(self, analytical_report):
        assert "# repro experiment report" in analytical_report
        assert "## Figure 1" in analytical_report
        assert "## Figure 2" in analytical_report
        assert "## Scenario III" in analytical_report
        assert "## Figure 3" not in analytical_report

    def test_both_technologies(self, analytical_report):
        assert "### 130nm" in analytical_report
        assert "### 65nm" in analytical_report

    def test_tables_well_formed(self, analytical_report):
        for line in analytical_report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_figure1_values_present(self, analytical_report):
        # The eps=0.5 column must resolve (grid alignment).
        fig1 = analytical_report.split("## Figure 2")[0]
        data_lines = [
            row for row in fig1.splitlines() if row.startswith("| 4 ")
        ]
        assert data_lines
        assert "nan" not in data_lines[0]

    def test_figure2_peak_reported(self, analytical_report):
        assert "peak" in analytical_report


class TestFullReport:
    def test_experimental_sections_present(self, full_report):
        assert "## Figure 3" in full_report
        assert "## Figure 4" in full_report
        assert "FMM" in full_report
        assert "Radix" in full_report

    def test_budget_line(self, full_report):
        assert "power budget" in full_report


class TestRobustnessSection:
    def test_clean_report_declares_completion(self, analytical_report):
        assert "## Robustness" in analytical_report
        assert "feasible sweep points completed" in analytical_report
        assert "Degraded run" not in analytical_report

    def test_degraded_report_lists_quarantined_points(self):
        from repro.harness.executor import RetryPolicy, SweepExecutor
        from repro.harness.faults import ALWAYS, FaultPlan, FaultSpec

        executor = SweepExecutor(
            retry=RetryPolicy(
                max_retries=1, backoff_base_s=0.0, backoff_max_s=0.0
            ),
            fault_plan=FaultPlan(
                seed=0,
                faults=(
                    (5, FaultSpec(kind="raise", failing_attempts=ALWAYS)),
                ),
            ),
        )
        report = generate_report(
            ReportOptions(include_experimental=False), executor=executor
        )
        assert "**Degraded run**" in report
        assert "InjectedFault" in report
        # The sabotaged table cell is genuinely absent, and the section
        # says so instead of leaving the reader to diff row counts.
        assert "the tables above omit them" in report
