"""Set-associative caches with LRU replacement and MESI line states.

The cache stores *line states*, not data — this is a timing/energy
simulator.  Lines are identified by their line address (byte address
shifted by the line-size log).  States follow MESI:

* ``MODIFIED`` — exclusive dirty,
* ``EXCLUSIVE`` — exclusive clean,
* ``SHARED`` — possibly replicated, clean,
* invalid lines are simply absent.

Storage layout (kernel v2)
--------------------------
Tags and states live in two flat preallocated lists indexed by
``(set_index << way_shift) | way`` where ``way_shift =
ceil(log2(associativity))``.  Within a set, valid ways form a compact
prefix ordered most- to least-recently used: a hit moves its line to
way 0 (move-to-front), an insert shifts the set down and places the
new line at way 0, and the replacement victim is the last valid way.
This is exactly the insertion-ordered-dict LRU the reference model
used (victim = oldest last-touch), but without any per-access
allocation, and the common case — a hit on the MRU way — costs one
index computation and one comparison.  Ways past the valid prefix
always hold the sentinel tag ``-1``, so full-width scans are safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError

# MESI states (invalid = not present).
SHARED = 1
EXCLUSIVE = 2
MODIFIED = 3

STATE_NAMES = {SHARED: "S", EXCLUSIVE: "E", MODIFIED: "M"}

#: Tag value marking an invalid way (line addresses are non-negative).
INVALID_TAG = -1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache (Table 1 values as defaults elsewhere)."""

    capacity_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if min(self.capacity_bytes, self.line_bytes, self.associativity) <= 0:
            raise ConfigurationError("cache parameters must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ConfigurationError("line size must be a power of two")
        if self.capacity_bytes % (self.line_bytes * self.associativity):
            raise ConfigurationError(
                "capacity must divide into line_bytes * associativity"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.capacity_bytes // (self.line_bytes * self.associativity)

    @property
    def line_shift(self) -> int:
        """log2 of the line size."""
        return self.line_bytes.bit_length() - 1

    @property
    def way_shift(self) -> int:
        """Row stride exponent: ways per set rounded up to a power of two."""
        return (self.associativity - 1).bit_length()


class Cache:
    """One set-associative cache array tracking MESI line states."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_shift
        self._n_sets = config.n_sets
        self._assoc = config.associativity
        self._way_shift = config.way_shift
        # Flat tag/state arrays, one power-of-two-strided row per set.
        # Mutated strictly in place: Core.step_fast captures references
        # to both lists in its window-invariant frame.
        rows = self._n_sets << self._way_shift
        self._tags: List[int] = [INVALID_TAG] * rows
        self._states: List[int] = [0] * rows
        #: Valid ways per set (the compact MRU-ordered prefix length).
        self._fill: List[int] = [0] * self._n_sets
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def line_address(self, byte_address: int) -> int:
        """The line address containing ``byte_address``."""
        return byte_address >> self._line_shift

    # repro: hot
    def lookup(self, line_addr: int, update_lru: bool = True) -> Optional[int]:
        """State of the line, or None if absent.  Counts hit/miss."""
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        tags = self._tags
        w = base
        end = base + self._fill[set_index]
        while w < end:
            if tags[w] == line_addr:
                states = self._states
                state = states[w]
                self.hits += 1
                if update_lru and w != base:
                    while w > base:
                        tags[w] = tags[w - 1]
                        states[w] = states[w - 1]
                        w -= 1
                    tags[base] = line_addr
                    states[base] = state
                return state
            w += 1
        self.misses += 1
        return None

    # repro: hot
    def probe(self, line_addr: int) -> Optional[int]:
        """State of the line without touching LRU or counters (snoops)."""
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        tags = self._tags
        w = base
        end = base + self._fill[set_index]
        while w < end:
            if tags[w] == line_addr:
                return self._states[w]
            w += 1
        return None

    def touch_hit(self, line_addr: int, state: Optional[int] = None) -> None:
        """Record a hit on a *known-resident* line: LRU move + hit count.

        The fast-path dispatch loop (:meth:`repro.sim.cpu.Core.step_fast`)
        performs exactly this sequence inline after probing the line;
        ``state`` optionally rewrites the line's state in the same move
        (the silent E->M store upgrade).  Equivalent to ``lookup`` (plus
        ``set_state`` when ``state`` is given) for a resident line.
        """
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        tags = self._tags
        states = self._states
        w = base
        end = base + self._fill[set_index]
        while w < end and tags[w] != line_addr:
            w += 1
        if w >= end:
            raise KeyError(line_addr)
        if state is None:
            state = states[w]
        while w > base:
            tags[w] = tags[w - 1]
            states[w] = states[w - 1]
            w -= 1
        tags[base] = line_addr
        states[base] = state
        self.hits += 1

    def _find(self, line_addr: int) -> int:
        """Flat index of a resident line, or -1."""
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        tags = self._tags
        for w in range(base, base + self._fill[set_index]):
            if tags[w] == line_addr:
                return w
        return -1

    def set_state(self, line_addr: int, state: int) -> None:
        """Change the state of a resident line (snoop downgrades etc.)."""
        w = self._find(line_addr)
        if w < 0:
            raise ConfigurationError(f"line {line_addr:#x} not resident")
        self._states[w] = state

    def invalidate(self, line_addr: int) -> Optional[int]:
        """Remove a line (snoop invalidation); returns its old state."""
        w = self._find(line_addr)
        if w < 0:
            return None
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        fill = self._fill[set_index]
        tags = self._tags
        states = self._states
        state = states[w]
        last = base + fill - 1
        while w < last:
            tags[w] = tags[w + 1]
            states[w] = states[w + 1]
            w += 1
        tags[last] = INVALID_TAG
        self._fill[set_index] = fill - 1
        return state

    # repro: hot
    def insert(self, line_addr: int, state: int) -> Optional[Tuple[int, int]]:
        """Insert a line at the MRU position, evicting LRU if the set is full.

        Returns ``(victim_line, victim_state)`` if something was evicted,
        else None.  A MODIFIED victim increments the writeback counter.
        """
        set_index = line_addr % self._n_sets
        base = set_index << self._way_shift
        fill = self._fill[set_index]
        tags = self._tags
        states = self._states
        w = base
        end = base + fill
        while w < end and tags[w] != line_addr:
            w += 1
        victim = None
        if w >= end:
            # Not resident: grow the prefix, or replace the LRU way.
            if fill >= self._assoc:
                w = end - 1
                victim_state = states[w]
                victim = (tags[w], victim_state)
                self.evictions += 1
                if victim_state == MODIFIED:
                    self.writebacks += 1
            else:
                w = end
                self._fill[set_index] = fill + 1
        while w > base:
            tags[w] = tags[w - 1]
            states[w] = states[w - 1]
            w -= 1
        tags[base] = line_addr
        states[base] = state
        return victim

    def set_entries(self, set_index: int) -> List[Tuple[int, int]]:
        """``(line, state)`` pairs of one set, MRU first (tests/debug)."""
        base = set_index << self._way_shift
        return [
            (self._tags[base + w], self._states[base + w])
            for w in range(self._fill[set_index])
        ]

    def entries(self) -> List[Tuple[int, int]]:
        """``(line, state)`` pairs of every resident line (tests/debug)."""
        out: List[Tuple[int, int]] = []
        for set_index in range(self._n_sets):
            out.extend(self.set_entries(set_index))
        return out

    def resident_lines(self) -> int:
        """Number of currently valid lines (for occupancy tests)."""
        return sum(self._fill)

    @property
    def accesses(self) -> int:
        """Total lookups (hits + misses)."""
        return self.hits + self.misses

    def miss_rate(self) -> float:
        """Fraction of lookups that missed (0 if never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0
