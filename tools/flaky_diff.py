#!/usr/bin/env python3
"""Flaky-test detector: diff the outcomes of two identical pytest runs.

CI runs the harness suite twice back-to-back and feeds both junit XML
reports here.  A test whose outcome differs between the runs — passed
then failed, failed then passed, or appearing in only one run — is by
definition flaky (same code, same environment, different verdict), and
flaky tests around the fault-tolerance layer are exactly the kind that
erode trust in the chaos/retry assertions.  Exit code 1 names them.

Usage::

    python tools/flaky_diff.py run1.xml run2.xml
"""

from __future__ import annotations

import sys
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict


def outcomes(report: Path) -> Dict[str, str]:
    """Map ``classname::name`` -> outcome for one junit XML report."""
    try:
        root = ET.parse(report).getroot()
    except (ET.ParseError, OSError) as exc:
        raise SystemExit(f"flaky_diff: cannot read {report}: {exc}")
    results: Dict[str, str] = {}
    for case in root.iter("testcase"):
        test_id = f"{case.get('classname', '')}::{case.get('name', '')}"
        outcome = "passed"
        for child in case:
            if child.tag in ("failure", "error"):
                outcome = child.tag
            elif child.tag == "skipped":
                outcome = "skipped"
        results[test_id] = outcome
    return results


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    first, second = outcomes(Path(argv[0])), outcomes(Path(argv[1]))
    if not first or not second:
        print("flaky_diff: a report contains no test cases", file=sys.stderr)
        return 2
    flaky = []
    for test_id in sorted(set(first) | set(second)):
        a = first.get(test_id, "absent")
        b = second.get(test_id, "absent")
        if a != b:
            flaky.append((test_id, a, b))
    if flaky:
        print(f"{len(flaky)} flaky test(s): outcome changed between runs")
        for test_id, a, b in flaky:
            print(f"  {test_id}: {a} -> {b}")
        return 1
    print(f"{len(first)} tests, identical outcomes across both runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
