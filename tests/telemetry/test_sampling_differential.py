"""Counter sampling must observe the simulation, never perturb it.

The sampler's acceptance bar, mirrored from the tracer's
(tests/telemetry/test_equivalence.py) but over adversarial generated
workloads: every simulated counter is bitwise identical with sampling
disabled, enabled, and enabled-but-overflowed (a buffer so small the
run drops most readings — the cap must only affect the timeline, not
the machine).  Reuses the synthetic workload generator and the
full-counter snapshot from the kernel-v2 differential suite.
"""

import pytest
from hypothesis import given, settings

from repro.sim import ChipMultiprocessor
from repro.telemetry.timeseries import (
    CounterSampler,
    channel_values,
    get_sampler,
    set_sampler,
)
from tests.sim.test_kernel_v2_differential import counters, synthetic_workloads


@pytest.fixture(autouse=True)
def restore_global_sampler():
    previous = get_sampler()
    yield
    set_sampler(previous)


def run_with(sampler, threads, config):
    previous = set_sampler(sampler)
    try:
        return ChipMultiprocessor(config, fast_path=False).run(
            [iter(t) for t in threads]
        )
    finally:
        set_sampler(previous)


class TestSamplingDifferential:
    @settings(max_examples=30, deadline=None)
    @given(synthetic_workloads())
    def test_counters_identical_sampling_off_on_and_overflowed(self, case):
        threads, config = case
        baseline = run_with(CounterSampler(enabled=False), threads, config)

        sampler = CounterSampler(enabled=True, max_samples=64)
        sampled = run_with(sampler, threads, config)
        assert counters(baseline) == counters(sampled)
        # The window epilogue deposited the sim.* channels.
        grouped = channel_values(sampler.drain_records())
        assert "sim.ipc" in grouped and "sim.l1_miss_rate" in grouped

        tiny = CounterSampler(enabled=True, max_samples=2)
        overflowed = run_with(tiny, threads, config)
        assert counters(baseline) == counters(overflowed)
        assert tiny.count == 2
        assert tiny.dropped > 0  # one window emits >2 channels

    @settings(max_examples=15, deadline=None)
    @given(synthetic_workloads())
    def test_sampled_values_are_reproducible_across_reruns(self, case):
        """Two sampled runs of one workload read identical counter values.

        Timestamps differ run to run (wall clock); the sampled *values*
        come from the deterministic simulation, so the per-channel value
        series must match exactly.
        """
        threads, config = case
        first = CounterSampler(enabled=True, max_samples=64)
        run_with(first, threads, config)
        second = CounterSampler(enabled=True, max_samples=64)
        run_with(second, threads, config)
        assert channel_values(first.drain_records()) == channel_values(
            second.drain_records()
        )
