"""Nominal-V/f profiling (the first step of Sections 4.1 and 4.2).

A profile runs an application at nominal voltage and frequency on every
supported core count, recording execution time and power.  From it come
the application's nominal parallel efficiency curve (Eq. 6), its nominal
speedups, and the single-core power baseline the Figure 3 normalisations
use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.harness.context import ExperimentContext
from repro.harness.executor import SweepExecutor
from repro.power.chippower import ChipPowerResult
from repro.sim.cmp import KernelStats, SimulationResult
from repro.workloads.base import WorkloadModel, WorkloadSpec


@dataclass
class KernelAggregate:
    """Kernel profiling accumulated across many simulation runs.

    :meth:`ExperimentContext.run <repro.harness.context.ExperimentContext.run>`
    feeds every run's :class:`~repro.sim.cmp.KernelStats` into the
    context's aggregate, so a whole figure pipeline can report one
    ops/sec + fast-path summary (the ``--profile`` CLI flag).  Runs are
    counted wherever they happened: simulations fanned out to worker
    processes come back as
    :class:`~repro.telemetry.record.KernelRecord` telemetry through the
    executor's outcome channel
    (:meth:`~repro.harness.executor.SweepExecutor.fold_telemetry_into`),
    and points served from the result cache replay the original
    evaluation's records, counted separately as :attr:`cached_runs`.
    """

    #: Simulations executed for this aggregate (any process).
    runs: int = 0
    #: Simulations replayed from the result cache; their op counters are
    #: included in the totals below, but their wall time reflects the
    #: *original* evaluation, not this invocation.
    cached_runs: int = 0
    total_ops: int = 0
    fast_path_ops: int = 0
    slow_path_ops: int = 0
    barrier_ops: int = 0
    sim_wall_s: float = 0.0
    compile_s: float = 0.0
    compile_cache_hits: int = 0
    #: Runs whose compile bumped an older program out of the bounded
    #: stream cache; a nonzero count on a repetitive campaign means the
    #: cache is too small for its working set.
    compile_cache_evictions: int = 0
    subsystem_s: Dict[str, float] = field(default_factory=dict)

    def add(self, kernel: KernelStats) -> None:
        """Fold one in-process run's kernel stats into the aggregate."""
        self.add_record(kernel)

    def add_record(self, kernel, cached: bool = False) -> None:
        """Fold one run into the aggregate.

        ``kernel`` is any :class:`~repro.sim.cmp.KernelStats`-shaped
        object, including the flattened
        :class:`~repro.telemetry.record.KernelRecord` that crosses
        process boundaries (its ``subsystem_s`` is a tuple of pairs
        rather than a dict).  ``cached`` marks a cache replay.
        """
        if cached:
            self.cached_runs += 1
        else:
            self.runs += 1
        self.total_ops += kernel.total_ops
        self.fast_path_ops += kernel.fast_path_ops
        self.slow_path_ops += kernel.slow_path_ops
        self.barrier_ops += kernel.barrier_ops
        self.sim_wall_s += kernel.sim_wall_s
        self.compile_s += kernel.compile_s
        self.compile_cache_hits += 1 if kernel.compile_cache_hit else 0
        self.compile_cache_evictions += 1 if kernel.compile_cache_evicted else 0
        subsystems = kernel.subsystem_s
        if isinstance(subsystems, dict):
            subsystems = subsystems.items()
        # Sorted fold: parallel workers hand records back in completion
        # order, so accumulate alphabetically to keep the float totals
        # (and the dict's insertion order) independent of scheduling.
        for name, seconds in sorted(subsystems):
            self.subsystem_s[name] = self.subsystem_s.get(name, 0.0) + seconds

    @property
    def ops_per_sec(self) -> float:
        """Aggregate simulated ops per host second in the kernel loop."""
        return self.total_ops / self.sim_wall_s if self.sim_wall_s > 0 else 0.0

    @property
    def fast_path_ratio(self) -> float:
        """Fraction of all ops the fast path resolved."""
        return self.fast_path_ops / self.total_ops if self.total_ops else 0.0

    def summary(self) -> str:
        """One human-readable line for the CLI's ``--profile`` output."""
        counted = self.runs + self.cached_runs
        if not counted:
            return "[kernel] no simulations ran"
        cached = f" (+{self.cached_runs} cached)" if self.cached_runs else ""
        line = (
            f"[kernel] {self.runs} runs{cached}, {self.total_ops:,} ops at "
            f"{self.ops_per_sec:,.0f} ops/s, "
            f"fast-path {100.0 * self.fast_path_ratio:.1f}%, "
            f"compile {self.compile_s:.2f}s "
            f"({self.compile_cache_hits}/{counted} stream-cache hits)"
        )
        if self.compile_cache_evictions:
            line += (
                f", {self.compile_cache_evictions} stream-cache evictions"
            )
        if self.subsystem_s:
            parts = ", ".join(
                f"{name} {seconds:.2f}s"
                for name, seconds in sorted(self.subsystem_s.items())
            )
            line += f"\n[kernel] slow-path time: {parts}"
        return line


@dataclass(frozen=True)
class ProfileEntry:
    """One (application, N) point at nominal V/f."""

    n: int
    result: SimulationResult
    power: ChipPowerResult

    @property
    def execution_time_ps(self) -> int:
        """Measured execution time (picoseconds)."""
        return self.result.execution_time_ps


@dataclass
class ApplicationProfile:
    """An application's nominal-V/f characterisation."""

    app: str
    entries: Dict[int, ProfileEntry]

    def core_counts(self) -> List[int]:
        """Profiled core counts, ascending."""
        return sorted(self.entries)

    def nominal_efficiency(self, n: int) -> float:
        """Eq. 6 from measured times: ``T1 / (N * TN)``."""
        self._require(1)
        self._require(n)
        t1 = self.entries[1].execution_time_ps
        tn = self.entries[n].execution_time_ps
        return t1 / (n * tn)

    def nominal_speedup(self, n: int) -> float:
        """``T1 / TN`` at nominal V/f."""
        self._require(1)
        self._require(n)
        return self.entries[1].execution_time_ps / self.entries[n].execution_time_ps

    def _require(self, n: int) -> None:
        if n not in self.entries:
            raise ConfigurationError(f"{self.app}: no profile entry for N={n}")


@dataclass(frozen=True)
class SimPointRow:
    """The flat, cacheable summary of one simulated operating point.

    This is the unit the :class:`~repro.harness.executor.SweepExecutor`
    memoizes: every field is a JSON-representable scalar derived from
    one ``context.run`` call, and together they cover what the
    Scenario I/II pipelines, the characterization command, and the
    design-space sweeps read off a run.
    """

    app: str
    n: int
    frequency_hz: float
    voltage: float
    execution_time_ps: int
    total_power_w: float
    core_power_density_w_m2: float
    average_temperature_c: float
    average_cpi: float
    l1_miss_rate: float
    memory_stall_fraction: float
    bus_utilisation: float


@dataclass(frozen=True)
class SimPointTask:
    """One (workload, N, V/f) simulation request.

    ``frequency_hz``/``voltage`` of ``None`` mean "nominal" and "look
    the V/f table up", exactly like
    :meth:`~repro.harness.context.ExperimentContext.run`.
    """

    spec: WorkloadSpec
    n: int
    frequency_hz: Optional[float] = None
    voltage: Optional[float] = None


def simulate_point(context: ExperimentContext, task: SimPointTask) -> SimPointRow:
    """Worker: simulate one operating point and flatten the outcome."""
    model = WorkloadModel(task.spec)
    result, power = context.run(model, task.n, task.frequency_hz, task.voltage)
    return SimPointRow(
        app=task.spec.name,
        n=task.n,
        frequency_hz=result.config.frequency_hz,
        voltage=result.config.voltage,
        execution_time_ps=result.execution_time_ps,
        total_power_w=power.total_w,
        core_power_density_w_m2=power.core_power_density_w_m2,
        average_temperature_c=power.average_temperature_c,
        average_cpi=result.average_cpi,
        l1_miss_rate=result.l1_miss_rate(),
        memory_stall_fraction=result.memory_stall_fraction(),
        bus_utilisation=result.bus.utilisation(result.execution_time_ps),
    )


def sim_point_key(context: ExperimentContext, task: SimPointTask) -> dict:
    """The cache-key config of one :func:`simulate_point` evaluation."""
    return {"kind": "simpoint", "context": context.fingerprint(), "task": task}


def precompile_hook(context: ExperimentContext):
    """A :meth:`SweepExecutor.map` ``precompile`` hook for (spec, N) tasks.

    Returns a callable the executor invokes in the coordinator with the
    points its result cache could not satisfy; each distinct
    ``(task.spec, task.n)`` pair is compiled once into the process-wide
    :data:`repro.sim.ops.stream_cache` (at the context's workload
    scale), so forked workers inherit warm streams and a fully cached
    sweep compiles nothing.
    """

    def warm(points) -> None:
        seen = set()
        for task in points:
            pair = (task.spec, task.n)
            if pair not in seen:
                seen.add(pair)
                context.precompile(WorkloadModel(task.spec), task.n)

    return warm


def profile_rows(
    context: ExperimentContext,
    model: WorkloadModel,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, SimPointRow]:
    """Nominal-V/f profile of one application as flat, cacheable rows.

    The parallel-and-memoizing counterpart of
    :func:`profile_application`: points fan out across the executor's
    workers, and on a warm cache no simulation runs at all.
    """
    executor = executor if executor is not None else SweepExecutor()
    supported = model.supported_thread_counts(core_counts)
    if 1 not in supported:
        raise ConfigurationError(f"{model.name}: the 1-core baseline is required")
    tasks = [SimPointTask(spec=model.spec, n=n) for n in supported]
    rows = executor.map_values(
        partial(simulate_point, context),
        tasks,
        key_configs=[sim_point_key(context, task) for task in tasks],
        precompile=precompile_hook(context),
    )
    return {row.n: row for row in rows}


def profile_application(
    context: ExperimentContext,
    model: WorkloadModel,
    core_counts: Sequence[int] = (1, 2, 4, 8, 16),
) -> ApplicationProfile:
    """Profile one application at nominal V/f over its supported counts."""
    entries: Dict[int, ProfileEntry] = {}
    for n in model.supported_thread_counts(core_counts):
        result, power = context.run(model, n)
        entries[n] = ProfileEntry(n=n, result=result, power=power)
    if 1 not in entries:
        raise ConfigurationError(f"{model.name}: the 1-core baseline is required")
    return ApplicationProfile(app=model.name, entries=entries)
