"""Full-chip power integration: counters -> watts -> temperature -> watts.

Given one :class:`~repro.sim.cmp.SimulationResult`, this module produces
the quantities Figure 3 plots:

* total chip power (dynamic + static, L2 included),
* average power density over the *active* cores (L2 excluded,
  Section 3.3),
* average operating temperature over the active cores.

Static power depends on temperature and temperature on power, so the
evaluation iterates the HotSpot model to a fixed point, exactly like the
analytical scenarios do.  All raw Wattch wattages are renormalised
through the :class:`~repro.power.calibration.PowerCalibration` first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConvergenceError
from repro.power.calibration import PowerCalibration
from repro.power.static import StaticPowerModel
from repro.power.wattch import WattchModel
from repro.sim.cmp import SimulationResult
from repro.telemetry.timeseries import get_sampler
from repro.telemetry.trace import get_tracer
from repro.thermal.hotspot import HotSpotModel, ThermalResult
from repro.units import kelvin_to_celsius


@dataclass(frozen=True)
class ChipPowerResult:
    """Power/thermal outcome of one simulation run."""

    dynamic_w: float
    static_w: float
    power_map: Dict[str, float]
    thermal: ThermalResult
    #: Average temperature over the ACTIVE cores (Celsius).
    average_temperature_c: float
    #: Total active-core power over active-core area (W/m^2), L2 excluded.
    core_power_density_w_m2: float
    #: Measured execution time of the run the power was averaged over (s).
    execution_time_s: float = 0.0

    @property
    def total_w(self) -> float:
        """Total chip power (dynamic + static, L2 included)."""
        return self.dynamic_w + self.static_w

    @property
    def static_fraction(self) -> float:
        """Share of total power that is static."""
        return self.static_w / self.total_w if self.total_w else 0.0

    @property
    def energy_j(self) -> float:
        """Total energy of the run (joules) — the metric the paper's
        follow-on energy-efficiency literature optimises."""
        return self.total_w * self.execution_time_s

    @property
    def energy_delay_j_s(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy_j * self.execution_time_s


class ChipPowerModel:
    """Evaluates chip power and temperature for simulation results."""

    def __init__(
        self,
        thermal: HotSpotModel,
        wattch: WattchModel,
        static_model: StaticPowerModel,
        calibration: PowerCalibration,
    ) -> None:
        self.thermal = thermal
        self.wattch = wattch
        self.static_model = static_model
        self.calibration = calibration

    def evaluate(
        self,
        result: SimulationResult,
        tol_c: float = 1e-4,
        max_iterations: int = 200,
    ) -> ChipPowerResult:
        """Resolve the power/temperature fixed point for one run."""
        dynamic_map = {
            name: self.calibration.renormalise(watts)
            for name, watts in self.wattch.dynamic_power_map(result).items()
        }
        active_blocks = [name for name in dynamic_map if name != "l2"]
        floorplan = self.thermal.floorplan

        # Fixed point: temperatures determine static power determines
        # temperatures.  Start from the all-dynamic map.
        temperatures_c: Dict[str, float] = {name: 60.0 for name in dynamic_map}
        thermal_result: Optional[ThermalResult] = None
        static_map: Dict[str, float] = {}
        sampler = get_sampler()
        with get_tracer().span("power.solve", blocks=len(dynamic_map)) as span:
            iterations = 0
            for _ in range(max_iterations):
                iterations += 1
                static_map = {
                    name: self.static_model.static_power_w(
                        dynamic_map[name], temperatures_c[name]
                    )
                    for name in dynamic_map
                }
                total_map = {
                    name: dynamic_map[name] + static_map[name]
                    for name in dynamic_map
                }
                thermal_result = self.thermal.solve(total_map)
                updated = {
                    name: kelvin_to_celsius(
                        thermal_result.block_temperatures_k[name]
                    )
                    for name in dynamic_map
                }
                shift = max(
                    abs(updated[name] - temperatures_c[name])
                    for name in dynamic_map
                )
                temperatures_c = updated
                sampler.sample("power.solver_shift_c", shift)
                if shift < tol_c:
                    break
            else:
                raise ConvergenceError(
                    "chip power/temperature fixed point diverged"
                )
            span.set(iterations=iterations)

        power_map = {
            name: dynamic_map[name] + static_map[name] for name in dynamic_map
        }
        active_area = sum(floorplan.block(name).area for name in active_blocks)
        active_power = sum(power_map[name] for name in active_blocks)
        avg_temp = sum(
            temperatures_c[name] * floorplan.block(name).area
            for name in active_blocks
        ) / active_area

        outcome = ChipPowerResult(
            # repro: allow[DET-FLOAT-SUM] maps are built in fixed block order
            dynamic_w=sum(dynamic_map.values()),
            # repro: allow[DET-FLOAT-SUM] maps are built in fixed block order
            static_w=sum(static_map.values()),
            power_map=power_map,
            thermal=thermal_result,
            average_temperature_c=avg_temp,
            core_power_density_w_m2=active_power / active_area,
            execution_time_s=result.execution_time_s,
        )
        _sample_power_channels(outcome, dynamic_map, static_map)
        return outcome


def _sample_power_channels(
    outcome: ChipPowerResult,
    dynamic_map: Dict[str, float],
    static_map: Dict[str, float],
) -> None:
    """Deposit the ``power.*`` channels after one fixed-point solve.

    Read-only over the finished result; per-block channels carry the
    floorplan block name (``power.core0.dynamic_w``) so Perfetto renders
    one counter track per block.
    """
    sampler = get_sampler()
    if not sampler.enabled:
        return
    sampler.sample("power.dynamic_w", outcome.dynamic_w)
    sampler.sample("power.static_w", outcome.static_w)
    sampler.sample("power.total_w", outcome.total_w)
    sampler.sample("power.temperature_c", outcome.average_temperature_c)
    sampler.sample("power.peak_temperature_c", outcome.thermal.peak_celsius())
    for name in dynamic_map:
        sampler.sample(f"power.{name}.dynamic_w", dynamic_map[name])
        sampler.sample(f"power.{name}.static_w", static_map[name])
