"""Tests for the core timing model and the top-level CMP scheduler."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.clock import ClockDomain
from repro.sim.cpu import CoreTimingConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE


def run(threads, config=None, timing=None, warmup=0):
    chip = ChipMultiprocessor(config or CMPConfig(n_cores=16))
    return chip.run(threads, timing or CoreTimingConfig(), warmup_barriers=warmup)


class TestCoreTimingConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CoreTimingConfig(base_cpi=0.0)
        with pytest.raises(ConfigurationError):
            CoreTimingConfig(icache_miss_rate=1.5)
        with pytest.raises(ConfigurationError):
            CoreTimingConfig(memory_parallelism=0.5)


class TestComputeTiming:
    def test_compute_burst_duration(self):
        timing = CoreTimingConfig(base_cpi=1.0, icache_miss_rate=0.0)
        result = run([[(OP_COMPUTE, 1000)]], timing=timing)
        clock = ClockDomain(result.config.frequency_hz)
        assert result.execution_time_ps == clock.cycles_to_ps(1000)
        assert result.total_instructions == 1000

    def test_cpi_scales_duration(self):
        slow = run([[(OP_COMPUTE, 1000)]], timing=CoreTimingConfig(base_cpi=2.0, icache_miss_rate=0.0))
        fast = run([[(OP_COMPUTE, 1000)]], timing=CoreTimingConfig(base_cpi=0.5, icache_miss_rate=0.0))
        assert slow.execution_time_ps == 4 * fast.execution_time_ps

    def test_icache_misses_add_stall(self):
        clean = run([[(OP_COMPUTE, 10_000)]], timing=CoreTimingConfig(icache_miss_rate=0.0))
        missy = run([[(OP_COMPUTE, 10_000)]], timing=CoreTimingConfig(icache_miss_rate=0.01))
        assert missy.execution_time_ps > clean.execution_time_ps

    def test_dvfs_slows_compute(self):
        config_slow = CMPConfig(frequency_hz=1.6e9, voltage=0.8)
        fast = run([[(OP_COMPUTE, 10_000)]])
        slow = run([[(OP_COMPUTE, 10_000)]], config=config_slow)
        assert slow.execution_time_ps == pytest.approx(2 * fast.execution_time_ps, rel=0.01)


class TestMemoryTiming:
    def test_memory_bound_thread_slower(self):
        compute = [(OP_COMPUTE, 100)] * 50
        # Strided loads over a large region: mostly misses to memory.
        memory = [(OP_LOAD, i * 4096) for i in range(50)]
        t_compute = run([compute]).execution_time_ps
        t_memory = run([memory]).execution_time_ps
        assert t_memory > t_compute

    def test_memory_stall_fraction_reported(self):
        memory = [(OP_LOAD, i * 4096) for i in range(100)]
        result = run([memory])
        assert result.memory_stall_fraction() > 0.5

    def test_stores_counted(self):
        result = run([[(OP_STORE, 64), (OP_LOAD, 128)]])
        assert result.core_stats[0].stores == 1
        assert result.core_stats[0].loads == 1

    def test_dvfs_narrows_memory_gap(self):
        # The Section 4.1 anomaly: memory work loses fewer cycles at low f.
        memory = [(OP_LOAD, i * 4096) for i in range(200)]
        fast = run([list(memory)])
        slow = run([list(memory)], config=CMPConfig(frequency_hz=200e6, voltage=0.62))
        ratio = slow.execution_time_ps / fast.execution_time_ps
        assert ratio < 16.0  # far less than the 16x clock slowdown
        assert ratio < 3.0


class TestSynchronisation:
    def test_barrier_aligns_threads(self):
        threads = [
            [(OP_COMPUTE, 100), (OP_BARRIER, 0), (OP_COMPUTE, 100)],
            [(OP_COMPUTE, 10_000), (OP_BARRIER, 0), (OP_COMPUTE, 100)],
        ]
        result = run(threads)
        fast, slow = result.core_stats
        # The fast thread waited for the slow one.
        assert fast.sync_wait_ps > 0
        assert result.barriers == 1

    def test_unbalanced_barrier_deadlocks_cleanly(self):
        threads = [
            [(OP_BARRIER, 0)],
            [(OP_COMPUTE, 10)],  # never reaches the barrier
        ]
        with pytest.raises(SimulationError, match="deadlock"):
            run(threads)

    def test_critical_sections_serialise(self):
        section = (OP_CRITICAL, 7, 1000, 0x999000)
        threads = [[section] for _ in range(4)]
        result = run(threads)
        assert result.lock_acquires == 4
        assert result.lock_contended >= 2
        # Four serialised 1000-instruction sections take at least 4x one.
        single = run([[section]])
        assert result.execution_time_ps > 3 * single.execution_time_ps

    def test_distinct_locks_do_not_serialise(self):
        threads = [[(OP_CRITICAL, i, 1000, 0x999000 + 4096 * i)] for i in range(4)]
        result = run(threads)
        assert result.lock_contended == 0


class TestScheduler:
    def test_thread_count_validation(self):
        with pytest.raises(ConfigurationError):
            run([])
        with pytest.raises(ConfigurationError):
            run([[(OP_COMPUTE, 1)]] * 17)

    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            run([[(99, 0)]])

    def test_execution_time_is_last_finisher(self):
        threads = [
            [(OP_COMPUTE, 100)],
            [(OP_COMPUTE, 50_000)],
        ]
        result = run(threads)
        assert result.execution_time_ps == max(
            s.end_time_ps for s in result.core_stats
        )

    def test_determinism(self):
        def threads():
            return [
                [(OP_COMPUTE, 50), (OP_LOAD, i * 1000 + j * 64)]
                for i, j in ((0, 1), (1, 2))
            ]

        a = run(threads())
        b = run(threads())
        assert a.execution_time_ps == b.execution_time_ps
        assert a.coherence.l1_misses == b.coherence.l1_misses


class TestWarmup:
    def test_warmup_excluded_from_time(self):
        threads = [
            [(OP_COMPUTE, 10_000), (OP_BARRIER, 0), (OP_COMPUTE, 1000)],
        ]
        warm = run(threads, warmup=1)
        clock = ClockDomain(warm.config.frequency_hz)
        # Only the post-barrier 1000 instructions are measured.
        expected = clock.cycles_to_ps(1000 * 0.8)
        assert warm.execution_time_ps == pytest.approx(expected, rel=0.02)

    def test_warmup_resets_counters(self):
        threads = [
            [(OP_LOAD, 0), (OP_BARRIER, 0), (OP_COMPUTE, 100)],
        ]
        warm = run(threads, warmup=1)
        assert warm.core_stats[0].loads == 0
        assert warm.total_instructions == 100

    def test_warmup_keeps_caches_warm(self):
        threads = [
            [(OP_LOAD, 0x5000), (OP_BARRIER, 0), (OP_LOAD, 0x5000)],
        ]
        warm = run(threads, warmup=1)
        # The measured load hits thanks to the warmup access.
        assert warm.coherence.l1_hits == 1
        assert warm.coherence.l1_misses == 0


class TestCMPConfig:
    def test_with_operating_point(self):
        base = CMPConfig()
        scaled = base.with_operating_point(1.6e9, 0.8)
        assert scaled.frequency_hz == 1.6e9
        assert scaled.voltage == 0.8
        assert scaled.n_cores == base.n_cores
        assert scaled.l1_config == base.l1_config

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CMPConfig(n_cores=0)
        with pytest.raises(ConfigurationError):
            CMPConfig(frequency_hz=-1.0)


class TestLockTable:
    """Direct contention-accounting coverage for the shared lock table."""

    def test_uncontended_acquire_granted_immediately(self):
        from repro.sim.cpu import LockTable

        locks = LockTable()
        assert locks.acquire(1, 1000) == 1000
        assert locks.acquires == 1
        assert locks.contended_acquires == 0

    def test_contended_acquire_waits_until_release(self):
        from repro.sim.cpu import LockTable

        locks = LockTable()
        locks.acquire(1, 1000)
        locks.release(1, 5000)
        grant = locks.acquire(1, 2000)  # requested while held
        assert grant == 5000
        assert locks.acquires == 2
        assert locks.contended_acquires == 1

    def test_acquire_after_release_time_is_uncontended(self):
        from repro.sim.cpu import LockTable

        locks = LockTable()
        locks.acquire(1, 0)
        locks.release(1, 100)
        assert locks.acquire(1, 200) == 200
        assert locks.contended_acquires == 0

    def test_request_exactly_at_release_is_uncontended(self):
        from repro.sim.cpu import LockTable

        locks = LockTable()
        locks.acquire(1, 0)
        locks.release(1, 100)
        assert locks.acquire(1, 100) == 100
        assert locks.contended_acquires == 0

    def test_distinct_locks_never_contend(self):
        from repro.sim.cpu import LockTable

        locks = LockTable()
        locks.acquire(1, 0)
        locks.release(1, 10_000)
        assert locks.acquire(2, 5) == 5
        assert locks.contended_acquires == 0

    def test_contention_surfaces_in_simulation_result(self):
        threads = [
            [(OP_CRITICAL, 9, 1000, 0x100)],
            [(OP_CRITICAL, 9, 1000, 0x100)],
        ]
        result = run(threads, config=CMPConfig(n_cores=2))
        assert result.lock_acquires == 2
        assert result.lock_contended == 1
