"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.tech == "65nm"

    def test_fig3_apps_and_scale(self):
        args = build_parser().parse_args(["fig3", "--apps", "FMM", "--scale", "0.1"])
        assert args.apps == ["FMM"]
        assert args.scale == 0.1

    def test_rejects_unknown_tech(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig1", "--tech", "7nm"])

    def test_executor_flags_on_sweep_commands(self):
        for command in ("fig1", "fig2", "fig3", "fig4", "characterize"):
            args = build_parser().parse_args(
                [command, "--jobs", "4", "--cache", "/tmp/c", "--no-cache"]
            )
            assert args.jobs == 4
            assert args.cache == "/tmp/c"
            assert args.no_cache is True

    def test_rejects_non_positive_or_non_integer_jobs(self):
        for bad in ("0", "-2", "xyz"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["fig2", "--jobs", bad])

    def test_profile_flag_on_every_sweep(self):
        for command in ("fig1", "fig2", "fig3", "fig4", "characterize"):
            assert build_parser().parse_args([command, "--profile"]).profile
            assert not build_parser().parse_args([command]).profile

    def test_telemetry_dir_flag_on_every_sweep(self):
        for command in ("fig1", "fig2", "fig3", "fig4", "characterize"):
            args = build_parser().parse_args([command, "--telemetry-dir", "t"])
            assert args.telemetry_dir == "t"
            assert build_parser().parse_args([command]).telemetry_dir is None

    def test_trace_subcommands(self):
        args = build_parser().parse_args(
            ["trace", "export", "--telemetry-dir", "t", "--output", "o.json"]
        )
        assert (args.trace_command, args.output, args.run) == (
            "export",
            "o.json",
            None,
        )
        args = build_parser().parse_args(
            ["trace", "validate", "--telemetry-dir", "t", "--run", "r1"]
        )
        assert (args.trace_command, args.run) == ("validate", "r1")
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "export"])  # DIR required

    def test_trace_timeline_flags(self):
        args = build_parser().parse_args(
            [
                "trace", "timeline", "--telemetry-dir", "t",
                "--channel", "sim.ipc", "--channel", "power.total_w",
                "--width", "20",
            ]
        )
        assert args.trace_command == "timeline"
        assert args.channel == ["sim.ipc", "power.total_w"]
        assert args.width == 20
        defaults = build_parser().parse_args(
            ["trace", "timeline", "--telemetry-dir", "t"]
        )
        assert defaults.channel is None and defaults.width == 60


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "244.4 mm^2" in out
        assert "Water-Sp" in out

    def test_fig1(self, capsys):
        assert main(["fig1", "--tech", "130nm"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1 (130nm)" in out
        assert "P_N / P_1" in out

    def test_fig2(self, capsys):
        assert main(["fig2"]) == 0
        out = capsys.readouterr().out
        assert "peak:" in out
        assert "frequency-only" in out

    def test_fig3_tiny(self, capsys):
        assert main(["fig3", "--apps", "Barnes", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Barnes" in out
        assert "norm-P" in out
        assert "[kernel]" not in out  # only printed under --profile

    def test_fig3_profile_prints_kernel_summary(self, capsys):
        assert main(
            ["fig3", "--apps", "Barnes", "--scale", "0.05", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "[kernel]" in out
        assert "ops/s" in out
        assert "fast-path" in out

    def test_fig4_tiny(self, capsys):
        assert main(["fig4", "--apps", "Radix", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Radix" in out
        assert "nominal" in out

    def test_report_analytical(self, capsys, tmp_path):
        output = tmp_path / "report.md"
        assert main(["report", "--analytical-only", "--output", str(output)]) == 0
        document = output.read_text()
        assert "## Figure 1" in document
        assert "## Figure 2" in document
        assert "wrote" in capsys.readouterr().out

    def test_fig2_with_cache_runs_warm_second_time(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["fig2", "--cache", str(cache)]) == 0
        cold = capsys.readouterr().out
        assert "[executor] 32 evaluated, 0 cache hits" in cold

        assert main(["fig2", "--cache", str(cache)]) == 0
        warm = capsys.readouterr().out
        assert "[executor] 0 evaluated, 32 cache hits" in warm
        # The cache changes how rows are obtained, never what they are.
        assert warm == cold.replace(
            "[executor] 32 evaluated, 0 cache hits",
            "[executor] 0 evaluated, 32 cache hits",
        )

    def test_no_cache_disables_a_configured_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(["fig2", "--cache", str(cache), "--no-cache"]) == 0
        capsys.readouterr()
        assert not cache.exists()

    def test_characterize_structure(self):
        # Only parse-check: the full characterisation is exercised by
        # the example; here just confirm the argument wiring.
        args = build_parser().parse_args(["characterize", "--scale", "0.2"])
        assert args.scale == 0.2

    def test_verify_arguments(self):
        args = build_parser().parse_args(["verify", "--analytical-only"])
        assert args.analytical_only
        args = build_parser().parse_args(["verify", "--scale", "0.3"])
        assert args.scale == 0.3


class TestTraceTimelineCommand:
    @pytest.fixture(autouse=True)
    def restore_telemetry_state(self):
        """--telemetry-dir enables tracing/sampling; undo it afterwards."""
        from repro.telemetry.timeseries import get_sampler, set_sampler
        from repro.telemetry.trace import get_tracer, set_tracer

        sampler, tracer = get_sampler(), get_tracer()
        yield
        set_sampler(sampler)
        set_tracer(tracer)

    def test_timeline_renders_sparklines_and_alerts(self, capsys, tmp_path):
        assert (
            main(
                [
                    "fig3", "--apps", "Barnes", "--scale", "0.05",
                    "--telemetry-dir", str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()

        assert main(["trace", "timeline", "--telemetry-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "sim.ipc" in out and "power.total_w" in out
        assert "n=" in out
        assert "alerts" in out

        # --channel filters to the named series.
        assert (
            main(
                [
                    "trace", "timeline", "--telemetry-dir", str(tmp_path),
                    "--channel", "sim.ipc",
                ]
            )
            == 0
        )
        filtered = capsys.readouterr().out
        assert "sim.ipc" in filtered and "power.total_w" not in filtered

        # Unknown channels fail with the sampled list in the message.
        assert (
            main(
                [
                    "trace", "timeline", "--telemetry-dir", str(tmp_path),
                    "--channel", "no.such.channel",
                ]
            )
            == 1
        )
        assert "no samples for channel(s)" in capsys.readouterr().err

        # validate counts the timeline; export carries counter tracks.
        assert main(["trace", "validate", "--telemetry-dir", str(tmp_path)]) == 0
        assert "timeline samples" in capsys.readouterr().out
        output = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace", "export", "--telemetry-dir", str(tmp_path),
                    "--output", str(output),
                ]
            )
            == 0
        )
        capsys.readouterr()
        import json

        events = json.loads(output.read_text())["traceEvents"]
        assert any(e["ph"] == "C" for e in events)

    def test_timeline_without_sampling_says_so(self, capsys, tmp_path):
        from repro.telemetry.manifest import TelemetryRun

        TelemetryRun(tmp_path, command="fig3").finalize()
        assert main(["trace", "timeline", "--telemetry-dir", str(tmp_path)]) == 0
        assert "no timeline samples" in capsys.readouterr().out
