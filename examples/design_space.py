#!/usr/bin/env python
"""Design-space sensitivity: how robust are the paper's effects?

Sweeps three architectural parameters around the Table 1 machine — the
shared-L2 capacity, the interconnect (the paper's bus versus banked
crossbars), and the DRAM latency — and shows how a memory-intense
application's efficiency and stall behaviour respond.  Echoes the
design-space studies (Huh et al., Ekman & Stenström) the paper's related
work discusses.

Run:  python examples/design_space.py [app] [n_threads]
      (defaults: Ocean 8)
"""

import sys

from repro.harness import render_table
from repro.harness.asciichart import bar_chart
from repro.harness.designspace import (
    interconnect_variants,
    l2_capacity_variants,
    memory_latency_variants,
    sweep_design_parameter,
)
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


def show(title: str, points) -> None:
    print(
        render_table(
            ["variant", "eps_n", "time (us)", "L1 miss", "mem-stall", "ic util"],
            [
                [
                    p.label,
                    p.nominal_efficiency,
                    p.execution_time_s * 1e6,
                    p.l1_miss_rate,
                    p.memory_stall_fraction,
                    p.bus_utilisation,
                ]
                for p in points
            ],
            title=title,
        )
    )
    print()
    print(bar_chart({p.label: p.nominal_efficiency for p in points}, reference=1.0))
    print()


def main(argv) -> None:
    app = argv[1] if len(argv) > 1 else "Ocean"
    n_threads = int(argv[2]) if len(argv) > 2 else 8
    model = WorkloadModel(workload_by_name(app).spec.scaled(0.25))

    print(f"Sweeping the machine around Table 1 for {app} @ {n_threads} cores\n")
    show(
        "Shared L2 capacity (Table 1: 4 MB)",
        sweep_design_parameter(model, l2_capacity_variants(), n_threads),
    )
    show(
        "Interconnect (Table 1: shared bus)",
        sweep_design_parameter(model, interconnect_variants(), n_threads),
    )
    show(
        "DRAM round trip (Table 1: 75 ns, DVFS-independent)",
        sweep_design_parameter(model, memory_latency_variants(), n_threads),
    )


if __name__ == "__main__":
    main(sys.argv)
