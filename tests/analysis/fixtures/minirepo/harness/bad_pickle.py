"""Seeded picklability violations (analyzer fixture; never imported).

``PointOutcome`` is one of the analyzer's configured pickle roots, so
everything its field annotations mention becomes reachable.
"""

from dataclasses import dataclass, field
from typing import List, Optional


class Payload:  # PICK-SLOTS (no __slots__, not a dataclass)
    def __init__(self, values: List[float]) -> None:
        self.values = values


def make_failure_type():
    @dataclass(frozen=True)
    class PointFailure:  # PICK-NESTED (function-local pickle root)
        message: str

    return PointFailure


@dataclass
class PointOutcome:
    index: int
    payload: Payload
    nested: Optional["PointFailure"] = None
    finalize: object = field(default=lambda: None)  # PICK-LAMBDA
