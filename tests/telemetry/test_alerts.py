"""Tests for the alert-rule engine and its report integration."""

import io

import pytest

from repro.telemetry.alerts import (
    DEFAULT_RULES,
    AlertRule,
    ChannelStats,
    evaluate_rules,
    stats_from_samples,
)
from repro.telemetry.timeseries import (
    CounterSampler,
    SampleRecord,
    get_sampler,
    set_sampler,
)


def seeded_stats(**channels):
    """Per-channel stats from ``channel=[values]`` keyword arguments."""
    samples = [
        SampleRecord(channel.replace("__", "."), float(i), float(value))
        for channel, values in channels.items()
        for i, value in enumerate(values)
    ]
    return stats_from_samples(samples)


class TestAlertRule:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown alert rule kind"):
            AlertRule(name="x", kind="banana", channel="c")

    def test_non_overflow_rules_need_a_channel(self):
        with pytest.raises(ValueError, match="needs a channel"):
            AlertRule(name="x", kind="above")
        AlertRule(name="x", kind="overflow")  # channelless is fine


class TestChannelStats:
    def test_observe_tracks_min_max_mean_last(self):
        stats = ChannelStats()
        for value in (3.0, 1.0, 2.0):
            stats.observe(value)
        assert stats.to_dict() == {
            "count": 3,
            "min": 1.0,
            "max": 3.0,
            "mean": 2.0,
            "last": 2.0,
        }

    def test_empty_stats_mean_is_zero(self):
        assert ChannelStats().mean() == 0.0

    def test_stats_from_samples_folds_per_channel(self):
        stats = seeded_stats(a=[1.0, 5.0], b=[2.0])
        assert stats["a"].count == 2 and stats["a"].maximum == 5.0
        assert stats["b"].count == 1


class TestRuleKinds:
    def test_above_fires_at_and_over_threshold(self):
        rule = AlertRule(name="r", kind="above", channel="c", threshold=10.0)
        assert not evaluate_rules(seeded_stats(c=[9.9]), [rule])
        (finding,) = evaluate_rules(seeded_stats(c=[4.0, 10.0]), [rule])
        assert finding.rule == "r" and finding.value == 10.0

    def test_below_fires_at_and_under_threshold(self):
        rule = AlertRule(name="r", kind="below", channel="c", threshold=0.5)
        assert not evaluate_rules(seeded_stats(c=[0.6]), [rule])
        (finding,) = evaluate_rules(seeded_stats(c=[0.9, 0.5]), [rule])
        assert finding.value == 0.5

    def test_collapse_is_relative_and_needs_two_samples(self):
        rule = AlertRule(name="r", kind="collapse", channel="c", threshold=0.5)
        # One sample can't collapse against itself.
        assert not evaluate_rules(seeded_stats(c=[0.1]), [rule])
        assert not evaluate_rules(seeded_stats(c=[2.0, 1.1]), [rule])
        (finding,) = evaluate_rules(seeded_stats(c=[2.0, 0.9]), [rule])
        assert finding.value == 0.9

    def test_overflow_reads_the_drop_count(self):
        rule = AlertRule(name="r", kind="overflow")
        assert not evaluate_rules({}, [rule], dropped=0)
        (finding,) = evaluate_rules({}, [rule], dropped=7)
        assert finding.value == 7.0

    def test_unsampled_channels_are_silently_skipped(self):
        rule = AlertRule(name="r", kind="above", channel="never", threshold=1.0)
        assert evaluate_rules(seeded_stats(c=[99.0]), [rule]) == []


class TestDefaultRules:
    def fired(self, stats, dropped=0):
        return {f.rule for f in evaluate_rules(stats, DEFAULT_RULES, dropped=dropped)}

    def test_quiet_run_fires_nothing(self):
        stats = seeded_stats(
            power__peak_temperature_c=[55.0, 60.0],
            power__total_w=[30.0, 41.0],
            sim__ipc=[2.0, 1.8, 1.9],
        )
        assert self.fired(stats) == set()

    def test_thermal_ceiling_fires_on_a_seeded_violation(self):
        stats = seeded_stats(power__peak_temperature_c=[60.0, 97.3])
        assert self.fired(stats) == {"thermal-ceiling"}

    def test_power_budget_fires_on_a_seeded_violation(self):
        stats = seeded_stats(power__total_w=[30.0, 65.0])
        assert self.fired(stats) == {"power-budget"}

    def test_ipc_collapse_fires_past_the_optimal_thread_count(self):
        stats = seeded_stats(sim__ipc=[2.5, 2.0, 0.9])
        assert self.fired(stats) == {"ipc-collapse"}

    def test_sampler_overflow_fires_on_dropped_readings(self):
        assert self.fired({}, dropped=3) == {"sampler-overflow"}

    def test_findings_serialize_for_the_manifest(self):
        stats = seeded_stats(power__total_w=[65.0])
        (finding,) = evaluate_rules(stats, DEFAULT_RULES)
        document = finding.to_dict()
        assert document["rule"] == "power-budget"
        assert document["channel"] == "power.total_w"
        assert document["value"] == 65.0
        assert document["threshold"] == 60.0


class TestReportAlertsSubsection:
    @pytest.fixture(autouse=True)
    def restore_global_sampler(self):
        previous = get_sampler()
        yield
        set_sampler(previous)

    def render(self):
        from repro.harness.report import _alerts_subsection

        out = io.StringIO()
        _alerts_subsection(out)
        return out.getvalue()

    def test_absent_when_sampling_is_disabled(self):
        set_sampler(CounterSampler(enabled=False))
        assert self.render() == ""

    def test_absent_when_enabled_but_empty(self):
        set_sampler(CounterSampler(enabled=True, max_samples=8))
        assert self.render() == ""

    def test_renders_a_table_for_seeded_violations(self):
        sampler = CounterSampler(enabled=True, max_samples=8)
        set_sampler(sampler)
        sampler.sample("power.peak_temperature_c", 97.0)
        sampler.sample("power.total_w", 65.0)
        text = self.render()
        assert "### Telemetry alerts" in text
        assert "thermal-ceiling" in text and "power-budget" in text
        # The snapshot is non-destructive: the samples are still buffered.
        assert sampler.count == 2

    def test_quiet_run_reports_that_nothing_fired(self):
        sampler = CounterSampler(enabled=True, max_samples=8)
        set_sampler(sampler)
        sampler.sample("power.total_w", 12.0)
        text = self.render()
        assert "No alert rules fired over 1 sampled readings." in text
