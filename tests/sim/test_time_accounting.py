"""Property tests on the scheduler's time accounting.

Conservation laws the simulator must obey regardless of workload:

* per core, accounted time (busy + memory stalls + sync waits + sleep)
  never exceeds its end time, and covers it exactly for runs without
  untracked gaps;
* total instructions equal what the generator emitted;
* execution time equals the slowest core's end time.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE


def build_threads(seed: int, n_threads: int, n_phases: int):
    """Random but barrier-consistent thread programs."""
    rng = random.Random(seed)
    threads = [[] for _ in range(n_threads)]
    for phase in range(n_phases):
        for tid, ops in enumerate(threads):
            for _ in range(rng.randint(1, 6)):
                choice = rng.random()
                if choice < 0.45:
                    ops.append((OP_COMPUTE, rng.randint(10, 500)))
                elif choice < 0.75:
                    ops.append((OP_LOAD, rng.randrange(0, 1 << 20, 8)))
                elif choice < 0.9:
                    ops.append((OP_STORE, rng.randrange(0, 1 << 20, 8)))
                else:
                    ops.append(
                        (OP_CRITICAL, rng.randrange(4), rng.randint(5, 50),
                         0x900000 + rng.randrange(4) * 256)
                    )
            ops.append((OP_BARRIER, phase))
    return threads


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_threads=st.integers(min_value=1, max_value=8),
    sleep=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_time_accounting_identity(seed, n_threads, sleep):
    threads = build_threads(seed, n_threads, n_phases=3)
    expected_instructions = sum(
        op[1] if op[0] == OP_COMPUTE else
        1 if op[0] in (OP_LOAD, OP_STORE) else
        (op[2] + 1) if op[0] == OP_CRITICAL else 0
        for ops in threads
        for op in ops
    )
    chip = ChipMultiprocessor(CMPConfig(barrier_sleep=sleep))
    result = chip.run(threads)

    assert result.total_instructions == expected_instructions
    assert result.execution_time_ps == max(
        s.end_time_ps for s in result.core_stats
    )
    for stats in result.core_stats:
        accounted = (
            stats.busy_ps + stats.stall_mem_ps + stats.sync_wait_ps + stats.sleep_ps
        )
        # Accounted time fully covers the core's lifetime (to rounding).
        assert abs(accounted - stats.end_time_ps) <= 64, (
            accounted,
            stats.end_time_ps,
        )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_lock_accounting(seed):
    threads = build_threads(seed, 4, n_phases=2)
    result = ChipMultiprocessor(CMPConfig()).run(threads)
    expected_acquires = sum(
        1 for ops in threads for op in ops if op[0] == OP_CRITICAL
    )
    assert result.lock_acquires == expected_acquires
    assert 0 <= result.lock_contended <= result.lock_acquires


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None)
def test_barrier_count(seed):
    n_phases = 3
    threads = build_threads(seed, 3, n_phases=n_phases)
    result = ChipMultiprocessor(CMPConfig()).run(threads)
    assert result.barriers == n_phases
