"""Call-graph construction: cycles, dispatch fallback, modern syntax."""

from repro.analysis.flow import CallGraph, call_candidates


def _only_id(graph: CallGraph, name: str) -> str:
    ids = graph.ids_for_name(name)
    assert len(ids) == 1, f"expected one definition of {name}, got {ids}"
    return ids[0]


def _callee_names(graph, nid, include_refs=False):
    return {
        graph.qualname(target)
        for target in graph.callees(nid, include_refs=include_refs)
    }


def test_direct_recursion_is_a_one_node_cycle(fixture_graph):
    nid = _only_id(fixture_graph, "countdown")
    assert "countdown" in _callee_names(fixture_graph, nid)


def test_mutual_recursion_links_both_directions(fixture_graph):
    ping = _only_id(fixture_graph, "ping")
    pong = _only_id(fixture_graph, "pong")
    assert "pong" in _callee_names(fixture_graph, ping)
    assert "ping" in _callee_names(fixture_graph, pong)


def test_reachability_terminates_on_cycles(fixture_graph):
    ping = _only_id(fixture_graph, "ping")
    closure = fixture_graph.reachable([ping])
    names = {fixture_graph.qualname(nid) for nid in closure}
    assert {"ping", "pong"} <= names
    assert "countdown" not in names


def test_async_def_with_walrus_is_an_ordinary_node(fixture_graph):
    nid = _only_id(fixture_graph, "async_step")
    callees = _callee_names(fixture_graph, nid)
    # Recursion through `await`, plus the fallback branch.
    assert "async_step" in callees
    assert "countdown" in callees


def test_match_statement_bodies_are_walked(fixture_graph):
    nid = _only_id(fixture_graph, "dispatch_shape")
    assert {"ping", "pong", "countdown"} <= _callee_names(fixture_graph, nid)


def test_dynamic_dispatch_links_every_same_name_candidate(fixture_graph):
    nid = _only_id(fixture_graph, "dynamic_dispatch")
    issue_edges = [
        e for e in fixture_graph.edges[nid] if e.name == "issue"
    ]
    targets = {fixture_graph.qualname(e.target) for e in issue_edges}
    assert targets == {"AluPort.issue", "MemPort.issue"}
    assert all(e.ambiguous for e in issue_edges)


def test_escaping_function_value_is_a_ref_edge_not_a_call(fixture_graph):
    nid = _only_id(fixture_graph, "escape_reference")
    assert "countdown" not in _callee_names(fixture_graph, nid)
    assert "countdown" in _callee_names(
        fixture_graph, nid, include_refs=True
    )
    ref_edges = [
        e for e in fixture_graph.edges[nid] if e.kind == "ref"
    ]
    assert {fixture_graph.qualname(e.target) for e in ref_edges} == {
        "countdown"
    }


def test_shortest_path_is_deterministic_and_minimal(fixture_graph):
    start = _only_id(fixture_graph, "dispatch_shape")
    target = _only_id(fixture_graph, "pong")
    path = fixture_graph.shortest_path(start, lambda nid: nid == target)
    assert path is not None
    assert [fixture_graph.qualname(nid) for nid in path] == [
        "dispatch_shape",
        "pong",
    ]
    # Same query, same answer: BFS order is sorted, not hash order.
    again = fixture_graph.shortest_path(start, lambda nid: nid == target)
    assert again == path


def test_call_candidates_resolve_names_and_attributes(
    fixture_index, fixture_graph
):
    nid = _only_id(fixture_graph, "dynamic_dispatch")
    info = fixture_graph.nodes[nid]
    import ast

    calls = [n for n in ast.walk(info.node) if isinstance(n, ast.Call)]
    assert calls, "fixture must contain the port.issue call"
    name, candidates = call_candidates(fixture_index, calls[0].func)
    assert name == "issue"
    assert {c.qualname for c in candidates} == {
        "AluPort.issue",
        "MemPort.issue",
    }
