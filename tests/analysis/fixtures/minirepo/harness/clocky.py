"""Harness helpers that reach the host clock (analyzer fixture).

``harness/`` is outside the determinism scope, so nothing here is
flagged *directly* — but a simulation function that calls into this
chain is flagged transitively at its call site, with the path in the
message.
"""

import time


def outer_helper() -> float:
    # Two frames above the actual hazard: the taint path must show
    # outer_helper -> inner_helper.
    return inner_helper()


def inner_helper() -> float:
    return time.perf_counter()


def audited_helper() -> float:
    # An audited hazard must NOT taint callers.
    # repro: allow[DET-WALLCLOCK] fixture: audited host-side timer
    return time.perf_counter()


def clean_helper(value: float) -> float:
    return value * 2.0
