"""Tests for Scenario III: energy(-delay) optimization (library extension)."""

import pytest

from repro.core import (
    AnalyticalChipModel,
    ConstantEfficiency,
    EnergyOptimizationScenario,
    SAMPLE_APPLICATION,
)
from repro.errors import ConfigurationError
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module")
def chip():
    return AnalyticalChipModel(NODE_65NM)


@pytest.fixture(scope="module")
def energy_scenario(chip):
    return EnergyOptimizationScenario(chip, delay_weight=0.0)


@pytest.fixture(scope="module")
def edp_scenario(chip):
    return EnergyOptimizationScenario(chip, delay_weight=1.0)


class TestSolve:
    def test_energy_optimum_saves_energy(self, energy_scenario):
        point = energy_scenario.solve(1, 1.0)
        assert point.relative_energy < 1.0  # beats running at nominal

    def test_optimum_below_nominal_frequency(self, energy_scenario, chip):
        point = energy_scenario.solve(1, 1.0)
        assert point.frequency_hz < chip.tech.f_nominal

    def test_optimum_at_or_above_floor_knee(self, energy_scenario, chip):
        # Below the voltage floor, slowing down is pure static loss, so
        # the energy optimum never sits below the floor's max frequency.
        point = energy_scenario.solve(1, 1.0)
        knee = chip.tech.fmax(chip.tech.v_min)
        assert point.frequency_hz >= knee * 0.98

    def test_nominal_point_energy_is_one(self, energy_scenario, chip):
        # Evaluate the reference identity: E at nominal V/f, N=1, is 1.
        _obj, _point, rel_time, rel_energy = energy_scenario._evaluate(
            1, 1.0, chip.tech.f_nominal
        )
        assert rel_time == pytest.approx(1.0)
        assert rel_energy == pytest.approx(1.0, rel=1e-6)

    def test_energy_roughly_flat_in_n_at_perfect_efficiency(self, energy_scenario):
        # Same work split across cores: energy is nearly N-independent
        # (static-during-runtime effects make it creep up slightly).
        e1 = energy_scenario.solve(1, 1.0).relative_energy
        e16 = energy_scenario.solve(16, 1.0).relative_energy
        assert e16 == pytest.approx(e1, rel=0.25)
        assert e16 >= e1

    def test_validation(self, energy_scenario):
        with pytest.raises(ConfigurationError):
            energy_scenario.solve(0, 1.0)
        with pytest.raises(ConfigurationError):
            energy_scenario.solve(2, 0.0)
        with pytest.raises(ConfigurationError):
            EnergyOptimizationScenario(
                AnalyticalChipModel(NODE_65NM), delay_weight=-1.0
            )


class TestDelayWeight:
    def test_edp_runs_faster_than_pure_energy(self):
        # Use the 130 nm node, where the voltage floor's knee is gentle
        # enough that the delay weight visibly moves the optimum (at
        # 65 nm both optima pin to the same sharp knee).
        chip = AnalyticalChipModel(NODE_130NM)
        e_point = EnergyOptimizationScenario(chip, delay_weight=0.0).solve(1, 1.0)
        edp_point = EnergyOptimizationScenario(chip, delay_weight=1.0).solve(1, 1.0)
        assert edp_point.frequency_hz > e_point.frequency_hz
        assert edp_point.relative_time < e_point.relative_time

    def test_edp_prefers_parallelism(self, energy_scenario, edp_scenario):
        # Pure energy is indifferent-to-negative on core count; EDP loves
        # the delay reduction of more cores.
        e_best = energy_scenario.best_configuration(
            SAMPLE_APPLICATION, (1, 2, 4, 8, 16)
        )
        edp_best = edp_scenario.best_configuration(
            SAMPLE_APPLICATION, (1, 2, 4, 8, 16)
        )
        assert edp_best.n > e_best.n

    def test_objective_definition(self, edp_scenario):
        point = edp_scenario.solve(4, 0.9)
        assert point.relative_objective == pytest.approx(
            point.relative_energy * point.relative_time
        )


class TestCurves:
    def test_energy_curve_covers_counts(self, energy_scenario):
        points = energy_scenario.energy_curve(ConstantEfficiency(1.0), (1, 2, 4, 8))
        assert [p.n for p in points] == [1, 2, 4, 8]

    def test_poor_efficiency_wastes_energy(self, energy_scenario):
        good = energy_scenario.solve(8, 1.0).relative_energy
        poor = energy_scenario.solve(8, 0.4).relative_energy
        # Lower efficiency means more aggregate work-time: more energy.
        assert poor > good

    def test_cross_technology_sanity(self):
        # The leakier node pays more static energy at its optimum.
        e130 = EnergyOptimizationScenario(AnalyticalChipModel(NODE_130NM))
        e65 = EnergyOptimizationScenario(AnalyticalChipModel(NODE_65NM))
        assert e130.solve(1, 1.0).relative_energy < e65.solve(1, 1.0).relative_energy
