"""Unit tests for the bounded counter sampler and its module-level API."""

import pytest

from repro.telemetry.timeseries import (
    CounterSampler,
    SampleRecord,
    channel_values,
    disable_sampling,
    enable_sampling,
    get_sampler,
    sample,
    set_sampler,
)


@pytest.fixture(autouse=True)
def restore_global_sampler():
    """Every test leaves the process-wide sampler as it found it."""
    previous = get_sampler()
    yield
    set_sampler(previous)


class TestCounterSampler:
    def test_disabled_sampler_allocates_nothing_and_ignores_samples(self):
        sampler = CounterSampler(enabled=False)
        assert len(sampler._channels) == 0
        assert len(sampler._times) == 0
        assert len(sampler._values) == 0
        sampler.sample("sim.ipc", 1.5)
        assert sampler.count == 0
        assert sampler.dropped == 0
        assert sampler.drain_records() == []

    def test_enabled_sampler_records_channel_value_and_timestamp(self):
        sampler = CounterSampler(enabled=True, max_samples=16)
        sampler.sample("power.total_w", 42.0)
        sampler.sample("sim.ipc", 1.25)
        records = sampler.drain_records()
        assert [(r.channel, r.value) for r in records] == [
            ("power.total_w", 42.0),
            ("sim.ipc", 1.25),
        ]
        # Absolute-microsecond timebase, emission-ordered.
        assert records[0].t_us > 0
        assert records[0].t_us <= records[1].t_us
        assert sampler.count == 0

    def test_buffer_cap_counts_drops_instead_of_growing(self):
        sampler = CounterSampler(enabled=True, max_samples=4)
        for i in range(6):
            sampler.sample("c", float(i))
        assert sampler.count == 4
        assert sampler.dropped == 2
        assert [r.value for r in sampler.drain_records()] == [0.0, 1.0, 2.0, 3.0]

    def test_mark_and_drain_since_take_only_the_window(self):
        sampler = CounterSampler(enabled=True, max_samples=16)
        sampler.sample("calibration", 1.0)  # pre-window (inherited) reading
        mark = sampler.mark()
        sampler.sample("point", 2.0)
        sampler.sample("point", 3.0)
        window = sampler.drain_since(mark)
        assert [r.value for r in window] == [2.0, 3.0]
        # The pre-window reading stays for its owner to drain later.
        assert sampler.count == 1
        assert [r.channel for r in sampler.drain_records()] == ["calibration"]

    def test_drain_since_clamps_out_of_range_marks(self):
        sampler = CounterSampler(enabled=True, max_samples=8)
        sampler.sample("c", 1.0)
        assert sampler.drain_since(99) == []
        assert sampler.count == 1
        assert [r.value for r in sampler.drain_since(-5)] == [1.0]
        assert sampler.count == 0

    def test_records_is_non_destructive(self):
        sampler = CounterSampler(enabled=True, max_samples=8)
        sampler.sample("c", 7.0)
        assert [r.value for r in sampler.records()] == [7.0]
        assert sampler.count == 1

    def test_reset_clears_readings_and_drop_count(self):
        sampler = CounterSampler(enabled=True, max_samples=2)
        for i in range(3):
            sampler.sample("c", float(i))
        sampler.reset()
        assert sampler.count == 0
        assert sampler.dropped == 0
        assert sampler.enabled


class TestModuleLevelSampler:
    def test_default_sampler_is_disabled(self):
        disable_sampling()
        assert not get_sampler().enabled
        sample("sim.ipc", 1.0)  # must be a no-op
        assert get_sampler().count == 0

    def test_enable_sampling_installs_and_returns_the_sampler(self):
        sampler = enable_sampling(max_samples=32)
        assert sampler is get_sampler()
        assert sampler.enabled and sampler.max_samples == 32
        sample("sim.ipc", 2.0)
        assert sampler.count == 1

    def test_set_sampler_returns_the_previous_one(self):
        original = get_sampler()
        replacement = CounterSampler(enabled=True, max_samples=4)
        assert set_sampler(replacement) is original
        assert get_sampler() is replacement
        assert set_sampler(original) is replacement


class TestSampleRecord:
    def test_dict_round_trip(self):
        record = SampleRecord(channel="power.total_w", t_us=123.5, value=41.0)
        assert SampleRecord.from_dict(record.to_dict()) == record

    def test_channel_values_groups_in_order(self):
        records = [
            SampleRecord("a", 1.0, 10.0),
            SampleRecord("b", 2.0, 20.0),
            SampleRecord("a", 3.0, 30.0),
        ]
        assert channel_values(records) == {"a": [10.0, 30.0], "b": [20.0]}
