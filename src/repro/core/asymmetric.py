"""Asymmetric CMP analysis: the Grochowski et al. [13] discussion, solved.

The paper's related work highlights Grochowski et al.'s conclusion that
the best way to serve both scalar and throughput performance in a
power-constrained envelope is **DVFS combined with asymmetric cores**:
run serial phases on a big, fast core and parallel phases on many small
ones.  The paper itself stays with a symmetric CMP; this module extends
its analytical machinery to the asymmetric case so the two designs can
be compared under the same power budget.

Model
-----
The application has a serial fraction ``s`` (Amdahl) and otherwise
perfect parallelism over the small cores.  The chip hosts one big core
and ``N`` small cores on the paper's technology/power substrate:

* the big core sustains ``big_speed`` times the small core's nominal
  single-thread performance and consumes ``big_power`` times its
  nominal power (classic area-performance trade: speed ~ sqrt(area),
  power ~ area, so e.g. speed 2x / power 4x);
* phases are mutually exclusive: the serial phase runs the big core
  alone (small cores power-gated), the parallel phase runs the small
  cores alone (big core gated) — each phase independently uses the
  full power budget through its own V/f scaling.

Execution time relative to one small core at nominal::

    T(N) = s / S_serial + (1 - s) / S_parallel(N)

where ``S_serial`` is the big core's budget-legal speed and
``S_parallel`` the symmetric Scenario II speedup of the small-core pool.
The symmetric baseline is the same with the serial phase on one small
core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.core.powermodel import AnalyticalChipModel
from repro.core.scenario2 import PerformanceOptimizationScenario
from repro.errors import ConfigurationError, InfeasibleOperatingPoint


@dataclass(frozen=True)
class AsymmetricPoint:
    """One asymmetric configuration's solution under the budget."""

    n_small: int
    serial_fraction: float
    serial_speed: float
    parallel_speedup: float
    total_speedup: float
    #: The symmetric chip's speedup on the same workload and budget.
    symmetric_speedup: float

    @property
    def advantage(self) -> float:
        """Asymmetric over symmetric speedup ratio."""
        return self.total_speedup / self.symmetric_speedup


class AsymmetricCMPModel:
    """Big-core + small-core pool analysis over the analytical substrate."""

    def __init__(
        self,
        chip: AnalyticalChipModel,
        big_speed: float = 2.0,
        big_power: float = 4.0,
    ) -> None:
        if big_speed < 1.0:
            raise ConfigurationError("big core must be at least as fast as small")
        if big_power < big_speed:
            raise ConfigurationError(
                "big core power must be >= its speed (superlinear cost of ILP)"
            )
        self.chip = chip
        self.big_speed = big_speed
        self.big_power = big_power
        self._scenario = PerformanceOptimizationScenario(chip)

    def _serial_speed_under_budget(self) -> float:
        """The big core's budget-legal speed relative to a nominal small core.

        The big core at nominal V/f consumes ``big_power`` x the small
        core's nominal power but the budget is only 1 x; it must scale
        V/f down.  We reuse the symmetric solver: a chip of
        ``round(big_power)`` nominal-power units behaves like the big
        core power-wise, and its per-unit frequency ratio applies to the
        big core's clock.  (The paper's Eq. 10 logic with N replaced by
        the power multiple.)
        """
        power_units = max(1, round(self.big_power))
        point = self._scenario.solve(power_units, 1.0)
        frequency_ratio = point.frequency_hz / self.chip.tech.f_nominal
        return self.big_speed * frequency_ratio

    def solve(self, n_small: int, serial_fraction: float) -> AsymmetricPoint:
        """Speedup of the asymmetric chip on an Amdahl workload."""
        if not 0.0 <= serial_fraction <= 1.0:
            raise ConfigurationError("serial fraction must be in [0, 1]")
        if n_small < 1:
            raise ConfigurationError("need at least one small core")

        serial_speed = min(self.big_speed, self._serial_speed_under_budget())
        parallel = self._scenario.solve(n_small, 1.0)
        parallel_speedup = parallel.speedup

        s = serial_fraction
        asymmetric_time = s / serial_speed + (1.0 - s) / parallel_speedup
        symmetric_time = s / 1.0 + (1.0 - s) / parallel_speedup

        return AsymmetricPoint(
            n_small=n_small,
            serial_fraction=s,
            serial_speed=serial_speed,
            parallel_speedup=parallel_speedup,
            total_speedup=1.0 / asymmetric_time,
            symmetric_speedup=1.0 / symmetric_time,
        )

    def best_configuration(
        self,
        serial_fraction: float,
        candidates: Iterable[int],
    ) -> AsymmetricPoint:
        """The small-core count maximising the asymmetric speedup."""
        best: Optional[AsymmetricPoint] = None
        for n in candidates:
            try:
                point = self.solve(n, serial_fraction)
            except InfeasibleOperatingPoint:
                continue
            if best is None or point.total_speedup > best.total_speedup:
                best = point
        if best is None:
            raise InfeasibleOperatingPoint("no feasible asymmetric configuration")
        return best
