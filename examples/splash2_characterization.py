#!/usr/bin/env python
"""Characterise the twelve SPLASH-2 workload models (Table 2).

Runs every application on 1 and 16 cores at nominal V/f and prints the
behavioural signature each model was tuned to: memory-stall fraction, L1
miss rate, CPI, nominal efficiency at 16 cores, lock activity, and the
(renormalised) single-core power — the quantity that decides how much
Scenario II headroom each application has.

Run:  python examples/splash2_characterization.py
"""

from repro.harness import ExperimentContext, render_table
from repro.harness.profiling import profile_application
from repro.workloads import SPLASH2


def main() -> None:
    print("Building the experiment context (runs the calibration ubench)...")
    context = ExperimentContext(workload_scale=0.2)
    budget = context.calibration.max_operational_power_w
    print(f"  single-core max operational power: {budget:.1f} W\n")

    rows = []
    for model in SPLASH2:
        profile = profile_application(context, model, (1, 16))
        one = profile.entries[1]
        sixteen = profile.entries.get(16)
        rows.append(
            [
                model.name,
                model.spec.problem_size,
                one.result.average_cpi,
                one.result.l1_miss_rate(),
                one.result.memory_stall_fraction(),
                profile.nominal_efficiency(16) if sixteen else float("nan"),
                one.power.total_w,
                f"{one.power.total_w / budget:.0%}",
            ]
        )

    print(
        render_table(
            [
                "app",
                "problem size (Table 2)",
                "CPI",
                "L1 miss",
                "mem-stall",
                "eps_n(16)",
                "P1 (W)",
                "P1/budget",
            ],
            rows,
            title="SPLASH-2 workload models at nominal V/f",
        )
    )

    print(
        "\nThe right-most column explains Figure 4: applications far below\n"
        "the budget (Radix) can add cores at nominal V/f, while those near\n"
        "it (FMM) must throttle immediately."
    )


if __name__ == "__main__":
    main()
