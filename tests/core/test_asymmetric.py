"""Tests for the asymmetric-CMP extension (Grochowski discussion)."""

import pytest

from repro.core import AnalyticalChipModel
from repro.core.asymmetric import AsymmetricCMPModel
from repro.errors import ConfigurationError
from repro.tech import NODE_130NM, NODE_65NM


@pytest.fixture(scope="module")
def model():
    return AsymmetricCMPModel(AnalyticalChipModel(NODE_130NM))


class TestConstruction:
    def test_validation(self):
        chip = AnalyticalChipModel(NODE_130NM)
        with pytest.raises(ConfigurationError):
            AsymmetricCMPModel(chip, big_speed=0.5)
        with pytest.raises(ConfigurationError):
            AsymmetricCMPModel(chip, big_speed=3.0, big_power=2.0)


class TestSolve:
    def test_asymmetric_beats_symmetric_on_serial_codes(self, model):
        point = model.solve(16, serial_fraction=0.2)
        assert point.total_speedup > point.symmetric_speedup
        assert point.advantage > 1.05

    def test_no_advantage_without_serial_work(self, model):
        point = model.solve(16, serial_fraction=0.0)
        assert point.total_speedup == pytest.approx(point.symmetric_speedup)
        assert point.advantage == pytest.approx(1.0)

    def test_pure_serial_workload(self, model):
        point = model.solve(16, serial_fraction=1.0)
        # All time on the big core: speedup is its budget-legal speed.
        assert point.total_speedup == pytest.approx(point.serial_speed)
        assert point.symmetric_speedup == pytest.approx(1.0)

    def test_budget_throttles_the_big_core(self, model):
        point = model.solve(8, serial_fraction=0.3)
        # A 4x-power core under a 1x budget cannot run at full speed...
        assert point.serial_speed < model.big_speed
        # ...but still beats a small core.
        assert point.serial_speed > 1.0

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.solve(0, 0.1)
        with pytest.raises(ConfigurationError):
            model.solve(4, 1.5)


class TestOptimisation:
    def test_best_configuration_interior(self, model):
        best = model.best_configuration(0.1, range(1, 33))
        assert 1 < best.n_small < 33

    def test_more_serial_means_bigger_advantage(self, model):
        mild = model.solve(16, serial_fraction=0.05)
        heavy = model.solve(16, serial_fraction=0.4)
        assert heavy.advantage > mild.advantage

    def test_works_on_65nm_substrate(self):
        model = AsymmetricCMPModel(AnalyticalChipModel(NODE_65NM))
        point = model.solve(8, serial_fraction=0.2)
        assert point.total_speedup > 1.0
