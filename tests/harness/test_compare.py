"""Tests for the analytical-vs-experimental agreement harness."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentContext, run_scenario1
from repro.harness.compare import (
    AgreementPoint,
    AgreementSummary,
    compare_scenario1,
)
from repro.workloads import workload_by_name


def make_point(predicted, measured, app="x", n=4):
    return AgreementPoint(
        app=app, n=n, eps_n=0.8, predicted_power=predicted, measured_power=measured
    )


class TestAgreementPoint:
    def test_perfect_agreement(self):
        point = make_point(0.5, 0.5)
        assert point.relative_error == 0.0
        assert point.log_ratio == 0.0

    def test_log_ratio_symmetric(self):
        over = make_point(0.25, 0.5)
        under = make_point(0.5, 0.25)
        assert over.log_ratio == pytest.approx(-under.log_ratio)


class TestAgreementSummary:
    def test_statistics(self):
        summary = AgreementSummary(
            points=(make_point(0.5, 0.5), make_point(0.25, 0.5))
        )
        assert summary.mean_abs_log_ratio == pytest.approx(math.log(2) / 2)
        assert summary.worst_factor == pytest.approx(2.0)
        assert summary.within_factor(2.0) == 1.0
        assert summary.within_factor(1.5) == 0.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AgreementSummary(points=())
        with pytest.raises(ConfigurationError):
            AgreementSummary(points=(make_point(0.5, 0.5),)).within_factor(0.5)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def summary(self):
        context = ExperimentContext(workload_scale=0.1)
        experimental = run_scenario1(
            context,
            [workload_by_name("FMM"), workload_by_name("Water-Sp")],
            core_counts=(1, 2, 4, 8),
        )
        return compare_scenario1(experimental)

    def test_points_for_each_configuration(self, summary):
        apps = {p.app for p in summary.points}
        assert apps == {"FMM", "Water-Sp"}
        assert len(summary.points) == 6  # 2 apps x N in {2, 4, 8}

    def test_reasonable_agreement(self, summary):
        # The paper claims the analytical model captures the behaviour
        # "reasonably well"; quantified, every point should agree within
        # a factor of ~2.5 and most within 2.
        assert summary.worst_factor < 2.5
        assert summary.within_factor(2.0) >= 0.8

    def test_predictions_are_savings_too(self, summary):
        for point in summary.points:
            assert point.predicted_power < 1.0
            assert point.measured_power < 1.0
