"""Parsed source files: AST, inline suppressions, and hot markers.

Two comment conventions drive the analyzer (see docs/ANALYSIS.md):

* ``# repro: allow[RULE-ID] reason`` — suppress RULE-ID findings on this
  line or the line directly below (so the comment can sit on its own
  line above a flagged statement).  Several ids may be listed,
  comma-separated.  The reason is free text; write one.

  Two structural extensions keep the comment attachable where findings
  actually anchor: a comment above (or on) a *decorator* also covers
  the ``def``/``class`` line the finding points at, and a comment
  anywhere alongside a *multi-line simple statement* covers every line
  the statement spans.  Compound statements (``if``/``for``/``def``)
  deliberately get header-only coverage — an allow above a loop must
  not blanket its body.
* ``# repro: hot`` — mark the next ``def`` as a hot-path function,
  opting it into the HOT-* discipline rules.  The marker goes on the
  line above the ``def`` (or its first decorator), or at the end of the
  ``def`` line itself.

Comments are read with :mod:`tokenize`, not regexes over raw lines, so
marker-shaped text inside string literals is never misread as a marker.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_, \-]+)\]\s*(?P<reason>.*)"
)
_HOT_RE = re.compile(r"#\s*repro:\s*hot\b")

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class SourceError:
    """A file the analyzer could not parse."""

    rel: str
    message: str


class SourceFile:
    """One parsed module: text, AST, and analyzer markers."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Path relative to the analyzed root, with ``/`` separators.
        self.rel = rel
        self.text = text
        self.lines: Tuple[str, ...] = tuple(text.splitlines())
        self.tree: ast.Module = ast.parse(text, filename=str(path))
        #: line -> rule ids allowed on that line (and the next one).
        self.allows: Dict[int, FrozenSet[str]] = {}
        #: Lines carrying a ``# repro: hot`` marker.
        self.hot_marks: FrozenSet[int] = frozenset()
        #: anchor line -> rule -> comment lines granting the allowance.
        self._coverage: Dict[int, Dict[str, Set[int]]] = {}
        #: ``(comment line, rule)`` pairs consumed by a finding — the
        #: input of stale-suppression detection (ALLOW-UNUSED).
        self.used_allows: Set[Tuple[int, str]] = set()
        self._scan_comments()
        self._build_coverage()

    def _scan_comments(self) -> None:
        allows: Dict[int, FrozenSet[str]] = {}
        hot: List[int] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                line = token.start[0]
                allow = _ALLOW_RE.search(token.string)
                if allow is not None:
                    rules = frozenset(
                        part.strip().upper()
                        for part in allow.group("rules").split(",")
                        if part.strip()
                    )
                    allows[line] = allows.get(line, frozenset()) | rules
                if _HOT_RE.search(token.string):
                    hot.append(line)
        except tokenize.TokenError:
            # The AST parsed, so this is a tokenizer corner case; treat
            # the file as marker-free rather than failing the analysis.
            pass
        self.allows = allows
        self.hot_marks = frozenset(hot)

    def _build_coverage(self) -> None:
        """Map every coverable anchor line to its granting comments.

        Base rule: a comment on line L covers L and L+1.  Extensions:
        decorator-adjacent comments cover the decorated ``def`` line,
        and comments alongside a multi-line *simple* statement cover
        the statement's whole line span.  Compound statements keep
        header-only coverage so an allow cannot blanket a body.
        """
        coverage: Dict[int, Dict[str, Set[int]]] = {}

        def cover(anchor: int, comment_line: int, rules: FrozenSet[str]) -> None:
            per_rule = coverage.setdefault(anchor, {})
            for rule in rules:
                per_rule.setdefault(rule, set()).add(comment_line)

        for line, rules in self.allows.items():
            cover(line, line, rules)
            cover(line + 1, line, rules)
        for node in ast.walk(self.tree):
            if (
                isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
                and node.decorator_list
            ):
                first = min(d.lineno for d in node.decorator_list)
                candidates = {first - 1}
                for decorator in node.decorator_list:
                    end = decorator.end_lineno or decorator.lineno
                    candidates.update(range(decorator.lineno, end + 1))
                for comment_line in sorted(candidates):
                    if comment_line in self.allows:
                        cover(node.lineno, comment_line, self.allows[comment_line])
            elif isinstance(node, ast.stmt) and not isinstance(
                node,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.If,
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.With,
                    ast.AsyncWith,
                    ast.Try,
                    ast.Match,
                ),
            ):
                end = node.end_lineno or node.lineno
                if end > node.lineno:
                    for comment_line in range(node.lineno - 1, end + 1):
                        if comment_line in self.allows:
                            for anchor in range(node.lineno, end + 1):
                                cover(
                                    anchor,
                                    comment_line,
                                    self.allows[comment_line],
                                )
        self._coverage = coverage

    def snippet(self, line: int) -> str:
        """The stripped source line at 1-based ``line`` (or empty)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()[:160]
        return ""

    def allowed(self, rule: str, line: int) -> bool:
        """Whether an inline suppression covers ``rule`` at ``line``.

        A hit records which comment granted it (``used_allows``), so
        stale comments can be flagged afterwards (ALLOW-UNUSED).
        """
        per_rule = self._coverage.get(line)
        if per_rule is None:
            return False
        comment_lines = per_rule.get(rule.upper())
        if not comment_lines:
            return False
        rule_id = rule.upper()
        self.used_allows.update(
            (comment_line, rule_id) for comment_line in comment_lines
        )
        return True

    def is_hot(self, node: FunctionNode) -> bool:
        """Whether ``node`` carries a ``# repro: hot`` marker."""
        start = node.lineno
        for decorator in node.decorator_list:
            start = min(start, decorator.lineno)
        return bool(
            self.hot_marks & {start - 1, node.lineno}
        )


def load_source_file(
    path: Path, rel: str
) -> Tuple[Optional[SourceFile], Optional[SourceError]]:
    """Parse one file; returns ``(file, None)`` or ``(None, error)``."""
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, SourceError(rel=rel, message=f"unreadable: {exc}")
    try:
        return SourceFile(path, rel, text), None
    except SyntaxError as exc:
        return None, SourceError(rel=rel, message=f"syntax error: {exc.msg}")
