"""The discrete-event CMP timing simulator (the paper's Section 3.1 model).

A 16-way CMP of EV6-like cores: private L1 instruction/data caches, a
MESI snooping protocol over a shared split-transaction bus, a shared
inclusive on-chip L2, and off-chip DRAM with a fixed latency *in
nanoseconds* — so chip-level DVFS changes the memory round trip measured
in cycles, the mechanism behind the paper's memory-bound anomalies
(Sections 4.1-4.2).

The engine is conservative-time event-driven: the scheduler always
advances the core with the smallest local time, and shared resources
(bus, locks, barriers) hand out reservations in that order.  Each core
consumes an *operation stream* produced lazily by a workload model
(:mod:`repro.workloads`): compute bursts, loads/stores, barriers, and
lock/unlock pairs.

Entry point: :class:`~repro.sim.cmp.ChipMultiprocessor`.
"""

from repro.sim.clock import ClockDomain
from repro.sim.cache import Cache, CacheConfig
from repro.sim.bus import BankedCrossbar, SharedBus, BusConfig
from repro.sim.memory import MainMemory
from repro.sim.coherence import MESIController, CoherenceStats
from repro.sim.ops import (
    CompiledProgram,
    CompileOutcome,
    OpStreamCache,
    compile_stream,
    compile_workload,
    stream_cache,
)
from repro.sim.cmp import (
    ChipMultiprocessor,
    ChipSession,
    CMPConfig,
    KernelStats,
    SimulationResult,
    CoreStats,
)

__all__ = [
    "ClockDomain",
    "Cache",
    "CacheConfig",
    "SharedBus",
    "BankedCrossbar",
    "BusConfig",
    "MainMemory",
    "MESIController",
    "CoherenceStats",
    "CompiledProgram",
    "CompileOutcome",
    "OpStreamCache",
    "compile_stream",
    "compile_workload",
    "stream_cache",
    "ChipMultiprocessor",
    "ChipSession",
    "CMPConfig",
    "KernelStats",
    "SimulationResult",
    "CoreStats",
]
