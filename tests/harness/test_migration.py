"""Tests for the activity-migration thermal policy."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentContext
from repro.harness.migration import compare_migration, run_activity_migration
from repro.workloads import workload_by_name


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(workload_scale=0.1)


@pytest.fixture(scope="module")
def results(context):
    return compare_migration(context, workload_by_name("FMM"), rotation_set=4)


class TestPolicies:
    def test_rotation_lowers_peak_temperature(self, results):
        pinned, rotated = results
        assert rotated.peak_temperature_c < pinned.peak_temperature_c - 2.0

    def test_rotation_costs_performance(self, results):
        pinned, rotated = results
        # Cold caches after each hop: slower and missier.
        assert rotated.total_time_s > pinned.total_time_s
        assert rotated.l1_miss_rate > pinned.l1_miss_rate

    def test_peak_bounded_by_steady_state(self, results):
        for r in results:
            assert r.peak_temperature_c <= r.steady_peak_c + 0.5

    def test_policy_labels(self, results):
        pinned, rotated = results
        assert pinned.policy == "pinned"
        assert rotated.policy == "rotate-4"
        assert pinned.window_count == rotated.window_count > 1

    def test_bigger_rotation_set_cooler(self, context):
        small = run_activity_migration(
            context, workload_by_name("FMM"), rotation_set=2, rotate=True
        )
        large = run_activity_migration(
            context, workload_by_name("FMM"), rotation_set=8, rotate=True
        )
        assert large.peak_temperature_c <= small.peak_temperature_c + 0.5

    def test_validation(self, context):
        with pytest.raises(ConfigurationError):
            run_activity_migration(
                context, workload_by_name("FMM"), rotation_set=0
            )
        with pytest.raises(ConfigurationError):
            run_activity_migration(
                context, workload_by_name("FMM"), rotation_set=99
            )
