"""Deterministic fault injection for the sweep executor.

A production sweep fleet sees three families of failure: a point
*raises* (a bug or a transient resource error), a point *hangs* (a lost
lock, a stuck IO), or its worker *dies* outright (the OOM killer, a
segfault).  This module makes all three reproducible on demand so the
executor's retry, quarantine, and resume machinery can be tested — and
rehearsed in CI — against the real code paths rather than mocks.

A :class:`FaultPlan` is a pure value: given a seed (plus optional
explicit overrides) it deterministically decides, for every sweep-point
index, whether that point is sabotaged, with which :class:`FaultSpec`
(kind and how many leading attempts fail).  The derivation hashes
``(seed, index)`` independently per point, so the same plan produces the
same faults regardless of grid size, evaluation order, or job count —
which is what lets the chaos tests assert that a faulted parallel sweep
converges to exactly the fault-free serial result.

Fault kinds:

* ``raise`` — the point raises :class:`~repro.errors.InjectedFault`
  before evaluating (works in every execution lane);
* ``hang`` — the point sleeps ``hang_s`` seconds before evaluating,
  long enough to trip a per-point deadline (requires the process lane);
* ``kill`` — the worker process exits immediately with
  :data:`KILL_EXIT_CODE`, simulating an OOM kill or segfault (requires
  the process lane).

The CLI exposes plans through the hidden ``--inject-faults`` flag; see
:func:`parse_fault_plan` for the spec grammar.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError, InjectedFault

#: Every fault kind the plane can inject.
FAULT_KINDS: Tuple[str, ...] = ("raise", "hang", "kill")

#: Exit code a ``kill``-faulted worker dies with (recognisably not a
#: Python traceback exit, so crash handling can be asserted precisely).
KILL_EXIT_CODE = 77

#: ``failing_attempts`` value meaning "every attempt fails" (a permanent
#: fault; the point is quarantined once retries are exhausted).
ALWAYS = -1


@dataclass(frozen=True)
class FaultSpec:
    """How one sweep point misbehaves.

    ``failing_attempts`` counts the leading attempts that fail; attempt
    numbers at or past it succeed, so a spec with ``failing_attempts=2``
    under ``max_retries>=2`` recovers, while :data:`ALWAYS` never does.
    """

    kind: str
    failing_attempts: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.failing_attempts == 0 or self.failing_attempts < ALWAYS:
            raise ConfigurationError(
                "failing_attempts must be >= 1, or ALWAYS (-1) for a "
                "permanent fault"
            )

    @property
    def permanent(self) -> bool:
        """Whether no number of retries can get past this fault."""
        return self.failing_attempts == ALWAYS

    def applies(self, attempt: int) -> bool:
        """Whether this spec sabotages the given 0-based attempt."""
        return self.permanent or attempt < self.failing_attempts


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible assignment of faults to sweep-point indices.

    Explicit ``faults`` entries always win; beyond them, each index is
    (or is not) faulted by a derivation seeded on ``(seed, index)``
    whenever ``rate > 0``.  The plan is a frozen dataclass so it can
    ride to worker processes through the executor's task channel.
    """

    seed: int = 0
    rate: float = 0.0
    kinds: Tuple[str, ...] = FAULT_KINDS
    #: Upper bound on the failing attempts of a derived transient fault.
    max_failing_attempts: int = 2
    #: Fraction of derived faults that are permanent (never recover).
    permanent_rate: float = 0.0
    hang_s: float = 30.0
    faults: Tuple[Tuple[int, FaultSpec], ...] = field(default=())

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("fault rate must be within [0, 1]")
        if not 0.0 <= self.permanent_rate <= 1.0:
            raise ConfigurationError("permanent rate must be within [0, 1]")
        if self.max_failing_attempts < 1:
            raise ConfigurationError("max_failing_attempts must be >= 1")
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(f"unknown fault kind {kind!r}")
        if not self.kinds and self.rate > 0.0:
            raise ConfigurationError("a fault rate needs at least one kind")

    def spec_for(self, index: int) -> Optional[FaultSpec]:
        """The fault assigned to one sweep-point index, if any.

        Deterministic in ``(plan, index)`` alone — derived faults never
        depend on grid size or evaluation order.
        """
        explicit: Dict[int, FaultSpec] = dict(self.faults)
        if index in explicit:
            return explicit[index]
        if self.rate <= 0.0:
            return None
        rng = random.Random(f"repro-fault:{self.seed}:{index}")
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[rng.randrange(len(self.kinds))]
        if self.permanent_rate > 0.0 and rng.random() < self.permanent_rate:
            failing = ALWAYS
        else:
            failing = 1 + rng.randrange(self.max_failing_attempts)
        return FaultSpec(kind=kind, failing_attempts=failing, hang_s=self.hang_s)

    def faulted_indices(self, n_points: int) -> Tuple[int, ...]:
        """Every index in ``range(n_points)`` this plan sabotages."""
        return tuple(
            i for i in range(n_points) if self.spec_for(i) is not None
        )

    def needs_processes(self, n_points: int) -> bool:
        """Whether any fault in the grid requires worker processes.

        ``hang`` and ``kill`` faults only make sense when the
        coordinator can deadline or lose a child process; the executor
        uses this to force its process lane for such plans.
        """
        return any(
            spec is not None and spec.kind in ("hang", "kill")
            for spec in (self.spec_for(i) for i in range(n_points))
        )

    def describe(self) -> str:
        """One-line summary for logs and the telemetry manifest."""
        parts = [f"seed={self.seed}", f"rate={self.rate}"]
        if self.rate > 0.0:
            parts.append("kinds=" + "+".join(self.kinds))
            parts.append(f"attempts={self.max_failing_attempts}")
            if self.permanent_rate:
                parts.append(f"permanent={self.permanent_rate}")
        if self.faults:
            parts.append(f"explicit={len(self.faults)}")
        return ",".join(parts)


def inject_fault(plan: Optional[FaultPlan], index: int, attempt: int) -> None:
    """Execute the plan's fault for ``(index, attempt)``, if any.

    Called by the executor's point wrapper at the top of every
    evaluation attempt, inside the telemetry capture window.  ``raise``
    faults raise :class:`~repro.errors.InjectedFault`; ``hang`` faults
    sleep (the coordinator's deadline kills the worker first when a
    timeout is configured); ``kill`` faults exit the process with
    :data:`KILL_EXIT_CODE`.
    """
    if plan is None:
        return
    spec = plan.spec_for(index)
    if spec is None or not spec.applies(attempt):
        return
    if spec.kind == "raise":
        raise InjectedFault(
            f"injected raise at point {index}, attempt {attempt}"
        )
    if spec.kind == "hang":
        time.sleep(spec.hang_s)
        return
    # kill: die the way the OOM killer would — no cleanup, no excuses.
    os._exit(KILL_EXIT_CODE)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the CLI's ``--inject-faults`` spec into a plan.

    Grammar: comma-separated ``key=value`` fields — ``seed`` (int,
    required unless the whole spec is a bare integer seed), ``rate``
    (float in [0, 1], default 0.25), ``kinds`` (``+``-joined subset of
    ``raise``/``hang``/``kill``, default all), ``attempts`` (max failing
    attempts, default 2), ``permanent`` (float rate, default 0), and
    ``hang`` (seconds, default 30).  Examples::

        --inject-faults 42
        --inject-faults seed=42,rate=0.3,kinds=raise+kill,attempts=2
        --inject-faults seed=7,rate=0.2,kinds=hang,hang=5,permanent=0.5
    """
    text = text.strip()
    if not text:
        raise ConfigurationError("empty fault-plan spec")
    try:
        return FaultPlan(seed=int(text), rate=0.25)
    except ValueError:
        pass
    fields: Dict[str, str] = {}
    for part in text.split(","):
        key, sep, value = part.partition("=")
        if not sep or not key.strip() or not value.strip():
            raise ConfigurationError(
                f"malformed fault-plan field {part!r}; expected key=value"
            )
        fields[key.strip()] = value.strip()
    unknown = set(fields) - {
        "seed", "rate", "kinds", "attempts", "permanent", "hang"
    }
    if unknown:
        raise ConfigurationError(
            f"unknown fault-plan fields: {', '.join(sorted(unknown))}"
        )
    try:
        return FaultPlan(
            seed=int(fields.get("seed", "0")),
            rate=float(fields.get("rate", "0.25")),
            kinds=tuple(fields["kinds"].split("+"))
            if "kinds" in fields
            else FAULT_KINDS,
            max_failing_attempts=int(fields.get("attempts", "2")),
            permanent_rate=float(fields.get("permanent", "0")),
            hang_s=float(fields.get("hang", "30")),
        )
    except ValueError as exc:
        raise ConfigurationError(f"malformed fault-plan spec {text!r}: {exc}")
