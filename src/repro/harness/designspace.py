"""Design-space sensitivity sweeps over the CMP substrate.

The paper fixes its machine (Table 1) and varies only (N, V, f).  Its
related work (Huh et al. [17], Ekman & Stenström [9]) asks the prior
question: how sensitive are the conclusions to the machine itself?
This module sweeps one architectural parameter at a time — L2 capacity,
bus width, memory latency — and reports how an application's nominal
efficiency and memory boundedness move, using the same simulator stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.sim.bus import BusConfig
from repro.sim.cache import CacheConfig
from repro.sim.cmp import ChipMultiprocessor, CMPConfig
from repro.sim.memory import MemoryConfig
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class DesignPoint:
    """One machine variant's measurements for one application."""

    label: str
    n: int
    execution_time_s: float
    nominal_efficiency: float
    l1_miss_rate: float
    memory_stall_fraction: float
    bus_utilisation: float


def _run(config: CMPConfig, model: WorkloadModel, n: int):
    chip = ChipMultiprocessor(config)
    return chip.run(
        [model.thread_ops(t, n) for t in range(n)],
        model.core_timing(),
        warmup_barriers=model.warmup_barriers,
    )


def sweep_design_parameter(
    model: WorkloadModel,
    variants: Dict[str, CMPConfig],
    n_threads: int = 8,
) -> List[DesignPoint]:
    """Measure one application across labelled machine variants.

    Each variant runs at 1 and ``n_threads`` cores so the nominal
    efficiency (Eq. 6) is measured per machine, like the paper's
    profiling step.
    """
    if not variants:
        raise ConfigurationError("need at least one variant")
    points: List[DesignPoint] = []
    for label, config in variants.items():
        t1 = _run(config, model, 1).execution_time_ps
        result = _run(config, model, n_threads)
        tn = result.execution_time_ps
        points.append(
            DesignPoint(
                label=label,
                n=n_threads,
                execution_time_s=result.execution_time_s,
                nominal_efficiency=t1 / (n_threads * tn),
                l1_miss_rate=result.l1_miss_rate(),
                memory_stall_fraction=result.memory_stall_fraction(),
                bus_utilisation=result.bus.utilisation(tn),
            )
        )
    return points


def l2_capacity_variants(
    capacities_mb: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing only in shared-L2 capacity (Table 1 uses 4 MB)."""
    base = base or CMPConfig()
    variants = {}
    for mb in capacities_mb:
        capacity = int(mb * 1024 * 1024)
        variants[f"L2={mb:g}MB"] = replace(
            base,
            l2_config=CacheConfig(
                capacity_bytes=capacity,
                line_bytes=base.l2_config.line_bytes,
                associativity=base.l2_config.associativity,
            ),
        )
    return variants


def bus_width_variants(
    data_cycles: Sequence[int] = (2, 4, 8, 16),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing in bus data-transfer occupancy (width)."""
    base = base or CMPConfig()
    return {
        f"bus-data={cycles}cyc": replace(
            base,
            bus_config=BusConfig(
                address_cycles=base.bus_config.address_cycles,
                data_cycles=cycles,
            ),
        )
        for cycles in data_cycles
    }


def memory_latency_variants(
    latencies_ns: Sequence[float] = (40.0, 75.0, 150.0, 300.0),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """Machines differing in DRAM round-trip latency (Table 1: 75 ns)."""
    base = base or CMPConfig()
    return {
        f"mem={ns:g}ns": replace(
            base,
            memory_config=MemoryConfig(
                round_trip_ns=ns,
                n_banks=base.memory_config.n_banks,
                bank_busy_ns=base.memory_config.bank_busy_ns,
            ),
        )
        for ns in latencies_ns
    }


def interconnect_variants(
    crossbar_channels: Sequence[int] = (2, 4, 8),
    base: CMPConfig | None = None,
) -> Dict[str, CMPConfig]:
    """The paper's shared bus versus banked crossbars (extension)."""
    base = base or CMPConfig()
    variants = {"bus": replace(base, interconnect="bus")}
    for channels in crossbar_channels:
        variants[f"xbar-{channels}ch"] = replace(
            base, interconnect="crossbar", crossbar_channels=channels
        )
    return variants
