"""Tests for the HotSpot-style facade and its calibration."""

import pytest

from repro.errors import ConfigurationError
from repro.thermal import HotSpotModel, cmp_floorplan, ev6_core_floorplan


@pytest.fixture()
def cmp_model():
    return HotSpotModel(
        cmp_floorplan(16), ambient_celsius=45.0, exclude_from_average=("l2",)
    )


class TestSolve:
    def test_idle_chip_sits_at_ambient(self, cmp_model):
        result = cmp_model.solve({})
        assert result.average_celsius() == pytest.approx(45.0)
        assert result.peak_celsius() == pytest.approx(45.0)

    def test_single_hot_core(self, cmp_model):
        result = cmp_model.solve({"core0": 40.0})
        assert result.peak_k == result.block_temperatures_k["core0"]
        assert result.peak_celsius() > 45.0

    def test_l2_excluded_from_average(self, cmp_model):
        result = cmp_model.solve({"l2": 100.0})
        # The L2 is hot but the (core-only) average barely moves compared
        # to the same power in a core.
        core_version = cmp_model.solve({"core0": 100.0})
        assert result.average_k < core_version.average_k
        assert "l2" in result.block_temperatures_k

    def test_spreading_lowers_average_density_temperature(self, cmp_model):
        concentrated = cmp_model.solve({"core0": 64.0})
        spread = cmp_model.solve({f"core{i}": 4.0 for i in range(16)})
        assert spread.peak_k < concentrated.peak_k

    def test_exclude_validation(self):
        with pytest.raises(ConfigurationError):
            HotSpotModel(cmp_floorplan(4), exclude_from_average=("bogus",))

    def test_all_excluded_rejected(self):
        model = HotSpotModel(
            cmp_floorplan(1), exclude_from_average=("l2", "core0")
        )
        with pytest.raises(ConfigurationError):
            model.solve({"core0": 1.0})


class TestCalibration:
    def test_calibrate_pins_design_point(self, cmp_model):
        power_map = {"core0": 60.0}
        cmp_model.calibrate(power_map, peak_celsius=100.0)
        result = cmp_model.solve(power_map)
        assert result.peak_celsius() == pytest.approx(100.0, abs=0.01)

    def test_calibrated_model_scales_sensibly(self, cmp_model):
        cmp_model.calibrate({"core0": 60.0}, peak_celsius=100.0)
        half = cmp_model.solve({"core0": 30.0})
        assert 45.0 < half.peak_celsius() < 100.0

    def test_calibration_rejects_zero_power(self, cmp_model):
        with pytest.raises(ConfigurationError):
            cmp_model.calibrate({"core0": 0.0})

    def test_calibration_rejects_target_below_ambient(self, cmp_model):
        with pytest.raises(ConfigurationError):
            cmp_model.calibrate({"core0": 60.0}, peak_celsius=40.0)

    def test_ev6_floorplan_works_end_to_end(self):
        model = HotSpotModel(ev6_core_floorplan(), ambient_celsius=45.0)
        model.calibrate({"intexec": 20.0, "icache": 10.0}, peak_celsius=100.0)
        result = model.solve({"intexec": 10.0, "icache": 5.0})
        assert 45.0 < result.average_celsius() < 100.0
