"""Tests for the deterministic fault-injection plane."""

import pytest

from repro.errors import ConfigurationError, InjectedFault, TransientError
from repro.harness.faults import (
    ALWAYS,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    inject_fault,
    parse_fault_plan,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_rejects_zero_failing_attempts(self):
        with pytest.raises(ConfigurationError, match="failing_attempts"):
            FaultSpec(kind="raise", failing_attempts=0)

    def test_transient_spec_applies_to_leading_attempts_only(self):
        spec = FaultSpec(kind="raise", failing_attempts=2)
        assert spec.applies(0)
        assert spec.applies(1)
        assert not spec.applies(2)
        assert not spec.permanent

    def test_permanent_spec_applies_forever(self):
        spec = FaultSpec(kind="raise", failing_attempts=ALWAYS)
        assert spec.permanent
        assert spec.applies(0)
        assert spec.applies(10_000)


class TestFaultPlan:
    def test_validates_rates_and_kinds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(permanent_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(kinds=("raise", "meteor"))
        with pytest.raises(ConfigurationError):
            FaultPlan(rate=0.5, kinds=())

    def test_zero_rate_plan_faults_nothing(self):
        plan = FaultPlan(seed=1, rate=0.0)
        assert plan.faulted_indices(100) == ()

    def test_spec_for_is_deterministic(self):
        plan = FaultPlan(seed=42, rate=0.3)
        assert [plan.spec_for(i) for i in range(50)] == [
            plan.spec_for(i) for i in range(50)
        ]

    def test_spec_for_is_independent_of_grid_size(self):
        # The property the chaos tests rely on: point 7's fate does not
        # change when the grid grows or shrinks around it.
        small = FaultPlan(seed=9, rate=0.5).faulted_indices(10)
        large = FaultPlan(seed=9, rate=0.5).faulted_indices(40)
        assert set(small) == {i for i in large if i < 10}

    def test_different_seeds_give_different_assignments(self):
        grids = {
            FaultPlan(seed=seed, rate=0.5).faulted_indices(64)
            for seed in range(8)
        }
        assert len(grids) > 1

    def test_rate_one_faults_everything(self):
        assert FaultPlan(seed=0, rate=1.0).faulted_indices(16) == tuple(
            range(16)
        )

    def test_explicit_faults_override_derivation(self):
        spec = FaultSpec(kind="kill", failing_attempts=ALWAYS)
        plan = FaultPlan(seed=3, rate=0.0, faults=((5, spec),))
        assert plan.spec_for(5) is spec
        assert plan.spec_for(4) is None

    def test_needs_processes_only_for_hang_and_kill(self):
        raise_only = FaultPlan(seed=1, rate=1.0, kinds=("raise",))
        assert not raise_only.needs_processes(8)
        killer = FaultPlan(
            seed=1,
            rate=0.0,
            faults=((2, FaultSpec(kind="kill")),),
        )
        assert killer.needs_processes(8)
        assert not killer.needs_processes(2)  # fault index outside grid

    def test_permanent_rate_produces_permanent_specs(self):
        plan = FaultPlan(seed=4, rate=1.0, permanent_rate=1.0)
        assert all(
            plan.spec_for(i).permanent for i in range(16)
        )

    def test_describe_mentions_the_knobs(self):
        text = FaultPlan(seed=7, rate=0.5, kinds=("raise",)).describe()
        assert "seed=7" in text
        assert "rate=0.5" in text
        assert "kinds=raise" in text


class TestInjectFault:
    def test_no_plan_is_a_no_op(self):
        inject_fault(None, 0, 0)

    def test_unfaulted_index_is_a_no_op(self):
        inject_fault(FaultPlan(seed=1, rate=0.0), 0, 0)

    def test_raise_fault_raises_injected_fault(self):
        plan = FaultPlan(
            seed=1,
            faults=((3, FaultSpec(kind="raise", failing_attempts=1)),),
        )
        with pytest.raises(InjectedFault, match="point 3, attempt 0"):
            inject_fault(plan, 3, 0)
        # The fault is transient: attempt 1 sails through.
        inject_fault(plan, 3, 1)

    def test_injected_fault_is_transient(self):
        assert issubclass(InjectedFault, TransientError)


class TestParseFaultPlan:
    def test_bare_integer_is_a_seed(self):
        plan = parse_fault_plan("42")
        assert plan.seed == 42
        assert plan.rate == 0.25
        assert plan.kinds == FAULT_KINDS

    def test_full_spec_round_trips(self):
        plan = parse_fault_plan(
            "seed=7,rate=0.3,kinds=raise+kill,attempts=3,permanent=0.5,hang=5"
        )
        assert plan == FaultPlan(
            seed=7,
            rate=0.3,
            kinds=("raise", "kill"),
            max_failing_attempts=3,
            permanent_rate=0.5,
            hang_s=5.0,
        )

    @pytest.mark.parametrize(
        "text",
        ["", "seed=", "=3", "seed=x", "bogus=1", "rate=2", "kinds=meteor"],
    )
    def test_rejects_malformed_specs(self, text):
        with pytest.raises(ConfigurationError):
            parse_fault_plan(text)
