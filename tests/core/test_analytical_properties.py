"""Property-based tests of the analytical model's structural laws.

Hypothesis sweeps the model over random (N, eps, technology-parameter)
combinations and checks the relations that must hold for *any* sane
parameterisation — the guarantees downstream users lean on.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    AnalyticalChipModel,
    PerformanceOptimizationScenario,
    PowerOptimizationScenario,
)
from repro.core.scenario3 import EnergyOptimizationScenario
from repro.errors import ConvergenceError, InfeasibleOperatingPoint
from repro.tech import NODE_130NM, NODE_65NM

NODES = {"130nm": NODE_130NM, "65nm": NODE_65NM}

# Module-level caches: the chip models are immutable after construction.
_CHIPS = {name: AnalyticalChipModel(node) for name, node in NODES.items()}
_S1 = {name: PowerOptimizationScenario(chip) for name, chip in _CHIPS.items()}
_S2 = {name: PerformanceOptimizationScenario(chip) for name, chip in _CHIPS.items()}


@given(
    tech=st.sampled_from(sorted(NODES)),
    n=st.integers(min_value=1, max_value=32),
    eps=st.floats(min_value=0.05, max_value=1.5),
)
@settings(max_examples=80, deadline=None)
def test_scenario1_feasibility_boundary(tech, n, eps):
    """Eq. 7 is feasible exactly when N * eps >= 1."""
    scenario = _S1[tech]
    if n * eps < 1.0 - 1e-9:
        with pytest.raises(InfeasibleOperatingPoint):
            scenario.solve(n, eps)
        return
    try:
        point = scenario.solve(n, eps)
    except ConvergenceError:
        return  # thermal runaway: many cores near full throttle
    chip = _CHIPS[tech]
    tech_node = chip.tech
    assert tech_node.v_min - 1e-9 <= point.voltage <= tech_node.vdd_nominal + 1e-9
    assert 0 < point.frequency_hz <= tech_node.f_nominal * (1 + 1e-9)
    assert point.power.total_w > 0
    assert point.temperature_celsius >= chip.ambient_celsius - 1e-6


@given(
    tech=st.sampled_from(sorted(NODES)),
    n=st.sampled_from([2, 4, 8, 16, 32]),
    eps_lo=st.floats(min_value=0.3, max_value=0.9),
    delta=st.floats(min_value=0.01, max_value=0.3),
)
@settings(max_examples=40, deadline=None)
def test_scenario1_power_monotone_in_efficiency(tech, n, eps_lo, delta):
    """More efficiency never costs power at iso-performance."""
    eps_hi = min(1.5, eps_lo + delta)
    assume(n * eps_lo >= 1.0)
    scenario = _S1[tech]
    try:
        p_lo = scenario.solve(n, eps_lo).normalized_power
        p_hi = scenario.solve(n, eps_hi).normalized_power
    except ConvergenceError:
        return
    assert p_hi <= p_lo + 1e-9


@given(
    tech=st.sampled_from(sorted(NODES)),
    n=st.integers(min_value=1, max_value=32),
    eps=st.floats(min_value=0.3, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_scenario2_speedup_bounds(tech, n, eps):
    """Budget-legal speedup is bounded by the unconstrained N * eps."""
    scenario = _S2[tech]
    try:
        point = scenario.solve(n, eps)
    except InfeasibleOperatingPoint:
        return
    assert 0 < point.speedup <= n * eps * (1 + 1e-9)
    assert point.power.total_w <= scenario.budget_w * (1 + 1e-4)
    assert point.regime in ("nominal", "voltage-scaling", "frequency-only")


@given(
    tech=st.sampled_from(sorted(NODES)),
    n=st.sampled_from([1, 2, 4, 8, 16]),
    budget_scale=st.floats(min_value=0.5, max_value=3.0),
)
@settings(max_examples=30, deadline=None)
def test_scenario2_speedup_monotone_in_budget(tech, n, budget_scale):
    """A bigger budget never slows you down."""
    chip = _CHIPS[tech]
    base = _S2[tech]
    richer = PerformanceOptimizationScenario(
        chip, budget_w=base.budget_w * budget_scale
    )
    try:
        s_base = base.solve(n, 1.0).speedup
        s_richer = richer.solve(n, 1.0).speedup
    except InfeasibleOperatingPoint:
        return
    if budget_scale >= 1.0:
        assert s_richer >= s_base - 1e-9
    else:
        assert s_richer <= s_base + 1e-9


@given(
    tech=st.sampled_from(sorted(NODES)),
    n=st.sampled_from([1, 2, 4, 8]),
    eps=st.floats(min_value=0.5, max_value=1.0),
    weight=st.floats(min_value=0.0, max_value=2.0),
)
@settings(max_examples=30, deadline=None)
def test_scenario3_never_worse_than_nominal(tech, n, eps, weight):
    """The energy(-delay) optimum beats or matches racing at nominal."""
    chip = _CHIPS[tech]
    scenario = EnergyOptimizationScenario(chip, delay_weight=weight)
    point = scenario.solve(n, eps)
    try:
        nominal_obj, *_ = scenario._evaluate(n, eps, chip.tech.f_nominal)
    except ConvergenceError:
        return  # racing N cores at nominal has no thermal equilibrium
    assert point.relative_objective <= nominal_obj * (1 + 1e-6)
