"""Static invariant analysis for the repro tree (``repro check``).

Four checker families guard the properties the reproduction's tests
assume but cannot economically re-verify on every run:

* **determinism** — simulation/model code must not read wall clocks,
  draw unseeded randomness, or iterate unordered collections where
  order reaches results (bitwise-identical reruns are a tier-1
  invariant);
* **units** — SI base units internally, with conversions through
  :mod:`repro.units` named constants only;
* **hotpath** — functions marked ``# repro: hot`` stay allocation-
  and dispatch-free (the PR 2 fast-path contract);
* **picklability** — everything crossing the executor outcome channel
  or the result cache stays pickle-stable.

Public API::

    from repro.analysis import AnalysisOptions, analyze_tree
    report = analyze_tree(AnalysisOptions(root=Path("src/repro")))
    for finding in report.findings:
        print(finding.location, finding.rule, finding.message)

See docs/ANALYSIS.md for every rule, the suppression syntax, and the
baseline workflow.
"""

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    baseline_from_document,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    Rule,
)
from repro.analysis.index import ClassInfo, FunctionInfo, TreeIndex, build_index
from repro.analysis.runner import (
    REPORT_SCHEMA,
    RULE_IDS,
    RULES,
    AnalysisOptions,
    AnalysisReport,
    analyze_tree,
    default_baseline_path,
    format_text,
    rule_by_id,
    validate_report_document,
)
from repro.analysis.source import SourceError, SourceFile, load_source_file

__all__ = [
    "BASELINE_SCHEMA",
    "REPORT_SCHEMA",
    "RULES",
    "RULE_IDS",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "AnalysisOptions",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "ClassInfo",
    "Finding",
    "FunctionInfo",
    "Rule",
    "SourceError",
    "SourceFile",
    "TreeIndex",
    "analyze_tree",
    "baseline_from_document",
    "baseline_from_findings",
    "build_index",
    "default_baseline_path",
    "format_text",
    "load_baseline",
    "load_source_file",
    "rule_by_id",
    "save_baseline",
    "validate_report_document",
]
