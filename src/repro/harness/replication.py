"""Multi-seed replication: confidence that results aren't seed artefacts.

The synthetic workloads are seeded; a credible reproduction should show
its headline numbers are stable across seeds.  :func:`replicate` reruns
any per-model experiment with re-seeded workload specs and aggregates a
chosen scalar metric into mean / standard deviation / min / max.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.harness.executor import SweepExecutor
from repro.workloads.base import WorkloadModel


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregate of one metric across seed replicas."""

    metric: str
    samples: tuple

    def __post_init__(self) -> None:
        if not self.samples:
            raise ConfigurationError("no samples to summarise")

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof = 1; 0 for a single sample)."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    @property
    def min(self) -> float:
        """Smallest sample."""
        return min(self.samples)

    @property
    def max(self) -> float:
        """Largest sample."""
        return max(self.samples)

    def relative_spread(self) -> float:
        """(max - min) / |mean| — a quick stability check."""
        mu = self.mean
        if mu == 0:
            return float("inf") if self.max != self.min else 0.0
        return (self.max - self.min) / abs(mu)


def reseeded(model: WorkloadModel, replica: int) -> WorkloadModel:
    """A copy of the workload with an independent seed."""
    if replica < 0:
        raise ConfigurationError("replica index must be >= 0")
    spec = model.spec
    return WorkloadModel(replace(spec, seed=spec.seed + 104_729 * (replica + 1)))


def replicate(
    model: WorkloadModel,
    experiment: Callable[[WorkloadModel], float],
    n_replicas: int = 5,
    metric: str = "metric",
    executor: Optional[SweepExecutor] = None,
) -> ReplicationSummary:
    """Run ``experiment`` on ``n_replicas`` re-seeded copies of a workload.

    ``experiment`` maps a workload model to one scalar (e.g. "nominal
    efficiency at 16 cores" or "normalized power at N = 8").  Replicas
    are independent, so an executor with ``jobs > 1`` runs them
    concurrently — ``experiment`` must then be picklable (a module-level
    function or a partial of one).  Replica results are not memoized:
    the cache cannot see inside an arbitrary callable.
    """
    if n_replicas < 1:
        raise ConfigurationError("need at least one replica")
    replicas = [reseeded(model, replica) for replica in range(n_replicas)]
    if executor is None:
        samples = [float(experiment(replica)) for replica in replicas]
    else:
        samples = [float(v) for v in executor.map_values(experiment, replicas)]
    return ReplicationSummary(metric=metric, samples=tuple(samples))
