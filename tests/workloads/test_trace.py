"""Tests for trace recording and replay."""

import gzip

import pytest

from repro.errors import WorkloadError
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE, OP_CRITICAL, OP_LOAD, OP_STORE
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel
from repro.workloads.trace import TraceWorkload, record_trace


@pytest.fixture()
def short_model():
    return WorkloadModel(workload_by_name("Barnes").spec.scaled(0.02))


class TestRecord:
    def test_records_all_ops(self, short_model, tmp_path):
        path = tmp_path / "barnes.trace"
        written = record_trace(short_model, 2, path)
        trace = TraceWorkload(path)
        assert trace.operation_count() == written
        assert trace.n_threads == 2

    def test_gzip_round_trip(self, short_model, tmp_path):
        path = tmp_path / "barnes.trace.gz"
        record_trace(short_model, 2, path)
        # It really is gzip on disk.
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("!threads")
        trace = TraceWorkload(path)
        assert trace.operation_count() > 0

    def test_per_thread_sequences_preserved(self, short_model, tmp_path):
        path = tmp_path / "t.trace"
        record_trace(short_model, 2, path)
        trace = TraceWorkload(path)
        for tid in range(2):
            original = list(short_model.thread_ops(tid, 2))
            replayed = list(trace.thread_ops(tid, 2))
            assert replayed == original

    def test_timing_header_round_trips(self, short_model, tmp_path):
        path = tmp_path / "t.trace"
        record_trace(short_model, 1, path)
        trace = TraceWorkload(path)
        original = short_model.core_timing()
        replayed = trace.core_timing()
        assert replayed.base_cpi == original.base_cpi
        assert replayed.memory_parallelism == original.memory_parallelism


class TestReplaySimulation:
    def test_replay_matches_original_exactly(self, short_model, tmp_path):
        path = tmp_path / "replay.trace"
        record_trace(short_model, 2, path)
        trace = TraceWorkload(path)

        def simulate(workload):
            chip = ChipMultiprocessor(CMPConfig())
            return chip.run(
                [workload.thread_ops(t, 2) for t in range(2)],
                workload.core_timing(),
            )

        original = simulate(short_model)
        replayed = simulate(trace)
        assert replayed.execution_time_ps == original.execution_time_ps
        assert replayed.coherence.l1_misses == original.coherence.l1_misses
        assert replayed.total_instructions == original.total_instructions

    def test_wrong_thread_count_rejected(self, short_model, tmp_path):
        path = tmp_path / "t.trace"
        record_trace(short_model, 2, path)
        trace = TraceWorkload(path)
        assert not trace.supports(4)
        assert trace.supported_thread_counts((1, 2, 4)) == [2]
        with pytest.raises(WorkloadError):
            trace.thread_ops(0, 4)


class TestHandAuthoredTraces:
    def write(self, tmp_path, text):
        path = tmp_path / "hand.trace"
        path.write_text(text)
        return path

    def test_minimal_trace(self, tmp_path):
        path = self.write(
            tmp_path,
            """
            !threads 2
            # a comment
            0 C 100
            0 L 0x40
            1 C 100
            1 S 64
            0 B 0
            1 B 0
            """,
        )
        trace = TraceWorkload(path)
        ops0 = list(trace.thread_ops(0, 2))
        assert ops0 == [(OP_COMPUTE, 100), (OP_LOAD, 0x40), (OP_BARRIER, 0)]
        ops1 = list(trace.thread_ops(1, 2))
        assert ops1[1] == (OP_STORE, 64)

    def test_critical_section_line(self, tmp_path):
        path = self.write(
            tmp_path,
            """
            !threads 1
            0 X 3 40 0x999000
            """,
        )
        (op,) = list(TraceWorkload(path).thread_ops(0, 1))
        assert op == (OP_CRITICAL, 3, 40, 0x999000)

    def test_simulatable(self, tmp_path):
        path = self.write(
            tmp_path,
            """
            !threads 2
            !timing base_cpi=0.5
            0 C 5000
            1 C 9000
            0 B 0
            1 B 0
            """,
        )
        trace = TraceWorkload(path)
        chip = ChipMultiprocessor(CMPConfig())
        result = chip.run(
            [trace.thread_ops(t, 2) for t in range(2)], trace.core_timing()
        )
        assert result.total_instructions == 14_000

    def test_missing_header_rejected(self, tmp_path):
        path = self.write(tmp_path, "0 C 100\n")
        with pytest.raises(WorkloadError, match="threads"):
            TraceWorkload(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = self.write(tmp_path, "!threads 1\n0 L\n")
        with pytest.raises(WorkloadError, match=":2:"):
            TraceWorkload(path)

    def test_out_of_range_thread_rejected(self, tmp_path):
        path = self.write(tmp_path, "!threads 1\n3 C 10\n")
        with pytest.raises(WorkloadError):
            TraceWorkload(path)


class TestParseOnce:
    """The trace file is read once per (path, mtime, size) per process."""

    def write(self, tmp_path, name="once.trace"):
        path = tmp_path / name
        path.write_text(
            "!threads 2\n"
            "0 C 10\n0 L 0x40\n0 B 0\n"
            "1 C 20\n1 S 0x80\n1 B 0\n",
            encoding="ascii",
        )
        return path

    def test_second_construction_skips_the_file(self, tmp_path, monkeypatch):
        from repro.workloads import trace as trace_module

        path = self.write(tmp_path)
        opens = []
        real_open = trace_module._open_text

        def counting_open(p, mode):
            opens.append(str(p))
            return real_open(p, mode)

        monkeypatch.setattr(trace_module, "_open_text", counting_open)
        first = TraceWorkload(path)
        second = TraceWorkload(path)
        assert len(opens) == 1
        assert list(second.thread_ops(0, 2)) == list(first.thread_ops(0, 2))
        assert second.warmup_barriers == first.warmup_barriers
        assert second.core_timing() == first.core_timing()

    def test_thread_ops_never_reopens(self, tmp_path, monkeypatch):
        from repro.workloads import trace as trace_module

        path = self.write(tmp_path, "never.trace")
        workload = TraceWorkload(path)

        def forbidden_open(p, mode):
            raise AssertionError("thread_ops must not touch the file")

        monkeypatch.setattr(trace_module, "_open_text", forbidden_open)
        for _ in range(3):
            assert list(workload.thread_ops(1, 2))

    def test_modified_file_is_reparsed(self, tmp_path):
        import os

        path = self.write(tmp_path, "mod.trace")
        first = TraceWorkload(path)
        text = path.read_text(encoding="ascii") + "0 C 99\n"
        path.write_text(text, encoding="ascii")
        os.utime(path, ns=(1, 1))  # force a distinct mtime signature
        second = TraceWorkload(path)
        assert second.operation_count() == first.operation_count() + 1

    def test_compile_key_distinguishes_trace_versions(self, tmp_path):
        import os

        path = self.write(tmp_path, "key.trace")
        first_key = TraceWorkload(path).compile_key(2)
        path.write_text(
            path.read_text(encoding="ascii") + "1 C 1\n", encoding="ascii"
        )
        os.utime(path, ns=(2, 2))
        second_key = TraceWorkload(path).compile_key(2)
        assert first_key != second_key
        assert first_key[0] == "trace"
