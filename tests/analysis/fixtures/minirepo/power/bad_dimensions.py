"""Seeded dimensional-analysis violations (analyzer fixture).

Every hazard here is invisible to the lexical suffix checker: the
mismatches flow through unsuffixed intermediates and function returns,
so only the interprocedural dataflow pass can see them.
"""


def power_w(activity: float) -> float:
    return activity * 1.5e-9 + 0.5  # treated as W via the name suffix


def delay_s(cycles: float) -> float:
    return cycles * 2.5e-10


def energy_j(activity: float, cycles: float) -> float:
    p = power_w(activity)
    t = delay_s(cycles)
    return p * t  # W * s unifies with J: clean


def adds_power_to_time(activity: float, cycles: float) -> float:
    p = power_w(activity)
    t = delay_s(cycles)
    return p + t  # DIM-MISMATCH (W + s through unsuffixed locals)


def mixed_magnitude(clock_ghz: float, ref_hz: float) -> float:
    fast = clock_ghz
    slow = ref_hz
    return fast + slow  # DIM-MISMATCH (s^-1 at 1e9 vs 1)


def bogus_energy_j(activity: float) -> float:
    p = power_w(activity)
    return p * p  # DIM-RETURN (W^2 returned from a _j function)


def fractional_exponent(activity: float) -> float:
    p = power_w(activity)
    return p**0.5  # DIM-EXP (fractional exponent vector)
