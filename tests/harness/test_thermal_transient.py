"""Tests for the thermal step-response harness."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.thermal_transient import ThermalTransient, thermal_step_response
from repro.thermal import HotSpotModel, cmp_floorplan


@pytest.fixture(scope="module")
def thermal():
    model = HotSpotModel(
        cmp_floorplan(16), ambient_celsius=45.0, exclude_from_average=("l2",)
    )
    model.calibrate({"core0": 60.0}, peak_celsius=100.0)
    return model


@pytest.fixture(scope="module")
def cooldown(thermal):
    # Scenario I style down-shift: one hot core drops to a quarter power.
    return thermal_step_response(
        thermal,
        power_before={"core0": 60.0},
        power_after={"core0": 15.0},
        duration_s=0.5,
        n_samples=25,
        dt_s=1e-3,
    )


class TestTrajectory:
    def test_starts_at_old_steady_state(self, cooldown):
        assert cooldown.samples[0][1] == pytest.approx(cooldown.start_c)

    def test_monotone_cooldown(self, cooldown):
        temps = [temperature for _, temperature in cooldown.samples]
        assert all(b <= a + 1e-9 for a, b in zip(temps, temps[1:]))

    def test_approaches_target(self, cooldown):
        assert cooldown.settled_fraction() > 0.9
        assert cooldown.target_c < cooldown.start_c

    def test_time_constant_positive_and_within_run(self, cooldown):
        tau = cooldown.time_constant_s()
        assert 0 < tau < 0.5

    def test_warmup_direction_works_too(self, thermal):
        warmup = thermal_step_response(
            thermal,
            power_before={"core0": 10.0},
            power_after={"core0": 50.0},
            duration_s=0.5,
            n_samples=15,
            dt_s=1e-3,
        )
        assert warmup.target_c > warmup.start_c
        temps = [t for _, t in warmup.samples]
        assert all(b >= a - 1e-9 for a, b in zip(temps, temps[1:]))

    def test_no_step_zero_time_constant(self, thermal):
        flat = thermal_step_response(
            thermal,
            power_before={"core0": 20.0},
            power_after={"core0": 20.0},
            duration_s=0.05,
            n_samples=5,
        )
        assert flat.time_constant_s() == 0.0
        assert flat.settled_fraction() == 1.0


class TestValidation:
    def test_bad_arguments(self, thermal):
        with pytest.raises(ConfigurationError):
            thermal_step_response(thermal, {}, {}, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            thermal_step_response(thermal, {}, {}, n_samples=1)
        with pytest.raises(ConfigurationError):
            ThermalTransient(samples=((0.0, 50.0),), start_c=50.0, target_c=40.0)
