"""SARIF 2.1.0 export: structure, suppressions, schema validation."""

import copy
import json

from repro.analysis import (
    SARIF_VERSION,
    to_sarif,
    validate_sarif_document,
)
from repro.cli import main

from tests.analysis.conftest import FIXTURE_ROOT


def test_fixture_report_exports_valid_sarif(fixture_report):
    document = to_sarif(fixture_report, new_findings=fixture_report.findings)
    assert validate_sarif_document(document) == []
    assert document["version"] == SARIF_VERSION
    run = document["runs"][0]
    results = run["results"]
    assert len(results) == len(fixture_report.findings) + len(
        fixture_report.suppressed
    )
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert all(result["ruleId"] in declared for result in results)


def test_inline_suppressions_become_in_source(fixture_report):
    document = to_sarif(fixture_report, new_findings=fixture_report.findings)
    kinds = {
        result["ruleId"]: [
            s["kind"] for s in result.get("suppressions", ())
        ]
        for result in document["runs"][0]["results"]
        if result.get("suppressions")
    }
    # The decorated-allow fixture is audited inline.
    assert kinds.get("DIM-RETURN") == ["inSource"]
    # Live findings (new ones) carry no suppression objects at all.
    new_results = [
        r
        for r in document["runs"][0]["results"]
        if not r.get("suppressions")
    ]
    assert len(new_results) == len(fixture_report.findings)


def test_baselined_findings_become_external_suppressions(fixture_report):
    # With nothing marked new, every live finding reads as baselined.
    document = to_sarif(fixture_report, new_findings=[])
    external = [
        result
        for result in document["runs"][0]["results"]
        if any(
            s["kind"] == "external"
            for s in result.get("suppressions", ())
        )
    ]
    assert len(external) == len(fixture_report.findings)


def test_uri_prefix_is_joined_onto_every_location(fixture_report):
    document = to_sarif(
        fixture_report,
        new_findings=fixture_report.findings,
        uri_prefix="tests/analysis/fixtures/minirepo",
    )
    uris = {
        result["locations"][0]["physicalLocation"]["artifactLocation"][
            "uri"
        ]
        for result in document["runs"][0]["results"]
    }
    assert uris
    assert all(
        uri.startswith("tests/analysis/fixtures/minirepo/")
        for uri in uris
    )


def test_validator_rejects_malformed_documents(fixture_report):
    good = to_sarif(fixture_report, new_findings=fixture_report.findings)

    wrong_version = copy.deepcopy(good)
    wrong_version["version"] = "1.0.0"
    assert validate_sarif_document(wrong_version)

    missing_message = copy.deepcopy(good)
    del missing_message["runs"][0]["results"][0]["message"]
    assert validate_sarif_document(missing_message)

    undeclared_rule = copy.deepcopy(good)
    undeclared_rule["runs"][0]["results"][0]["ruleId"] = "NOT-A-RULE"
    assert validate_sarif_document(undeclared_rule)

    no_runs = copy.deepcopy(good)
    no_runs["runs"] = []
    assert validate_sarif_document(no_runs)


def test_cli_sarif_output_round_trips(tmp_path, capsys):
    out_file = tmp_path / "repro.sarif"
    code = main(
        [
            "check",
            "--root",
            str(FIXTURE_ROOT),
            "--no-baseline",
            "--format",
            "sarif",
            "--output",
            str(out_file),
        ]
    )
    capsys.readouterr()
    assert code == 1  # seeded findings still gate
    document = json.loads(out_file.read_text())
    assert validate_sarif_document(document) == []
    assert document["runs"][0]["results"]
