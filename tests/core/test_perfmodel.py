"""Tests for the iron-law performance identities (Eqs. 5-7, 10)."""


import pytest
from hypothesis import given, strategies as st

from repro.core import (
    ExecutionTimeModel,
    iso_performance_frequency,
    nominal_parallel_efficiency,
    speedup_from_frequency,
)
from repro.errors import ConfigurationError, InfeasibleOperatingPoint


class TestExecutionTimeModel:
    def test_iron_law(self):
        model = ExecutionTimeModel(instructions=1e9, cpi=1.25)
        assert model.time(2.5e9) == pytest.approx(0.5)
        assert model.cycles() == pytest.approx(1.25e9)

    def test_time_inverse_in_frequency(self):
        model = ExecutionTimeModel(instructions=1e6, cpi=2.0)
        assert model.time(1e9) == pytest.approx(2 * model.time(2e9))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionTimeModel(instructions=0, cpi=1.0)
        with pytest.raises(ConfigurationError):
            ExecutionTimeModel(instructions=1e6, cpi=-1.0)
        with pytest.raises(ConfigurationError):
            ExecutionTimeModel(1e6, 1.0).time(0.0)


class TestNominalEfficiency:
    def test_perfect_split(self):
        seq = ExecutionTimeModel(instructions=1e8, cpi=1.0)
        # Each of 4 threads does exactly a quarter of the work.
        thread = ExecutionTimeModel(instructions=2.5e7, cpi=1.0)
        assert nominal_parallel_efficiency(seq, thread, 4) == pytest.approx(1.0)

    def test_overheads_reduce_efficiency(self):
        seq = ExecutionTimeModel(instructions=1e8, cpi=1.0)
        thread = ExecutionTimeModel(instructions=3e7, cpi=1.1)  # extra work + stalls
        eff = nominal_parallel_efficiency(seq, thread, 4)
        assert eff < 1.0

    def test_superlinear_from_cache_effects(self):
        seq = ExecutionTimeModel(instructions=1e8, cpi=2.0)
        # Per-thread CPI improves because the aggregate cache grows.
        thread = ExecutionTimeModel(instructions=2.5e7, cpi=1.5)
        eff = nominal_parallel_efficiency(seq, thread, 4)
        assert eff > 1.0

    def test_invalid_n(self):
        seq = ExecutionTimeModel(1e6, 1.0)
        with pytest.raises(ConfigurationError):
            nominal_parallel_efficiency(seq, seq, 0)


class TestIsoPerformanceFrequency:
    def test_eq7(self):
        # f_N = f1 / (N * eps): 3.2 GHz, N=4, eps=0.8 -> 1.0 GHz.
        assert iso_performance_frequency(3.2e9, 4, 0.8) == pytest.approx(1.0e9)

    def test_perfect_efficiency_divides_by_n(self):
        assert iso_performance_frequency(3.2e9, 16, 1.0) == pytest.approx(0.2e9)

    def test_overclock_region_rejected(self):
        # N * eps < 1 would need f > f1.
        with pytest.raises(InfeasibleOperatingPoint):
            iso_performance_frequency(3.2e9, 2, 0.4)

    def test_boundary_exactly_one(self):
        assert iso_performance_frequency(3.2e9, 2, 0.5) == pytest.approx(3.2e9)

    def test_superlinear_allows_lower_frequency(self):
        f_super = iso_performance_frequency(3.2e9, 4, 1.2)
        f_linear = iso_performance_frequency(3.2e9, 4, 1.0)
        assert f_super < f_linear

    @given(
        n=st.integers(min_value=1, max_value=32),
        eps=st.floats(min_value=0.05, max_value=1.5),
    )
    def test_frequency_positive_and_round_trips(self, n, eps):
        if n * eps < 1.0:
            with pytest.raises(InfeasibleOperatingPoint):
                iso_performance_frequency(1e9, n, eps)
            return
        f = iso_performance_frequency(1e9, n, eps)
        assert f > 0
        # The speedup at that frequency is exactly 1 (iso-performance).
        assert speedup_from_frequency(f, 1e9, n, eps) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            iso_performance_frequency(0.0, 2, 1.0)
        with pytest.raises(ConfigurationError):
            iso_performance_frequency(1e9, 2, 0.0)


class TestSpeedup:
    def test_eq10(self):
        # S = N * eps * f/f1.
        assert speedup_from_frequency(1.6e9, 3.2e9, 8, 0.75) == pytest.approx(3.0)

    def test_nominal_frequency_gives_n_eps(self):
        assert speedup_from_frequency(3.2e9, 3.2e9, 4, 0.9) == pytest.approx(3.6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            speedup_from_frequency(0.0, 1e9, 2, 1.0)
        with pytest.raises(ConfigurationError):
            speedup_from_frequency(1e9, 1e9, 0, 1.0)
