"""PICK-* rules: the reachability closure and its three checks."""

from repro.analysis.index import build_index
from repro.analysis.picklability import PICKLE_ROOTS, reachable_classes

from tests.analysis.conftest import FIXTURE_ROOT, findings_for

BAD = "harness/bad_pickle.py"
OK = "harness/ok_pickle.py"


def test_nested_root_flagged(fixture_report):
    found = findings_for(fixture_report, "PICK-NESTED", BAD)
    assert len(found) == 1
    assert "PointFailure" in found[0].message


def test_reachable_plain_class_flagged(fixture_report):
    found = findings_for(fixture_report, "PICK-SLOTS", BAD)
    assert len(found) == 1
    assert "Payload" in found[0].message  # reached via PointOutcome.payload


def test_lambda_field_flagged(fixture_report):
    found = findings_for(fixture_report, "PICK-LAMBDA", BAD)
    assert len(found) == 1


def test_clean_types_not_flagged(fixture_report):
    assert not [f for f in fixture_report.findings if f.path == OK]


def test_reachability_follows_annotations():
    index = build_index(FIXTURE_ROOT)
    reachable = reachable_classes(index)
    assert "PointOutcome" in reachable  # a root
    assert "Payload" in reachable  # via field annotation
    assert "PointFailure" in reachable  # via string forward reference
    assert "Unreachable" not in reachable  # nothing links to it


def test_roots_cover_the_result_store_registry():
    # Every row type the result store can persist must be under analysis.
    from repro.harness.store import _ROW_TYPES

    registered = {cls.__name__ for cls in _ROW_TYPES.values()}
    missing = registered - set(PICKLE_ROOTS)
    assert not missing, f"store row types missing from PICKLE_ROOTS: {missing}"
