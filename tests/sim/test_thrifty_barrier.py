"""Tests for the thrifty-barrier sleep extension [26]."""

import pytest

from repro.errors import ConfigurationError
from repro.power import WattchModel
from repro.sim import ChipMultiprocessor, CMPConfig
from repro.sim.ops import OP_BARRIER, OP_COMPUTE


def imbalanced_threads():
    """Thread 1 does 50x the work of thread 0 before a barrier."""
    return [
        [(OP_COMPUTE, 1_000), (OP_BARRIER, 0), (OP_COMPUTE, 1_000)],
        [(OP_COMPUTE, 50_000), (OP_BARRIER, 0), (OP_COMPUTE, 1_000)],
    ]


def run(config):
    return ChipMultiprocessor(config).run(imbalanced_threads())


class TestSleepMechanics:
    def test_sleep_recorded_on_long_waits(self):
        result = run(CMPConfig(barrier_sleep=True))
        fast, slow = result.core_stats
        assert fast.sleep_ps > 0
        assert slow.sleep_ps == 0  # the last arriver never waits

    def test_no_sleep_when_disabled(self):
        result = run(CMPConfig(barrier_sleep=False))
        assert all(s.sleep_ps == 0 for s in result.core_stats)

    def test_hidden_wakeup_preserves_performance(self):
        base = run(CMPConfig(barrier_sleep=False)).execution_time_ps
        slept = run(CMPConfig(barrier_sleep=True, sleep_wakeup_cycles=200))
        # The exact predictor wakes cores just in time: no slowdown.
        assert slept.execution_time_ps == base

    def test_sleep_excludes_wakeup_window(self):
        from repro.sim.clock import ClockDomain
        result = run(CMPConfig(barrier_sleep=True, sleep_wakeup_cycles=200))
        fast = result.core_stats[0]
        clock = ClockDomain(result.config.frequency_hz)
        # The spin window equals the wake-up penalty plus any short waits.
        assert fast.sync_wait_ps >= clock.cycles_to_ps(200)

    def test_short_waits_do_not_sleep(self):
        balanced = [
            [(OP_COMPUTE, 1_000), (OP_BARRIER, 0)],
            [(OP_COMPUTE, 1_010), (OP_BARRIER, 0)],
        ]
        result = ChipMultiprocessor(
            CMPConfig(barrier_sleep=True, sleep_wakeup_cycles=200)
        ).run(balanced)
        assert all(s.sleep_ps == 0 for s in result.core_stats)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CMPConfig(sleep_wakeup_cycles=-1)

    def test_operating_point_copy_preserves_sleep(self):
        config = CMPConfig(barrier_sleep=True, sleep_wakeup_cycles=123)
        scaled = config.with_operating_point(1.6e9, 0.8)
        assert scaled.barrier_sleep
        assert scaled.sleep_wakeup_cycles == 123


class TestSleepEnergy:
    def test_sleep_saves_core_energy(self):
        wattch = WattchModel()
        awake = run(CMPConfig(barrier_sleep=False))
        asleep = run(CMPConfig(barrier_sleep=True))
        # The waiting core (index 0) burns less with the thrifty barrier.
        e_awake = wattch.core_dynamic_energy_j(awake, 0)
        e_asleep = wattch.core_dynamic_energy_j(asleep, 0)
        assert e_asleep < e_awake * 0.6

    def test_busy_core_unaffected(self):
        wattch = WattchModel()
        awake = run(CMPConfig(barrier_sleep=False))
        asleep = run(CMPConfig(barrier_sleep=True))
        assert wattch.core_dynamic_energy_j(asleep, 1) == pytest.approx(
            wattch.core_dynamic_energy_j(awake, 1), rel=0.02
        )

    def test_sleep_gating_validated(self):
        from repro.power import UnitEnergies

        with pytest.raises(ConfigurationError):
            UnitEnergies(sleep_gating=1.5)
