"""Baseline semantics: allowance counting, staleness, round-trips."""

import json

import pytest

from repro.analysis import (
    BASELINE_SCHEMA,
    Baseline,
    BaselineEntry,
    Finding,
    baseline_from_findings,
    load_baseline,
    save_baseline,
)
from repro.errors import ConfigurationError


def _finding(rule="DET-WALLCLOCK", path="sim/a.py", line=10, message="m"):
    return Finding(
        path=path, line=line, rule=rule, severity="error", message=message
    )


def test_empty_baseline_passes_everything_through():
    finding = _finding()
    assert Baseline().new_findings([finding]) == [finding]


def test_allowance_absorbs_exact_count():
    findings = [_finding(line=n) for n in (10, 20, 30)]
    baseline = baseline_from_findings(findings[:2])
    new = baseline.new_findings(findings)
    assert len(new) == 1  # two absorbed, the third is beyond the allowance


def test_identity_is_line_insensitive():
    baseline = baseline_from_findings([_finding(line=10)])
    moved = _finding(line=99)  # same rule/path/message, shifted by edits
    assert baseline.new_findings([moved]) == []


def test_different_message_is_a_new_finding():
    baseline = baseline_from_findings([_finding(message="old")])
    assert len(baseline.new_findings([_finding(message="new")])) == 1


def test_stale_keys_detected():
    baseline = baseline_from_findings([_finding(), _finding(rule="UNIT-MAGIC")])
    stale = baseline.stale_keys([_finding()])  # UNIT-MAGIC debt was paid
    assert len(stale) == 1 and stale[0].startswith("UNIT-MAGIC::")
    assert baseline.stale_keys([_finding(), _finding(rule="UNIT-MAGIC")]) == []


def test_round_trip_preserves_entries_and_reasons(tmp_path):
    baseline = Baseline(
        entries=(
            BaselineEntry(key="DET-WALLCLOCK::sim/a.py::m", count=2, reason="why"),
        )
    )
    path = tmp_path / "analysis" / "baseline.json"
    save_baseline(baseline, path)
    loaded = load_baseline(path)
    assert loaded == baseline
    document = json.loads(path.read_text())
    assert document["schema"] == BASELINE_SCHEMA


def test_update_preserves_reasons_for_surviving_keys():
    previous = Baseline(
        entries=(BaselineEntry(key=_finding().key, count=1, reason="kept"),)
    )
    updated = baseline_from_findings([_finding(), _finding(rule="UNIT-MAGIC")], previous)
    by_key = {entry.key: entry for entry in updated.entries}
    assert by_key[_finding().key].reason == "kept"
    assert by_key[_finding(rule="UNIT-MAGIC").key].reason == ""


def test_missing_file_is_empty_baseline(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == Baseline()


def test_malformed_baseline_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "wrong", "entries": []}))
    with pytest.raises(ConfigurationError):
        load_baseline(path)
    path.write_text(
        json.dumps(
            {"schema": BASELINE_SCHEMA, "entries": [{"key": "k", "count": 0}]}
        )
    )
    with pytest.raises(ConfigurationError):
        load_baseline(path)
