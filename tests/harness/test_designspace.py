"""Tests for the design-space sensitivity sweeps."""

import pytest

from repro.errors import ConfigurationError
from repro.harness.designspace import (
    bus_width_variants,
    l2_capacity_variants,
    memory_latency_variants,
    sweep_design_parameter,
)
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadModel


@pytest.fixture(scope="module")
def ocean():
    # Ocean: big footprint, so L2 capacity and memory latency both bite.
    return WorkloadModel(workload_by_name("Ocean").spec.scaled(0.1))


class TestVariantBuilders:
    def test_l2_variants_change_capacity_only(self):
        variants = l2_capacity_variants((1.0, 4.0))
        assert set(variants) == {"L2=1MB", "L2=4MB"}
        small = variants["L2=1MB"]
        big = variants["L2=4MB"]
        assert small.l2_config.capacity_bytes == 1024 * 1024
        assert big.l2_config.capacity_bytes == 4 * 1024 * 1024
        assert small.l1_config == big.l1_config
        assert small.memory_config == big.memory_config

    def test_bus_variants(self):
        variants = bus_width_variants((2, 8))
        assert variants["bus-data=2cyc"].bus_config.data_cycles == 2
        assert variants["bus-data=8cyc"].bus_config.data_cycles == 8

    def test_memory_variants(self):
        variants = memory_latency_variants((40.0, 150.0))
        assert variants["mem=40ns"].memory_config.round_trip_ns == 40.0
        assert variants["mem=150ns"].memory_config.round_trip_ns == 150.0

    def test_empty_sweep_rejected(self, ocean):
        with pytest.raises(ConfigurationError):
            sweep_design_parameter(ocean, {})


class TestSweeps:
    def test_bigger_l2_reduces_memory_stalls(self, ocean):
        points = sweep_design_parameter(
            ocean, l2_capacity_variants((1.0, 8.0)), n_threads=4
        )
        by_label = {p.label: p for p in points}
        assert (
            by_label["L2=8MB"].memory_stall_fraction
            < by_label["L2=1MB"].memory_stall_fraction
        )
        assert (
            by_label["L2=8MB"].execution_time_s
            < by_label["L2=1MB"].execution_time_s
        )

    def test_slower_memory_hurts(self, ocean):
        points = sweep_design_parameter(
            ocean, memory_latency_variants((40.0, 300.0)), n_threads=4
        )
        by_label = {p.label: p for p in points}
        assert (
            by_label["mem=300ns"].execution_time_s
            > by_label["mem=40ns"].execution_time_s
        )

    def test_narrower_bus_raises_utilisation(self, ocean):
        points = sweep_design_parameter(
            ocean, bus_width_variants((2, 16)), n_threads=8
        )
        by_label = {p.label: p for p in points}
        assert (
            by_label["bus-data=16cyc"].bus_utilisation
            > by_label["bus-data=2cyc"].bus_utilisation
        )
        # Bus pressure erodes parallel efficiency.
        assert (
            by_label["bus-data=16cyc"].nominal_efficiency
            < by_label["bus-data=2cyc"].nominal_efficiency
        )

    def test_point_fields_populated(self, ocean):
        (point,) = sweep_design_parameter(
            ocean, l2_capacity_variants((4.0,)), n_threads=2
        )
        assert point.n == 2
        assert 0 < point.nominal_efficiency <= 1.5
        assert 0 <= point.l1_miss_rate <= 1
        assert 0 <= point.bus_utilisation <= 1
