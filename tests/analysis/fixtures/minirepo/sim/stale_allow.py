"""Stale-suppression fixture (analyzer fixture; never imported).

The allow comment below matches no finding: ALLOW-UNUSED must flag it.
"""


def quiet_function(value: float) -> float:
    # repro: allow[DET-RANDOM] stale: the RNG call was removed long ago
    return value * 2.0
