"""Power modelling for the experimental study (Section 3.3).

Four pieces, mirroring the paper's toolchain:

* :mod:`~repro.power.wattch` — per-event dynamic energies (the Wattch
  [3] stand-in), aggregated over the simulator's activity counters, with
  clock gating for idle cycles and V^2 supply scaling.
* :mod:`~repro.power.static` — static power as a fraction of dynamic
  power, exponentially dependent on temperature [5].
* :mod:`~repro.power.calibration` — the paper's renormalisation: the
  max-power microbenchmark connects Wattch's wattage scale to HotSpot's
  physically anchored maximum operational power.
* :mod:`~repro.power.chippower` — the full-chip integration: activity
  counters -> per-block dynamic power -> thermal fixed point -> total
  power, power density, and average temperature (L2 excluded from the
  density/temperature averages, included in total power).
"""

from repro.power.wattch import UnitEnergies, WattchModel
from repro.power.static import StaticPowerModel
from repro.power.calibration import PowerCalibration, calibrate_power_model
from repro.power.chippower import ChipPowerModel, ChipPowerResult

__all__ = [
    "UnitEnergies",
    "WattchModel",
    "StaticPowerModel",
    "PowerCalibration",
    "calibrate_power_model",
    "ChipPowerModel",
    "ChipPowerResult",
]
