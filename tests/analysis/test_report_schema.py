"""The JSON report document and its schema validator."""

import json

from repro.analysis import (
    REPORT_SCHEMA,
    Finding,
    validate_report_document,
)


def test_fixture_report_document_is_valid(fixture_report):
    document = fixture_report.to_document()
    assert validate_report_document(document) == []
    assert document["schema"] == REPORT_SCHEMA
    assert document["finding_count"] == len(document["findings"])
    assert document["finding_count"] > 0  # the fixtures seed violations


def test_document_round_trips_through_json(fixture_report):
    document = json.loads(json.dumps(fixture_report.to_document()))
    assert validate_report_document(document) == []
    rebuilt = [Finding.from_dict(raw) for raw in document["findings"]]
    assert tuple(rebuilt) == fixture_report.findings


def test_validator_rejects_missing_keys(fixture_report):
    document = fixture_report.to_document()
    del document["findings"]
    problems = validate_report_document(document)
    assert any("findings" in p for p in problems)


def test_validator_rejects_bad_types(fixture_report):
    document = fixture_report.to_document()
    document["file_count"] = "many"
    assert any("file_count" in p for p in validate_report_document(document))


def test_validator_rejects_unknown_rule(fixture_report):
    document = fixture_report.to_document()
    document["findings"][0]["rule"] = "NOT-A-RULE"
    assert any("NOT-A-RULE" in p for p in validate_report_document(document))


def test_validator_rejects_count_mismatch(fixture_report):
    document = fixture_report.to_document()
    document["finding_count"] += 1
    assert any("finding_count" in p for p in validate_report_document(document))


def test_findings_sorted_deterministically(fixture_report):
    assert list(fixture_report.findings) == sorted(fixture_report.findings)
